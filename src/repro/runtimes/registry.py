"""The seven runtimes of §IV-A, with the paper's per-platform versions.

Calibration rationale per runtime:

- **Python** (CPython): bytecode dispatch ~40x native, everything is a
  heap object → heavy allocation churn, generational GC.
- **Node.js** (V8): JIT brings hot code near-native, but the nursery
  churn and hidden-class machinery keep memory traffic high.
- **Ruby** (MRI/YARV): the heaviest interpreter of the set, heavy
  object allocation.
- **Lua** (PUC interpreter): famously small and light — the paper's
  example of a low-overhead runtime in TEEs.
- **LuaJIT**: trace JIT, near-native hot loops, Lua's light memory
  profile.
- **Go**: compiled ahead of time; escape analysis keeps most values
  off the heap; tiny startup.
- **Wasm** (Wasmi v0.32): an efficient *interpreter* in Rust —
  slower than JITs but with a compact linear memory and almost no GC
  traffic.
"""

from __future__ import annotations

from repro.errors import UnknownRuntimeError
from repro.runtimes.base import RuntimeModel

_MS = 1e6   # ns per millisecond

_MODELS: dict[str, RuntimeModel] = {
    "python": RuntimeModel(
        name="python",
        versions={"tdx": "3.12.3", "sev-snp": "3.10.12", "cca": "3.11.8",
                  "novm": "3.12.3"},
        startup_ns=28 * _MS,
        dispatch_factor=40.0,
        alloc_bytes_per_unit=44.0,
        mem_refs_per_unit=6.0,
        gc_threshold_bytes=2 * 1024 * 1024,
        gc_scan_fraction=0.35,
    ),
    "node": RuntimeModel(
        name="node",
        versions={"tdx": "22.2.0", "sev-snp": "22.2.0", "cca": "20.12.2",
                  "novm": "22.2.0"},
        startup_ns=45 * _MS,
        dispatch_factor=26.0,
        jit_factor=3.0,
        jit_warmup_units=60_000,
        alloc_bytes_per_unit=5.2,
        mem_refs_per_unit=0.8,
        gc_threshold_bytes=4 * 1024 * 1024,
        gc_scan_fraction=0.25,
    ),
    "ruby": RuntimeModel(
        name="ruby",
        versions={"tdx": "3.2", "sev-snp": "3.0", "cca": "3.3", "novm": "3.2"},
        startup_ns=60 * _MS,
        dispatch_factor=48.0,
        alloc_bytes_per_unit=62.0,
        mem_refs_per_unit=7.0,
        gc_threshold_bytes=2 * 1024 * 1024,
        gc_scan_fraction=0.40,
    ),
    "lua": RuntimeModel(
        name="lua",
        versions={"tdx": "5.4.6", "sev-snp": "5.4.6", "cca": "5.4.6",
                  "novm": "5.4.6"},
        startup_ns=1.5 * _MS,
        dispatch_factor=15.0,
        alloc_bytes_per_unit=5.3,
        mem_refs_per_unit=1.2,
        gc_threshold_bytes=1 * 1024 * 1024,
        gc_scan_fraction=0.20,
    ),
    "luajit": RuntimeModel(
        name="luajit",
        versions={"tdx": "2.1", "sev-snp": "2.1", "cca": "2.1", "novm": "2.1"},
        startup_ns=2 * _MS,
        dispatch_factor=15.0,
        jit_factor=1.8,
        jit_warmup_units=25_000,
        alloc_bytes_per_unit=0.45,
        mem_refs_per_unit=0.08,
        gc_threshold_bytes=1 * 1024 * 1024,
        gc_scan_fraction=0.20,
    ),
    "go": RuntimeModel(
        name="go",
        versions={"tdx": "1.20.3", "sev-snp": "1.20.3", "cca": "1.20.3",
                  "novm": "1.20.3"},
        startup_ns=0.9 * _MS,
        dispatch_factor=1.35,
        alloc_bytes_per_unit=0.11,
        mem_refs_per_unit=0.09,
        gc_threshold_bytes=8 * 1024 * 1024,
        gc_scan_fraction=0.15,
    ),
    "wasm": RuntimeModel(
        name="wasm",
        versions={"tdx": "wasmi-0.32", "sev-snp": "wasmi-0.32",
                  "cca": "wasmi-0.32", "novm": "wasmi-0.32"},
        startup_ns=4 * _MS,
        dispatch_factor=10.0,
        alloc_bytes_per_unit=1.5,
        mem_refs_per_unit=1.0,
        gc_threshold_bytes=16 * 1024 * 1024,
        gc_scan_fraction=0.05,
    ),
}

#: Registry order used by the heatmap figures (lighter → heavier).
RUNTIME_NAMES = ("python", "node", "ruby", "lua", "luajit", "go", "wasm")


def runtime_by_name(name: str) -> RuntimeModel:
    """Look up a runtime model.

    Raises
    ------
    UnknownRuntimeError
        If the runtime is not one of the seven supported ones.
    """
    try:
        return _MODELS[name]
    except KeyError:
        raise UnknownRuntimeError(
            f"unknown runtime {name!r}; supported: {', '.join(RUNTIME_NAMES)}"
        ) from None


def all_runtimes() -> list[RuntimeModel]:
    """All runtime models in registry order."""
    return [_MODELS[name] for name in RUNTIME_NAMES]
