"""Runtime model and execution session.

A :class:`RuntimeModel` is static data describing one language
runtime; a :class:`RuntimeSession` binds a model to a guest kernel
and exposes the operation API FaaS workloads are written against
(compute / allocate / log / file I/O).  The session converts each
source-level operation into machine charges through the kernel's
execution context, applying dispatch expansion, allocation inflation,
GC pauses and JIT warmup.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import RuntimeModelError
from repro.guestos.kernel import GuestKernel
from repro.sim.opstream import Op


@dataclass(frozen=True)
class RuntimeModel:
    """Cost model of one language runtime.

    Parameters
    ----------
    name:
        Registry key (``python``, ``node``, ...).
    versions:
        Version string per platform, as listed in §IV-A (versions
        differ between the TDX/SEV/CCA images).
    startup_ns:
        Interpreter/VM bootstrap cost.  Charged as STARTUP and thus
        excluded from the paper-style timing measurements.
    dispatch_factor:
        Instructions executed per abstract compute unit (interpreter
        loop overhead).  Compiled runtimes sit near 1-2.
    jit_factor / jit_warmup_units:
        When ``jit_factor`` is set, execution beyond the warmup
        threshold uses it instead of ``dispatch_factor``.
    alloc_bytes_per_unit:
        Hidden allocation traffic per compute unit (boxing, object
        headers, nursery churn).
    mem_refs_per_unit:
        Memory references per compute unit reaching the cache model.
    gc_threshold_bytes:
        Allocation debt that triggers a collection.
    gc_scan_fraction:
        Fraction of the live heap a collection touches.
    """

    name: str
    versions: dict[str, str]
    startup_ns: float
    dispatch_factor: float
    alloc_bytes_per_unit: float
    mem_refs_per_unit: float
    gc_threshold_bytes: int
    gc_scan_fraction: float
    jit_factor: float | None = None
    jit_warmup_units: int = 0

    def __post_init__(self) -> None:
        if self.dispatch_factor <= 0:
            raise RuntimeModelError(f"{self.name}: dispatch factor must be positive")
        if self.jit_factor is not None and self.jit_factor <= 0:
            raise RuntimeModelError(f"{self.name}: JIT factor must be positive")

    @property
    def is_managed(self) -> bool:
        """True for runtimes with significant GC/boxing traffic."""
        return self.alloc_bytes_per_unit >= 4.0

    def version_for(self, platform: str) -> str:
        """The runtime version installed in a platform's VM images."""
        try:
            return self.versions[platform]
        except KeyError:
            available = ", ".join(sorted(self.versions))
            raise RuntimeModelError(
                f"runtime {self.name!r} has no version for platform "
                f"{platform!r} (has: {available})"
            ) from None


class RuntimeSession:
    """One function execution inside one runtime inside one VM.

    FaaS workload bodies call these methods; everything funnels into
    the kernel's execution context where the platform profile prices
    it.  The stdout of a function (``log``) is written through the
    kernel so that logging-heavy workloads pay syscall costs.
    """

    __slots__ = ("model", "kernel", "ctx", "units_executed", "heap_bytes",
                 "gc_debt", "gc_runs", "stdout_lines", "_booted")

    def __init__(self, model: RuntimeModel, kernel: GuestKernel) -> None:
        self.model = model
        self.kernel = kernel
        self.ctx = kernel.ctx
        self.units_executed = 0
        self.heap_bytes = 0
        self.gc_debt = 0
        self.gc_runs = 0
        self.stdout_lines = 0
        self._booted = False

    # -- lifecycle -----------------------------------------------------

    def bootstrap(self) -> None:
        """Start the runtime (charged as STARTUP — excluded from timing)."""
        if self._booted:
            raise RuntimeModelError("runtime already bootstrapped")
        self.ctx.startup(self.model.startup_ns)
        self._booted = True

    def _require_booted(self) -> None:
        if not self._booted:
            raise RuntimeModelError(
                f"runtime {self.model.name!r} used before bootstrap()"
            )

    # -- operations ------------------------------------------------------

    def _effective_factor(self, units: int) -> float:
        """Average dispatch factor over ``units``, honouring JIT warmup."""
        model = self.model
        if model.jit_factor is None:
            return model.dispatch_factor
        warm_remaining = max(0, model.jit_warmup_units - self.units_executed)
        cold_units = min(units, warm_remaining)
        hot_units = units - cold_units
        if units == 0:
            return model.jit_factor
        return (
            cold_units * model.dispatch_factor + hot_units * model.jit_factor
        ) / units

    def compute(self, units: int, working_set_bytes: int = 0) -> float:
        """Execute ``units`` of abstract work; returns charged ns.

        One unit corresponds to roughly one native instruction-
        equivalent of source-level work before runtime expansion.
        """
        self._require_booted()
        if units < 0:
            raise RuntimeModelError(f"negative compute units: {units}")
        if units == 0:
            return 0.0
        factor = self._effective_factor(units)
        instructions = int(units * factor)
        mem_refs = int(units * self.model.mem_refs_per_unit)
        charged = self.ctx.cpu_execute(
            instructions,
            memory_references=mem_refs,
            working_set_bytes=working_set_bytes or self.heap_bytes,
        )
        # implicit allocation churn proportional to the work done
        churn = int(units * self.model.alloc_bytes_per_unit)
        if churn:
            charged += self._allocate_internal(churn, transient=True)
        self.units_executed += units
        return charged

    def allocate(self, nbytes: int) -> float:
        """Explicit allocation retained on the heap (e.g. buffers)."""
        self._require_booted()
        if nbytes < 0:
            raise RuntimeModelError(f"negative allocation: {nbytes}")
        return self._allocate_internal(nbytes, transient=False)

    def release(self, nbytes: int) -> None:
        """Drop ``nbytes`` from the tracked heap (free/unreference)."""
        self._require_booted()
        if nbytes < 0:
            raise RuntimeModelError(f"negative release: {nbytes}")
        self.heap_bytes = max(0, self.heap_bytes - nbytes)

    def _allocate_internal(self, nbytes: int, transient: bool) -> float:
        charged = self.ctx.mem_alloc(nbytes)
        if not transient:
            self.heap_bytes += nbytes
        self.gc_debt += nbytes
        if self.gc_debt >= self.model.gc_threshold_bytes:
            charged += self._collect()
        return charged

    def _collect(self) -> float:
        """A garbage collection: scan part of the live heap."""
        self.gc_runs += 1
        self.gc_debt = 0
        scan_bytes = int(self.heap_bytes * self.model.gc_scan_fraction)
        if scan_bytes <= 0:
            return 0.0
        return self.ctx.mem_copy(scan_bytes)

    def log(self, message: str) -> float:
        """Write one line to stdout (a write syscall through the kernel)."""
        self._require_booted()
        self.stdout_lines += 1
        payload = message.encode()
        charged = self.compute(8 + len(payload) // 8)   # formatting work
        charged += self.ctx.syscall_entry(320.0)        # write(2) to the log
        charged += self.ctx.mem_copy(len(payload))
        return charged

    # -- batched operations --------------------------------------------------

    def _compute_ops(self, units: int, working_set_bytes: int,
                     ops: list) -> None:
        """Record one ``compute`` call's ops, evolving session state.

        The JIT-warmup factor, GC-debt accounting and heap tracking
        are pure integer arithmetic independent of charging, so they
        can run at record time; the appended ops then price exactly
        like :meth:`compute` would have charged at this state.
        """
        if units < 0:
            raise RuntimeModelError(f"negative compute units: {units}")
        if units == 0:
            return
        factor = self._effective_factor(units)
        ops.append(Op("cpu", (
            int(units * factor),
            int(units * self.model.mem_refs_per_unit),
            working_set_bytes or self.heap_bytes,
        )))
        churn = int(units * self.model.alloc_bytes_per_unit)
        if churn:
            self._allocate_ops(churn, transient=True, ops=ops)
        self.units_executed += units

    def _allocate_ops(self, nbytes: int, transient: bool, ops: list) -> None:
        """Record one ``_allocate_internal`` call's ops (incl. GC)."""
        ops.append(Op("mem_alloc", (nbytes,)))
        if not transient:
            self.heap_bytes += nbytes
        self.gc_debt += nbytes
        if self.gc_debt >= self.model.gc_threshold_bytes:
            self.gc_runs += 1
            self.gc_debt = 0
            scan_bytes = int(self.heap_bytes * self.model.gc_scan_fraction)
            if scan_bytes > 0:
                ops.append(Op("mem_copy", (scan_bytes,)))

    def _log_ops(self, message: str, ops: list) -> None:
        """Record one ``log`` call's ops, evolving session state."""
        self.stdout_lines += 1
        payload_len = len(message.encode())
        self._compute_ops(8 + payload_len // 8, 0, ops)
        ops.append(Op("syscall", (320.0,)))
        ops.append(Op("mem_copy", (payload_len,)))

    def compute_batch(self, units: int, count: int,
                      working_set_bytes: int = 0) -> float:
        """Run ``count`` identical ``compute`` calls as one batch.

        JIT warmup and GC still evolve call by call — each repetition
        is recorded at its own session state — but all charges fold
        into one ledger merge.  Byte-identical to calling
        :meth:`compute` ``count`` times.
        """
        self._require_booted()
        if count < 0:
            raise RuntimeModelError(f"negative call count: {count}")
        batch = self.ctx.batch()
        for _ in range(count):
            ops: list = []
            self._compute_ops(units, working_set_bytes, ops)
            batch.add_seq(ops)
        return self.ctx.run_batch(batch)

    def log_batch(self, message: str, count: int) -> float:
        """Write ``count`` identical lines to stdout as one batch."""
        self._require_booted()
        if count < 0:
            raise RuntimeModelError(f"negative call count: {count}")
        batch = self.ctx.batch()
        for _ in range(count):
            ops: list = []
            self._log_ops(message, ops)
            batch.add_seq(ops)
        return self.ctx.run_batch(batch)

    def batch(self) -> "SessionBatch":
        """A staged recorder over compute/allocate/release/log."""
        self._require_booted()
        return SessionBatch(self)

    # -- file I/O passthrough ------------------------------------------------

    def write_file(self, path: str, data: bytes) -> int:
        """Create-if-needed and append to a file."""
        self._require_booted()
        if not self.kernel.fs.exists(path):
            self.kernel.sys_create(path)
        return self.kernel.sys_write(path, data)

    def read_file(self, path: str) -> bytes:
        """Read a whole file."""
        self._require_booted()
        return self.kernel.sys_read(path)

    def delete_file(self, path: str) -> int:
        """Unlink a file."""
        self._require_booted()
        return self.kernel.sys_unlink(path)

    def mkdir(self, path: str) -> None:
        """Create a directory."""
        self._require_booted()
        self.kernel.sys_mkdir(path)

    def rmdir(self, path: str) -> None:
        """Remove an empty directory."""
        self._require_booted()
        self.kernel.sys_rmdir(path)


class SessionBatch:
    """Stages a mixed sequence of session operations for one batch.

    Mirrors the session's per-op API (compute / allocate / release /
    log); session state — heap, GC debt, JIT warmup, stdout count —
    evolves at record time, and all charges fold into the ledger on
    :meth:`commit`.  Byte-identical to issuing the same calls per op.
    """

    __slots__ = ("session", "batch")

    def __init__(self, session: RuntimeSession) -> None:
        self.session = session
        self.batch = session.ctx.batch()

    def compute(self, units: int, working_set_bytes: int = 0,
                count: int = 1) -> "SessionBatch":
        for _ in range(count):
            ops: list = []
            self.session._compute_ops(units, working_set_bytes, ops)
            self.batch.add_seq(ops)
        return self

    def allocate(self, nbytes: int) -> "SessionBatch":
        if nbytes < 0:
            raise RuntimeModelError(f"negative allocation: {nbytes}")
        ops: list = []
        self.session._allocate_ops(nbytes, transient=False, ops=ops)
        self.batch.add_seq(ops)
        return self

    def release(self, nbytes: int) -> "SessionBatch":
        if nbytes < 0:
            raise RuntimeModelError(f"negative release: {nbytes}")
        self.session.heap_bytes = max(0, self.session.heap_bytes - nbytes)
        return self

    def log(self, message: str, count: int = 1) -> "SessionBatch":
        for _ in range(count):
            ops: list = []
            self.session._log_ops(message, ops)
            self.batch.add_seq(ops)
        return self

    def commit(self) -> float:
        """Run the staged ops; returns total charged nanoseconds."""
        total = self.session.ctx.run_batch(self.batch)
        self.batch = self.session.ctx.batch()
        return total
