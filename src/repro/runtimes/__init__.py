"""Language runtime cost models.

ConfBench's FaaS mode executes functions through the seven runtimes
the paper evaluates: Python, Node.js, Ruby, Lua, LuaJIT, Go and Wasm
(the Wasmi interpreter).  Each runtime is a cost model describing how
it expands abstract *compute units* into machine work:

- **dispatch factor** — interpreter/JIT instruction expansion;
- **allocation traffic** — bytes allocated per unit of work (object
  headers, boxing, GC nursery churn);
- **GC behaviour** — periodic heap scans once enough allocation debt
  accumulates;
- **JIT warmup** — Node and LuaJIT start at interpreter speed and
  drop to compiled speed after a warmup threshold;
- **startup** — runtime bootstrap, which ConfBench's launchers
  exclude from timing measurements.

The TEE-relevant consequence, visible in Fig. 6/7: heavier managed
runtimes generate more memory traffic, and memory traffic is exactly
what confidential VMs tax (encryption, integrity, RMP checks) — so
Python/Node/Ruby cells run hotter than Lua/LuaJIT/Go/Wasm cells.
"""

from repro.runtimes.base import RuntimeModel, RuntimeSession
from repro.runtimes.registry import (
    RUNTIME_NAMES,
    runtime_by_name,
    all_runtimes,
)

__all__ = [
    "RuntimeModel",
    "RuntimeSession",
    "RUNTIME_NAMES",
    "runtime_by_name",
    "all_runtimes",
]
