"""The Key Broker Service: layer keys released only after attestation.

The coco-serverless deployment story: encrypted image layers are
useless until the KBS hands over their decryption keys, and the KBS
hands them over only to a guest whose launch evidence verifies.  The
broker fronts the same :class:`~repro.attest.service.VerifierService`
the pool admission path uses, so:

- a *fresh* launch pays the full evidence + verification price before
  any key moves;
- a *resumed* session (PR 8 :class:`~repro.attest.service.SessionCache`)
  skips evidence generation, verification, and the collateral origin
  round-trip — the supply chain's attestation tax collapses to the
  resume cost plus key wrapping;
- a failed or stale launch gets a typed
  :class:`~repro.errors.KeyReleaseDeniedError`, never a key.

**Freshness is stricter than verification.**  Verification tolerates
stale collateral inside the grace window (availability: a PCS outage
must not take the fleet down), but releasing long-lived layer keys on
evidence checked against a CRL *at or past* ``next_update`` is a
different risk, so the broker re-checks
``now < earliest_crl_expiry_ns`` — strictly, the same boundary
convention :class:`~repro.attest.pcs.FreshnessPolicy`,
:meth:`CertificateRevocationList.is_stale`, and the session cache
use.  At exactly ``next_update`` every consumer agrees the document
is stale.

Every decision lands one entry in a bounded request log; entries
carrying ``!`` are denials, so *clean* entries reconcile exactly with
the ``released`` counter.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.attest.pcs import RequestLog
from repro.attest.service import LaunchVerdict, VerifierService
from repro.errors import (
    AttestationError,
    KeyReleaseDeniedError,
    SupplyChainError,
)
from repro.hw.nic import NicModel, wan_path

#: wrapping one layer key to the launch's transport key (symmetric
#: wrap + HMAC, far cheaper than the RSA launch verification)
KEY_WRAP_COST_NS = 45_000.0

#: RCAR handshake payloads: the attestation request carries the quote/
#: report (~5 KiB); the response carries the wrapped keys
KBS_REQUEST_BYTES = 5_120
KBS_RESPONSE_BYTES = 1_024


@dataclass(frozen=True)
class KeyRelease:
    """One successful release: the verdict that earned it + the keys."""

    verdict: LaunchVerdict
    keys: dict[str, bytes] = field(default_factory=dict)
    release_ns: float = 0.0

    @property
    def resumed(self) -> bool:
        return self.verdict.resumed


class KeyBrokerService:
    """Attestation-gated key escrow for encrypted image layers."""

    def __init__(self, service: VerifierService,
                 require_fresh_collateral: bool = True,
                 nic: NicModel | None = None,
                 log_capacity: int = 8192) -> None:
        self.service = service
        #: the broker is a remote relying party: every release pays
        #: the RCAR handshake on this path (two exchanges fresh —
        #: challenge then attest — one exchange on session resumption)
        self.nic = nic if nic is not None else wan_path()
        #: the stricter-than-verify stance documented above; turn off
        #: only for deployments that accept grace-window key release
        self.require_fresh_collateral = require_fresh_collateral
        self._keys: dict[str, bytes] = {}
        self.request_log = RequestLog(log_capacity)
        self.stats: dict[str, int] = {
            "released": 0,
            "resumed": 0,
            "denied.attestation": 0,
            "denied.stale_collateral": 0,
            "denied.unknown_key": 0,
        }

    def register_key(self, key_id: str, key: bytes) -> None:
        if not key:
            raise SupplyChainError(f"refusing empty key for {key_id!r}")
        self._keys[key_id] = key

    def register_bundle(self, bundle) -> None:
        """Escrow every layer key of an :class:`ImageBundle`."""
        for key_id, key in bundle.keys.items():
            self.register_key(key_id, key)

    def _deny(self, job, cause: str, reason: str, detail: str
              ) -> KeyReleaseDeniedError:
        self.stats[f"denied.{cause}"] += 1
        self.request_log.append(f"RELEASE {job.measurement}!{cause}")
        return KeyReleaseDeniedError(
            f"key release denied for {job.measurement}: {detail}",
            reason=reason)

    def release(self, job, key_ids, ctx,
                queue_wait_ns: float = 0.0) -> KeyRelease:
        """Verify ``job``'s launch and release ``key_ids`` — or deny.

        All costs (evidence, verification or session resume, key
        wrapping) are charged to ``ctx``; ``release_ns`` is the ledger
        delta, so the caller can put the whole key-release tax on the
        boot critical path.
        """
        before = ctx.ledger.total()
        # RCAR challenge exchange: nonce request precedes evidence
        ctx.charge_network(self.nic.round_trip(KBS_REQUEST_BYTES,
                                               ctx.rng))
        try:
            verdict = self.service.verify_launch(job, ctx, queue_wait_ns)
        except AttestationError as exc:
            # the verifier raises on cryptographic failure (bad chain,
            # bad signature, nonce mismatch); to the broker that is
            # exactly a failed attestation, never a transport error
            raise self._deny(job, "attestation", "attestation",
                             f"launch evidence failed verification: "
                             f"{exc}") from exc
        if not verdict.accepted:
            raise self._deny(job, "attestation", "attestation",
                             "launch evidence failed verification")
        collateral = self.service.collateral
        if self.require_fresh_collateral and collateral is not None:
            expiry_ns = collateral.earliest_crl_expiry_ns()
            # strict boundary: a CRL AT next_update is already stale
            # (the convention FreshnessPolicy / CRL.is_stale / the
            # session cache all share)
            if not ctx.clock.now() < expiry_ns:
                raise self._deny(
                    job, "stale_collateral", "stale_collateral",
                    "verification collateral is at or past next_update")
        missing = [kid for kid in key_ids if kid not in self._keys]
        if missing:
            raise self._deny(job, "unknown_key", "unknown_key",
                             f"no escrowed key for {missing[0]!r}")
        ctx.crypto(KEY_WRAP_COST_NS * len(tuple(key_ids)))
        if not verdict.resumed:
            # the attestation exchange proper; resumed sessions fold
            # ticket + release into the single exchange charged above
            ctx.charge_network(self.nic.round_trip(KBS_RESPONSE_BYTES,
                                                   ctx.rng))
        released = {kid: self._keys[kid] for kid in key_ids}
        self.stats["released"] += 1
        if verdict.resumed:
            self.stats["resumed"] += 1
        self.request_log.append(
            f"RELEASE {job.measurement} keys={len(released)}")
        return KeyRelease(verdict=verdict, keys=released,
                          release_ns=ctx.ledger.total() - before)

    def clean_log_entries(self) -> int:
        """Granted releases in the log — reconciles with ``released``."""
        return sum(1 for entry in self.request_log if "!" not in entry)
