"""A deterministic OCI registry plus eager and lazy pull strategies.

The :class:`Registry` is a content-addressed blob store across the
WAN: every manifest and chunk fetch prices a real NIC round-trip on
the caller's execution context and lands one entry in a bounded
:class:`~repro.attest.pcs.RequestLog` — the reconciliation side of
the fig10 counters (clean log entries must equal the pull counters
exactly, like PCS origin fetches in fig5x).

Two pull strategies share one verification discipline (signature
first, then per-chunk digest checks, then decrypt, then unpack into
the guest filesystem):

- :class:`EagerPull` — fetch every chunk of every layer at boot, the
  classic pull-then-run critical path.
- :class:`LazyPull` — nydus-style chunk-on-demand: boot materializes
  only each layer's first chunk (the bootstrap/metadata window); the
  rest arrive as *chunk faults* via :meth:`LazyImage.access` when the
  workload touches them.  Encrypted layers decrypt per chunk — the
  offset-addressable keystream in :mod:`repro.supply.image` exists
  exactly so a fault never has to materialize its neighbours.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.attest.crypto import DIGEST_COST_PER_BYTE_NS
from repro.attest.pcs import RequestLog
from repro.errors import ImageVerificationError, SupplyChainError
from repro.hw.nic import NicModel, wan_path
from repro.supply.image import (
    SEAL_COST_PER_BYTE_NS,
    ChunkRef,
    ImageBundle,
    ImageManifest,
    ImageSignature,
    LayerDescriptor,
    keystream_xor,
    sha256_digest,
    verify_image_signature,
)


class Registry:
    """Content-addressed blobs + manifests, one WAN hop away.

    Deterministic: serving order never matters, network cost comes
    from the caller's context RNG, and the request log is the ground
    truth the pull counters reconcile against (entries carrying ``!``
    are error markers and do not count as served requests).
    """

    def __init__(self, nic: NicModel | None = None,
                 log_capacity: int = 8192) -> None:
        self.nic = nic if nic is not None else wan_path()
        self._manifests: dict[tuple[str, str],
                              tuple[ImageManifest,
                                    ImageSignature | None]] = {}
        self._blobs: dict[str, bytes] = {}
        self.request_log = RequestLog(log_capacity)
        self.stats: dict[str, int] = {
            "manifest_fetches": 0,
            "chunk_fetches": 0,
            "bytes_served": 0,
            "misses": 0,
        }

    def push(self, bundle: ImageBundle) -> None:
        manifest = bundle.manifest
        self._manifests[(manifest.name, manifest.tag)] = (
            manifest, bundle.signature)
        self._blobs.update(bundle.blobs)

    def tamper(self, digest: str, flip: int = 0) -> None:
        """Corrupt a stored blob in place (supply-chain attack helper).

        The blob keeps its advertised digest, so the corruption is
        only caught by the puller's content verification.
        """
        try:
            data = self._blobs[digest]
        except KeyError:
            raise SupplyChainError(
                f"cannot tamper with unknown blob {digest}") from None
        mutated = bytearray(data)
        mutated[flip % len(mutated)] ^= 0xFF
        self._blobs[digest] = bytes(mutated)

    def fetch_manifest(self, name: str, tag: str, ctx
                       ) -> tuple[ImageManifest, ImageSignature | None]:
        key = (name, tag)
        entry = self._manifests.get(key)
        if entry is None:
            self.stats["misses"] += 1
            self.request_log.append(f"GET /v2/{name}/manifests/{tag}!404")
            raise SupplyChainError(
                f"registry has no manifest for {name}:{tag}")
        manifest, _signature = entry
        payload = len(manifest.canonical_bytes())
        ctx.charge_network(self.nic.round_trip(payload, ctx.rng))
        self.stats["manifest_fetches"] += 1
        self.stats["bytes_served"] += payload
        self.request_log.append(f"GET /v2/{name}/manifests/{tag}")
        return entry

    def fetch_chunk(self, chunk: ChunkRef, ctx) -> bytes:
        data = self._blobs.get(chunk.digest)
        if data is None:
            self.stats["misses"] += 1
            self.request_log.append(
                f"GET /v2/blobs/{chunk.digest[:19]}!404")
            raise SupplyChainError(
                f"registry has no blob {chunk.digest}")
        ctx.charge_network(self.nic.round_trip(chunk.size, ctx.rng))
        self.stats["chunk_fetches"] += 1
        self.stats["bytes_served"] += chunk.size
        self.request_log.append(f"GET /v2/blobs/{chunk.digest[:19]}")
        return data

    def clean_log_entries(self) -> int:
        """Successfully served requests — what pull counters reconcile
        against."""
        return sum(1 for entry in self.request_log if "!" not in entry)


@dataclass
class PullReport:
    """What one pull did and where its virtual time went."""

    strategy: str = "eager"
    chunks_total: int = 0
    chunks_fetched: int = 0
    chunk_faults: int = 0
    bytes_pulled: int = 0
    layers_unpacked: int = 0
    signature_verified: bool = False
    #: phase → ns, measured as ledger deltas on the pull context
    phases: dict = field(default_factory=dict)

    def add_phase(self, name: str, nanos: float) -> None:
        self.phases[name] = self.phases.get(name, 0.0) + nanos

    def to_dict(self) -> dict:
        payload = {
            "strategy": self.strategy,
            "chunks_total": self.chunks_total,
            "chunks_fetched": self.chunks_fetched,
            "chunk_faults": self.chunk_faults,
            "bytes_pulled": self.bytes_pulled,
            "layers_unpacked": self.layers_unpacked,
            "signature_verified": self.signature_verified,
            "phases": dict(sorted(self.phases.items())),
        }
        return dict(sorted(payload.items()))


class _PullStrategy:
    """Shared verification discipline for both strategies.

    ``publisher_key`` set means *secure* pulls: the manifest signature
    must validate before any digest in it is trusted, and encrypted
    layers require their KBS-released key.  ``publisher_key=None``
    means a normal (unsigned, plaintext) deployment.
    """

    strategy = "base"

    def __init__(self, registry: Registry, publisher_key=None) -> None:
        self.registry = registry
        self.publisher_key = publisher_key

    def _verify_manifest(self, manifest: ImageManifest,
                         signature: ImageSignature | None, ctx,
                         report: PullReport) -> None:
        if self.publisher_key is None:
            return
        before = ctx.ledger.total()
        verify_image_signature(manifest, signature, self.publisher_key,
                               ctx)
        report.signature_verified = True
        report.add_phase("signature_ns", ctx.ledger.total() - before)

    def _fetch_verified(self, chunk: ChunkRef, ctx,
                        report: PullReport) -> bytes:
        before = ctx.ledger.total()
        data = self.registry.fetch_chunk(chunk, ctx)
        report.chunks_fetched += 1
        report.bytes_pulled += chunk.size
        report.add_phase("pull_ns", ctx.ledger.total() - before)
        before = ctx.ledger.total()
        ctx.crypto(DIGEST_COST_PER_BYTE_NS * len(data))
        if sha256_digest(data) != chunk.digest:
            raise ImageVerificationError(
                f"chunk at offset {chunk.offset} hashes to "
                f"{sha256_digest(data)}, manifest says {chunk.digest}; "
                "aborting launch")
        report.add_phase("verify_ns", ctx.ledger.total() - before)
        return data

    def _layer_key(self, layer: LayerDescriptor,
                   keys: "dict[str, bytes] | None") -> bytes | None:
        if not layer.encrypted:
            return None
        if not keys or layer.key_id not in keys:
            raise SupplyChainError(
                f"layer {layer.index} is encrypted under "
                f"{layer.key_id!r} but no such key was released")
        return keys[layer.key_id]

    def _unseal(self, data: bytes, key: bytes | None, offset: int, ctx,
                report: PullReport) -> bytes:
        if key is None:
            return data
        before = ctx.ledger.total()
        ctx.crypto(SEAL_COST_PER_BYTE_NS * len(data))
        plaintext = keystream_xor(data, key, offset)
        report.add_phase("decrypt_ns", ctx.ledger.total() - before)
        return plaintext

    def _unpack(self, fs, manifest: ImageManifest,
                layer: LayerDescriptor, chunk: ChunkRef, data: bytes,
                ctx, report: PullReport) -> None:
        before = ctx.ledger.total()
        root = f"/images/{manifest.name}/{manifest.tag}"
        directory = f"{root}/layer-{layer.index}"
        if not fs.exists(directory):
            fs.makedirs(directory)
        path = f"{directory}/chunk-{chunk.offset}"
        if not fs.exists(path):
            fs.create(path)
        fs.write(path, data)
        ctx.disk_write(len(data))
        report.add_phase("unpack_ns", ctx.ledger.total() - before)


class EagerPull(_PullStrategy):
    """Fetch, verify, decrypt, and unpack every chunk at boot."""

    strategy = "eager"

    def pull(self, name: str, tag: str, fs, ctx,
             keys: "dict[str, bytes] | None" = None) -> PullReport:
        report = PullReport(strategy=self.strategy)
        manifest, signature = self.registry.fetch_manifest(name, tag, ctx)
        report.chunks_total = manifest.total_chunks
        self._verify_manifest(manifest, signature, ctx, report)
        for layer in manifest.layers:
            key = self._layer_key(layer, keys)
            for chunk in layer.chunks:
                data = self._fetch_verified(chunk, ctx, report)
                data = self._unseal(data, key, chunk.offset, ctx, report)
                self._unpack(fs, manifest, layer, chunk, data, ctx,
                             report)
            report.layers_unpacked += 1
        return report


class LazyImage:
    """A lazily-materialized image: bootstrap now, fault chunks later."""

    def __init__(self, strategy: "LazyPull", manifest: ImageManifest,
                 fs, keys: "dict[str, bytes] | None",
                 report: PullReport) -> None:
        self._strategy = strategy
        self.manifest = manifest
        self._fs = fs
        self._keys = keys
        self.report = report
        self._present: set[tuple[int, int]] = set()

    def mark_present(self, layer_index: int, chunk_index: int) -> None:
        self._present.add((layer_index, chunk_index))

    def access(self, layer_index: int, chunk_index: int, ctx) -> bool:
        """Touch one chunk; True if it faulted (fetched on demand)."""
        if (layer_index, chunk_index) in self._present:
            return False
        layer = self.manifest.layers[layer_index]
        chunk = layer.chunks[chunk_index]
        strategy = self._strategy
        key = strategy._layer_key(layer, self._keys)
        data = strategy._fetch_verified(chunk, ctx, self.report)
        data = strategy._unseal(data, key, chunk.offset, ctx,
                                self.report)
        strategy._unpack(self._fs, self.manifest, layer, chunk, data,
                         ctx, self.report)
        self._present.add((layer_index, chunk_index))
        self.report.chunk_faults += 1
        return True


class LazyPull(_PullStrategy):
    """Nydus-style chunk-on-demand: bootstrap at boot, fault the rest."""

    strategy = "lazy"

    def pull(self, name: str, tag: str, fs, ctx,
             keys: "dict[str, bytes] | None" = None) -> LazyImage:
        report = PullReport(strategy=self.strategy)
        manifest, signature = self.registry.fetch_manifest(name, tag, ctx)
        report.chunks_total = manifest.total_chunks
        self._verify_manifest(manifest, signature, ctx, report)
        image = LazyImage(self, manifest, fs, keys, report)
        for layer in manifest.layers:
            key = self._layer_key(layer, keys)  # fail fast, like eager
            if not layer.chunks:
                continue
            chunk = layer.chunks[0]
            data = self._fetch_verified(chunk, ctx, report)
            data = self._unseal(data, key, chunk.offset, ctx, report)
            self._unpack(fs, manifest, layer, chunk, data, ctx, report)
            image.mark_present(layer.index, 0)
            report.layers_unpacked += 1
        return image
