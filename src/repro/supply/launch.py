"""Supply-chain provisioning on the launch critical path.

Two consumers, two fidelities:

- :class:`LaunchProvisioner` — the full-fidelity path for
  :class:`~repro.core.pool.TeePool` admission: attest the launch,
  release layer keys through the KBS, pull + verify + decrypt +
  unpack the image into a fresh guest filesystem, and report exactly
  where the virtual nanoseconds went.  Session resumption (PR 8)
  makes repeat admissions of the same VM identity cheap end-to-end:
  the KBS resumes instead of re-verifying and the registry is only
  asked for what the strategy still needs.
- :class:`ImagePolicy` — the fixed-cost abstraction for the
  cluster-scale sweep (:class:`~repro.core.cluster.gateway
  .ClusterGateway`), where million-request traces cannot afford
  per-chunk byte work.  Costs are constants so a sweep's supply tax
  is exactly attributable to its boot mix, mirroring how the
  zone-collateral tiers price their hits.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.attest.service import LaunchAttestor, LaunchVerdict
from repro.guestos.filesystem import InMemoryFileSystem
from repro.supply.kbs import KeyBrokerService
from repro.supply.registry import (
    EagerPull,
    LazyImage,
    LazyPull,
    PullReport,
    Registry,
)

#: fixed cluster-model costs (ns): what one cold boot adds for each
#: supply-chain step.  Eager pulls the whole image; lazy pays a small
#: bootstrap plus per-fault chunk fetches after boot.
EAGER_PULL_NS = 95_000_000.0
LAZY_BOOTSTRAP_NS = 18_000_000.0
CHUNK_FAULT_NS = 2_400_000.0
KEY_RELEASE_NS = 6_500_000.0


@dataclass(frozen=True)
class ImagePolicy:
    """Fixed-cost supply-chain policy for cluster-scale sweeps.

    ``strategy`` is ``"eager"`` or ``"lazy"``; ``signed`` adds the
    key-release cost to *secure* cold boots (normal boots pull the
    same bytes but never talk to the KBS).  ``faults_per_boot`` is
    the deterministic number of post-boot chunk faults a lazy boot
    pays — the warm-path tail the strategy trades its fast boot for.
    """

    strategy: str = "eager"
    signed: bool = True
    eager_pull_ns: float = EAGER_PULL_NS
    lazy_bootstrap_ns: float = LAZY_BOOTSTRAP_NS
    chunk_fault_ns: float = CHUNK_FAULT_NS
    key_release_ns: float = KEY_RELEASE_NS
    faults_per_boot: int = 4

    def boot_cost_ns(self, secure: bool) -> float:
        """The supply-chain tax one cold boot adds to the ledger."""
        if self.strategy == "lazy":
            cost = (self.lazy_bootstrap_ns
                    + self.faults_per_boot * self.chunk_fault_ns)
        else:
            cost = self.eager_pull_ns
        if secure and self.signed:
            cost += self.key_release_ns
        return cost


@dataclass
class ProvisionReport:
    """One VM's full boot-path supply-chain accounting."""

    vm_id: str
    verdict: LaunchVerdict
    pull: PullReport
    release_ns: float = 0.0
    admission_ns: float = 0.0
    #: the lazily-materialized image, when the strategy is lazy
    image: "LazyImage | None" = None
    fs: InMemoryFileSystem = field(default_factory=InMemoryFileSystem)

    @property
    def resumed(self) -> bool:
        return self.verdict.resumed


class LaunchProvisioner:
    """Boot one confidential workload: attest → keys → image.

    Order matters and is the whole point: evidence is verified (or a
    session resumed) *first*, keys move only on acceptance, and only
    then does the image pull start — so every step of the supply
    chain lands on the boot critical path and a denial aborts the
    launch before any layer byte reaches the guest.
    """

    def __init__(self, attestor: LaunchAttestor, registry: Registry,
                 kbs: KeyBrokerService, image: tuple[str, str],
                 publisher_key=None, strategy: str = "eager",
                 key_ids: tuple[str, ...] = ()) -> None:
        self.attestor = attestor
        self.registry = registry
        self.kbs = kbs
        self.image_name, self.image_tag = image
        self.publisher_key = publisher_key
        #: deploy-time policy: which escrowed keys this image needs
        #: (its manifest's ``key_ids``)
        self.key_ids = tuple(key_ids)
        if strategy not in ("eager", "lazy"):
            raise ValueError(f"unknown pull strategy {strategy!r}")
        self.strategy = strategy
        self.stats: dict[str, int] = {
            "provisioned": 0,
            "resumed": 0,
            "aborted": 0,
        }

    def puller(self):
        cls = LazyPull if self.strategy == "lazy" else EagerPull
        return cls(self.registry, self.publisher_key)

    def provision(self, vm_id: str) -> ProvisionReport:
        """Run the full supply chain for one launch of ``vm_id``.

        Raises :class:`~repro.errors.KeyReleaseDeniedError` when the
        KBS refuses and :class:`~repro.errors.ImageVerificationError`
        when the image fails signature or digest checks — either way
        the launch aborts with nothing unpacked.
        """
        ctx = self.attestor.admission_context(vm_id)
        job = self.attestor.make_job(vm_id, ctx)
        try:
            release = self.kbs.release(job, self.key_ids, ctx)
            fs = InMemoryFileSystem()
            puller = self.puller()
            pulled = puller.pull(self.image_name, self.image_tag, fs,
                                 ctx, keys=release.keys)
        except Exception:
            self.stats["aborted"] += 1
            raise
        if isinstance(pulled, LazyImage):
            image: LazyImage | None = pulled
            pull_report = pulled.report
        else:
            image = None
            pull_report = pulled
        self.stats["provisioned"] += 1
        if release.resumed:
            self.stats["resumed"] += 1
        return ProvisionReport(
            vm_id=vm_id, verdict=release.verdict, pull=pull_report,
            release_ns=release.release_ns,
            admission_ns=ctx.ledger.total(), image=image, fs=fs)
