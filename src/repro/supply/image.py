"""OCI-style confidential container images.

The supply-chain model the coco-serverless stack implies: an image is
a *manifest* (canonical JSON, content-addressed by its SHA-256
digest) naming a sequence of *layers*, each layer a content-addressed
blob split into fixed-size *chunks* (the nydus unit of lazy pull).
Confidential layers are sealed with a per-layer symmetric key that
only the Key Broker Service releases — and the registry stores only
sealed bytes, so chunk digests cover exactly what travels the wire
and a tampered blob is caught *before* any decryption key is used.

Signatures are cosign-style: the publisher signs the manifest's
canonical bytes with the repo's pure-Python RSA
(:mod:`repro.attest.crypto`), and verifiers check the signature
before trusting any digest in the manifest.

Sealing is an XOR keystream of SHA-256 blocks (``sha256(key ||
block_index)``), chosen because it is *offset-addressable*: a lazy
puller can decrypt chunk 17 without materializing chunks 0–16, which
is what makes chunk-on-demand work on encrypted layers.  This is a
simulation-grade cipher — the point is deterministic bytes and
realistic cost accounting, not IND-CPA.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.errors import ImageVerificationError, SupplyChainError
from repro.sim.rng import SimRng

#: nydus-style chunk size: the unit of lazy pull and of content
#: addressing below the layer
CHUNK_BYTES = 65_536

#: sealing keystream throughput (ns/byte) — symmetric crypto is an
#: order of magnitude cheaper than the RSA ops in attest.crypto
SEAL_COST_PER_BYTE_NS = 0.9

#: SHA-256 keystream block size (the digest size)
_KS_BLOCK = 32


def sha256_digest(data: bytes) -> str:
    """The OCI-style content address of ``data``."""
    return "sha256:" + hashlib.sha256(data).hexdigest()


def _expand(seed: bytes, size: int) -> bytes:
    """Deterministically expand ``seed`` to ``size`` pseudo-bytes.

    Layer content must be deterministic (byte-identical serial vs
    parallel) and cheap; hashing a 32-byte seed per 32-byte block is
    far faster than drawing every byte through the RNG.
    """
    blocks = []
    for index in range((size + _KS_BLOCK - 1) // _KS_BLOCK):
        blocks.append(hashlib.sha256(
            seed + index.to_bytes(8, "big")).digest())
    return b"".join(blocks)[:size]


def keystream_xor(data: bytes, key: bytes, offset: int = 0) -> bytes:
    """Seal/unseal ``data`` at byte ``offset`` within its layer.

    XOR with ``sha256(key || block_index)`` blocks.  ``offset`` must be
    block-aligned so chunks decrypt independently of their neighbours.
    """
    if offset % _KS_BLOCK:
        raise SupplyChainError(
            f"keystream offset must be {_KS_BLOCK}-byte aligned, "
            f"got {offset}")
    first_block = offset // _KS_BLOCK
    blocks = []
    for index in range((len(data) + _KS_BLOCK - 1) // _KS_BLOCK):
        blocks.append(hashlib.sha256(
            key + (first_block + index).to_bytes(8, "big")).digest())
    stream = b"".join(blocks)[:len(data)]
    return bytes(a ^ b for a, b in zip(data, stream))


@dataclass(frozen=True)
class ChunkRef:
    """One chunk of a layer blob: content address + position."""

    digest: str
    size: int
    offset: int


@dataclass(frozen=True)
class LayerDescriptor:
    """One layer: the stored (possibly sealed) blob, chunked.

    ``digest`` addresses the stored bytes — sealed bytes for encrypted
    layers — so integrity verification never needs the key.
    ``key_id`` names the KBS-held decryption key; empty for plaintext
    layers.
    """

    index: int
    digest: str
    size: int
    encrypted: bool = False
    key_id: str = ""
    chunks: tuple[ChunkRef, ...] = ()

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "digest": self.digest,
            "size": self.size,
            "encrypted": self.encrypted,
            "key_id": self.key_id,
            "chunks": [{"digest": c.digest, "size": c.size,
                        "offset": c.offset} for c in self.chunks],
        }


@dataclass(frozen=True)
class ImageManifest:
    """The content-addressed root of one image."""

    name: str
    tag: str
    layers: tuple[LayerDescriptor, ...] = ()

    def canonical_bytes(self) -> bytes:
        """Canonical (sorted-key, no-whitespace) JSON — what is signed."""
        payload = {
            "name": self.name,
            "tag": self.tag,
            "layers": [layer.to_dict() for layer in self.layers],
        }
        return json.dumps(payload, sort_keys=True,
                          separators=(",", ":")).encode("utf-8")

    @property
    def digest(self) -> str:
        return sha256_digest(self.canonical_bytes())

    @property
    def total_size(self) -> int:
        return sum(layer.size for layer in self.layers)

    @property
    def total_chunks(self) -> int:
        return sum(len(layer.chunks) for layer in self.layers)

    @property
    def key_ids(self) -> tuple[str, ...]:
        return tuple(layer.key_id for layer in self.layers
                     if layer.encrypted)


@dataclass(frozen=True)
class ImageSignature:
    """A cosign-style detached signature over the manifest bytes."""

    manifest_digest: str
    signature: bytes
    key_fingerprint: str


@dataclass
class ImageBundle:
    """Everything a publisher pushes: manifest, signature, blobs, keys.

    ``blobs`` maps chunk digest → stored chunk bytes.  ``keys`` maps
    ``key_id`` → layer key and never leaves the publisher/KBS side —
    the registry only ever sees sealed bytes.
    """

    manifest: ImageManifest
    signature: ImageSignature | None = None
    blobs: dict[str, bytes] = field(default_factory=dict)
    keys: dict[str, bytes] = field(default_factory=dict)


def build_image(name: str, tag: str, rng: SimRng,
                layer_sizes: tuple[int, ...] = (3 * CHUNK_BYTES,
                                                2 * CHUNK_BYTES),
                encrypted: bool = True) -> ImageBundle:
    """Deterministically build one image from an RNG substream.

    Layer content, per-layer keys, and therefore every digest are pure
    functions of ``(name, tag, rng stream, layer_sizes, encrypted)``.
    """
    layers = []
    blobs: dict[str, bytes] = {}
    keys: dict[str, bytes] = {}
    for index, size in enumerate(layer_sizes):
        plaintext = _expand(rng.child(f"layer/{index}").bytes(32), size)
        if encrypted:
            key_id = f"{name}:{tag}/layer-{index}"
            key = rng.child(f"key/{index}").bytes(32)
            keys[key_id] = key
            stored = keystream_xor(plaintext, key)
        else:
            key_id = ""
            stored = plaintext
        chunks = []
        for offset in range(0, size, CHUNK_BYTES):
            chunk_bytes = stored[offset:offset + CHUNK_BYTES]
            digest = sha256_digest(chunk_bytes)
            chunks.append(ChunkRef(digest=digest, size=len(chunk_bytes),
                                   offset=offset))
            blobs[digest] = chunk_bytes
        layers.append(LayerDescriptor(
            index=index, digest=sha256_digest(stored), size=size,
            encrypted=encrypted, key_id=key_id, chunks=tuple(chunks)))
    return ImageBundle(manifest=ImageManifest(name=name, tag=tag,
                                              layers=tuple(layers)),
                       blobs=blobs, keys=keys)


def sign_image(bundle: ImageBundle, keypair) -> ImageSignature:
    """Attach the publisher's signature to ``bundle`` (cosign-style)."""
    signature = ImageSignature(
        manifest_digest=bundle.manifest.digest,
        signature=keypair.sign(bundle.manifest.canonical_bytes()),
        key_fingerprint=keypair.public.fingerprint())
    bundle.signature = signature
    return signature


def verify_image_signature(manifest: ImageManifest,
                           signature: ImageSignature | None,
                           public_key, ctx) -> None:
    """Check the manifest signature, charging the verify cost.

    Raises :class:`ImageVerificationError` on a missing signature, a
    digest mismatch, or a signature that does not validate against
    ``public_key`` — all before any layer byte is trusted.
    """
    from repro.attest.crypto import DIGEST_COST_PER_BYTE_NS, VERIFY_COST_NS

    canonical = manifest.canonical_bytes()
    ctx.crypto(DIGEST_COST_PER_BYTE_NS * len(canonical) + VERIFY_COST_NS)
    if signature is None:
        raise ImageVerificationError(
            f"{manifest.name}:{manifest.tag}: unsigned image rejected "
            "by secure pull policy")
    if signature.manifest_digest != manifest.digest:
        raise ImageVerificationError(
            f"{manifest.name}:{manifest.tag}: signature covers "
            f"{signature.manifest_digest}, manifest is {manifest.digest}")
    if not public_key.verify(canonical, signature.signature):
        raise ImageVerificationError(
            f"{manifest.name}:{manifest.tag}: manifest signature does "
            f"not validate against key {public_key.fingerprint()}")
