"""Confidential container supply chain.

The deployment path the paper's FaaS evaluation stops short of
(ROADMAP item 2, modeled on the coco-serverless stack): OCI-style
images with content-addressed, optionally encrypted layers; a
deterministic registry one WAN hop away; cosign-style manifest
signatures verified in-guest; eager vs nydus-style lazy (chunk-on-
demand) pull strategies charging real cost-ledger categories; and a
Key Broker Service that releases layer-decryption keys only after a
successful :mod:`repro.attest` launch verification — riding the PR 8
session cache so resumed launches skip the origin round-trip.

Entry points: build and sign an image (:func:`build_image`,
:func:`sign_image`), push it to a :class:`Registry`, escrow its keys
with a :class:`KeyBrokerService`, then put the whole chain on the
boot critical path with a :class:`LaunchProvisioner` (full fidelity,
pool admission) or an :class:`ImagePolicy` (fixed-cost, cluster
sweeps).
"""

from repro.supply.image import (
    CHUNK_BYTES,
    ChunkRef,
    ImageBundle,
    ImageManifest,
    ImageSignature,
    LayerDescriptor,
    build_image,
    keystream_xor,
    sha256_digest,
    sign_image,
    verify_image_signature,
)
from repro.supply.kbs import KEY_WRAP_COST_NS, KeyBrokerService, KeyRelease
from repro.supply.launch import (
    ImagePolicy,
    LaunchProvisioner,
    ProvisionReport,
)
from repro.supply.registry import (
    EagerPull,
    LazyImage,
    LazyPull,
    PullReport,
    Registry,
)

__all__ = [
    "CHUNK_BYTES",
    "ChunkRef",
    "EagerPull",
    "ImageBundle",
    "ImageManifest",
    "ImagePolicy",
    "ImageSignature",
    "KEY_WRAP_COST_NS",
    "KeyBrokerService",
    "KeyRelease",
    "LaunchProvisioner",
    "LayerDescriptor",
    "LazyImage",
    "LazyPull",
    "ProvisionReport",
    "PullReport",
    "Registry",
    "build_image",
    "keystream_xor",
    "sha256_digest",
    "sign_image",
    "verify_image_signature",
]
