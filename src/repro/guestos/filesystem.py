"""In-memory hierarchical filesystem.

Purely functional state — path resolution, directories, file bytes —
with no timing of its own.  Cost accounting happens one layer up, in
:class:`repro.guestos.kernel.GuestKernel`, which prices the syscalls
and the block-device traffic they imply.

The FaaS ``filesystem`` workload (create nested folders, write/read a
1 MB file, clean up) and UnixBench's file-copy tests run on top of
this module.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.errors import FileSystemError


def _split(path: str) -> list[str]:
    """Normalise an absolute path into components."""
    if not path.startswith("/"):
        raise FileSystemError(f"path must be absolute: {path!r}")
    return [part for part in path.split("/") if part]


@dataclass(repr=False)
class FileNode:
    """A regular file: a mutable byte buffer."""

    name: str
    data: bytearray = field(default_factory=bytearray)

    @property
    def size(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        # guest file contents are confidential: a repr reaching a log
        # line or trace must carry a digest, never the raw bytes
        digest = hashlib.sha256(bytes(self.data)).hexdigest()[:16]
        return (f"FileNode(name={self.name!r}, size={self.size}, "
                f"sha256={digest})")


@dataclass
class DirNode:
    """A directory mapping names to child nodes."""

    name: str
    children: dict[str, "DirNode | FileNode"] = field(default_factory=dict)


class InMemoryFileSystem:
    """A POSIX-flavoured in-memory filesystem.

    All paths are absolute.  Operations raise
    :class:`~repro.errors.FileSystemError` on missing parents,
    duplicate creations, type confusion, and out-of-range reads.
    """

    def __init__(self) -> None:
        self.root = DirNode(name="/")

    # -- resolution ----------------------------------------------------

    def _resolve_dir(self, parts: list[str]) -> DirNode:
        node: DirNode | FileNode = self.root
        walked = "/"
        for part in parts:
            if not isinstance(node, DirNode):
                raise FileSystemError(f"not a directory: {walked}")
            try:
                node = node.children[part]
            except KeyError:
                raise FileSystemError(f"no such path: {walked.rstrip('/')}/{part}") from None
            walked = f"{walked.rstrip('/')}/{part}"
        if not isinstance(node, DirNode):
            raise FileSystemError(f"not a directory: {walked}")
        return node

    def _resolve_file(self, path: str) -> FileNode:
        parts = _split(path)
        if not parts:
            raise FileSystemError("root is not a file")
        parent = self._resolve_dir(parts[:-1])
        try:
            node = parent.children[parts[-1]]
        except KeyError:
            raise FileSystemError(f"no such file: {path}") from None
        if not isinstance(node, FileNode):
            raise FileSystemError(f"is a directory: {path}")
        return node

    # -- queries -------------------------------------------------------

    def exists(self, path: str) -> bool:
        """True if the path resolves to a file or directory."""
        parts = _split(path)
        node: DirNode | FileNode = self.root
        for part in parts:
            if not isinstance(node, DirNode) or part not in node.children:
                return False
            node = node.children[part]
        return True

    def is_dir(self, path: str) -> bool:
        """True if the path resolves to a directory."""
        try:
            self._resolve_dir(_split(path))
            return True
        except FileSystemError:
            return False

    def listdir(self, path: str) -> list[str]:
        """Sorted child names of a directory."""
        return sorted(self._resolve_dir(_split(path)).children)

    def file_size(self, path: str) -> int:
        """Size in bytes of a regular file."""
        return self._resolve_file(path).size

    def total_files(self) -> int:
        """Count of regular files in the whole tree."""
        def count(node: DirNode) -> int:
            total = 0
            for child in node.children.values():
                if isinstance(child, FileNode):
                    total += 1
                else:
                    total += count(child)
            return total
        return count(self.root)

    # -- mutations -----------------------------------------------------

    def mkdir(self, path: str) -> None:
        """Create a directory; the parent must exist."""
        parts = _split(path)
        if not parts:
            raise FileSystemError("cannot create root")
        parent = self._resolve_dir(parts[:-1])
        name = parts[-1]
        if name in parent.children:
            raise FileSystemError(f"path exists: {path}")
        parent.children[name] = DirNode(name=name)

    def makedirs(self, path: str) -> None:
        """Create a directory and any missing ancestors (idempotent)."""
        parts = _split(path)
        node = self.root
        for part in parts:
            child = node.children.get(part)
            if child is None:
                child = DirNode(name=part)
                node.children[part] = child
            elif not isinstance(child, DirNode):
                raise FileSystemError(f"not a directory: {part} in {path}")
            node = child

    def create(self, path: str) -> None:
        """Create an empty regular file; the parent must exist."""
        parts = _split(path)
        if not parts:
            raise FileSystemError("cannot create root as a file")
        parent = self._resolve_dir(parts[:-1])
        name = parts[-1]
        if name in parent.children:
            raise FileSystemError(f"path exists: {path}")
        parent.children[name] = FileNode(name=name)

    def write(self, path: str, data: bytes, offset: int | None = None) -> int:
        """Write ``data`` at ``offset`` (append when ``None``).

        Returns the number of bytes written.  The file must exist.
        """
        node = self._resolve_file(path)
        if offset is None:
            node.data.extend(data)
        else:
            if offset < 0 or offset > len(node.data):
                raise FileSystemError(
                    f"offset {offset} out of range for {path} (size {len(node.data)})"
                )
            end = offset + len(data)
            if end > len(node.data):
                node.data.extend(b"\0" * (end - len(node.data)))
            node.data[offset:end] = data
        return len(data)

    def read(self, path: str, offset: int = 0, length: int | None = None) -> bytes:
        """Read ``length`` bytes from ``offset`` (to EOF when ``None``)."""
        node = self._resolve_file(path)
        if offset < 0 or offset > len(node.data):
            raise FileSystemError(
                f"offset {offset} out of range for {path} (size {len(node.data)})"
            )
        if length is None:
            return bytes(node.data[offset:])
        if length < 0:
            raise FileSystemError(f"negative read length: {length}")
        return bytes(node.data[offset:offset + length])

    def truncate(self, path: str, size: int = 0) -> None:
        """Resize a file (zero-filled growth)."""
        node = self._resolve_file(path)
        if size < 0:
            raise FileSystemError(f"negative truncate size: {size}")
        if size <= len(node.data):
            del node.data[size:]
        else:
            node.data.extend(b"\0" * (size - len(node.data)))

    def unlink(self, path: str) -> int:
        """Delete a regular file; returns its former size."""
        parts = _split(path)
        if not parts:
            raise FileSystemError("cannot unlink root")
        parent = self._resolve_dir(parts[:-1])
        name = parts[-1]
        node = parent.children.get(name)
        if node is None:
            raise FileSystemError(f"no such file: {path}")
        if isinstance(node, DirNode):
            raise FileSystemError(f"is a directory: {path}")
        del parent.children[name]
        return node.size

    def rmdir(self, path: str) -> None:
        """Delete an *empty* directory."""
        parts = _split(path)
        if not parts:
            raise FileSystemError("cannot remove root")
        parent = self._resolve_dir(parts[:-1])
        name = parts[-1]
        node = parent.children.get(name)
        if node is None:
            raise FileSystemError(f"no such directory: {path}")
        if not isinstance(node, DirNode):
            raise FileSystemError(f"not a directory: {path}")
        if node.children:
            raise FileSystemError(f"directory not empty: {path}")
        del parent.children[name]
