"""Syscall catalogue and base costs.

Each syscall has a fixed base kernel-entry cost (in nanoseconds on the
reference hardware); the TEE profile multiplies it and adds its own
world-switch cost on top.  Base numbers are in the ballpark of
measured Linux syscall latencies on modern x86 servers.
"""

from __future__ import annotations

import enum

from repro.errors import SyscallError


class SyscallKind(enum.Enum):
    """The syscalls the workloads exercise."""

    GETPID = "getpid"
    OPEN = "open"
    CLOSE = "close"
    READ = "read"
    WRITE = "write"
    CREATE = "create"
    UNLINK = "unlink"
    MKDIR = "mkdir"
    RMDIR = "rmdir"
    STAT = "stat"
    FORK = "fork"
    EXEC = "exec"
    EXIT = "exit"
    WAIT = "wait"
    PIPE_READ = "pipe_read"
    PIPE_WRITE = "pipe_write"
    SLEEP = "sleep"
    WAKE = "wake"
    SCHED_YIELD = "sched_yield"
    CLOCK_GETTIME = "clock_gettime"
    BRK = "brk"


# Base kernel-entry + service cost in nanoseconds (native, no TEE).
BASE_COST_NS: dict[SyscallKind, float] = {
    SyscallKind.GETPID: 60.0,
    SyscallKind.OPEN: 900.0,
    SyscallKind.CLOSE: 350.0,
    SyscallKind.READ: 300.0,
    SyscallKind.WRITE: 320.0,
    SyscallKind.CREATE: 1400.0,
    SyscallKind.UNLINK: 1200.0,
    SyscallKind.MKDIR: 1300.0,
    SyscallKind.RMDIR: 1100.0,
    SyscallKind.STAT: 400.0,
    SyscallKind.FORK: 55_000.0,
    SyscallKind.EXEC: 180_000.0,
    SyscallKind.EXIT: 9_000.0,
    SyscallKind.WAIT: 2_500.0,
    SyscallKind.PIPE_READ: 350.0,
    SyscallKind.PIPE_WRITE: 380.0,
    SyscallKind.SLEEP: 900.0,
    SyscallKind.WAKE: 900.0,
    SyscallKind.SCHED_YIELD: 250.0,
    SyscallKind.CLOCK_GETTIME: 25.0,
    SyscallKind.BRK: 600.0,
}


def base_cost_ns(kind: SyscallKind) -> float:
    """The native base cost of a syscall.

    Raises
    ------
    SyscallError
        If the syscall has no registered cost (a modelling bug).
    """
    try:
        return BASE_COST_NS[kind]
    except KeyError:
        raise SyscallError(f"no base cost registered for {kind}") from None
