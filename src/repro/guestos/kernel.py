"""The guest kernel: syscall dispatch with cost accounting.

``GuestKernel`` is the facade workloads talk to.  Every syscall:

1. charges the native base cost times the platform's syscall
   multiplier (kernel entry/exit),
2. charges the platform's world-switch cost (TDCALL/SEAMCALL on TDX,
   VMEXIT/VMRUN on SEV-SNP, RMM calls on CCA) when one applies,
3. performs the functional operation (filesystem mutation, process
   table update, pipe transfer), and
4. charges data-dependent hardware costs (disk traffic, memory copies,
   bounce buffers) through the :class:`~repro.guestos.context.ExecContext`.

Context switches deserve a note: blocking pipe reads/writes sleep and
wake processes, and on confidential VMs each sleep/wake is a world
switch.  That mechanism — frequent transitions rather than raw compute
slowdown — is why UnixBench shows the largest overheads in the paper.
"""

from __future__ import annotations

from repro.errors import GuestOsError
from repro.guestos.context import ExecContext
from repro.guestos.filesystem import InMemoryFileSystem
from repro.guestos.pipes import Pipe
from repro.guestos.process import Process, ProcessTable
from repro.guestos.scheduler import CONTEXT_SWITCH_NS, RoundRobinScheduler
from repro.guestos.syscalls import SyscallKind, base_cost_ns
from repro.sim.opstream import Op


class KernelOps:
    """Records the charge pattern of one kernel-op sequence.

    Each method appends the exact ops the corresponding ``sys_*``
    method would charge (syscall entry, disk traffic, memory copies),
    without performing the functional operation — the caller does
    functional work separately, then hands the sequence to
    :meth:`KernelBatch.repeat` with an iteration count.  Methods
    return ``self`` for chaining.
    """

    __slots__ = ("ops", "syscalls", "switches", "_halt_ns")

    def __init__(self, halt_transition_ns: float) -> None:
        self.ops: list[Op] = []
        self.syscalls = 0
        self.switches = 0
        self._halt_ns = halt_transition_ns

    def syscall(self, kind: SyscallKind) -> "KernelOps":
        """Kernel entry for ``kind`` (what :meth:`GuestKernel._enter` charges)."""
        self.syscalls += 1
        self.ops.append(Op("syscall", (base_cost_ns(kind),)))
        return self

    def read(self, nbytes: int, cached: bool = False) -> "KernelOps":
        """Charges of ``sys_read`` returning ``nbytes``."""
        self.syscall(SyscallKind.READ)
        if not cached:
            self.ops.append(Op("disk_read", (nbytes,)))
        self.ops.append(Op("mem_copy", (nbytes,)))
        return self

    def write(self, nbytes: int) -> "KernelOps":
        """Charges of ``sys_write`` accepting ``nbytes``."""
        self.syscall(SyscallKind.WRITE)
        self.ops.append(Op("mem_copy", (nbytes,)))
        self.ops.append(Op("disk_write", (nbytes,)))
        return self

    def pipe_write(self, nbytes: int) -> "KernelOps":
        """Charges of ``sys_pipe_write`` accepting ``nbytes``."""
        self.syscall(SyscallKind.PIPE_WRITE)
        self.ops.append(Op("mem_copy", (nbytes,)))
        return self

    def pipe_read(self, nbytes: int) -> "KernelOps":
        """Charges of ``sys_pipe_read`` returning ``nbytes``."""
        self.syscall(SyscallKind.PIPE_READ)
        self.ops.append(Op("mem_copy", (nbytes,)))
        return self

    def fork(self) -> "KernelOps":
        """Charges of ``sys_fork`` (COW page-table setup)."""
        self.syscall(SyscallKind.FORK)
        self.ops.append(Op("mem_copy", (256 * 1024,)))
        return self

    def exec(self) -> "KernelOps":
        """Charges of ``sys_exec`` (image load + fresh address space)."""
        self.syscall(SyscallKind.EXEC)
        self.ops.append(Op("disk_read", (512 * 1024,)))
        self.ops.append(Op("mem_alloc", (1024 * 1024,)))
        return self

    def context_switch(self) -> "KernelOps":
        """Charges of :meth:`GuestKernel.context_switch`."""
        self.switches += 1
        self.ops.append(Op("event", ("context_switches", 1)))
        self.ops.append(Op("syscall", (CONTEXT_SWITCH_NS,)))
        if self._halt_ns > 0:
            self.ops.append(Op("vm_transition", (self._halt_ns,)))
        return self

    def cpu_execute(self, instructions: int, memory_references: int = 0,
                    working_set_bytes: int = 0) -> "KernelOps":
        self.ops.append(Op("cpu", (instructions, memory_references,
                                   working_set_bytes)))
        return self

    def mem_alloc(self, nbytes: int) -> "KernelOps":
        self.ops.append(Op("mem_alloc", (nbytes,)))
        return self

    def mem_copy(self, nbytes: int) -> "KernelOps":
        self.ops.append(Op("mem_copy", (nbytes,)))
        return self

    def disk_read(self, nbytes: int) -> "KernelOps":
        self.ops.append(Op("disk_read", (nbytes,)))
        return self

    def disk_write(self, nbytes: int) -> "KernelOps":
        self.ops.append(Op("disk_write", (nbytes,)))
        return self


class KernelBatch:
    """Stages kernel-op sequences for one batched execution.

    Tracks the kernel-side bookkeeping (``syscall_count``, scheduler
    switch count) that per-op dispatch would have updated, and applies
    it exactly once at :meth:`commit` together with the charge fold.
    """

    __slots__ = ("kernel", "batch", "_syscalls", "_switches")

    def __init__(self, kernel: "GuestKernel") -> None:
        self.kernel = kernel
        self.batch = kernel.ctx.batch()
        self._syscalls = 0
        self._switches = 0

    def seq(self) -> KernelOps:
        """A fresh sequence recorder bound to this kernel's platform."""
        return KernelOps(self.kernel.ctx.profile.halt_transition_ns)

    def repeat(self, seq: KernelOps, count: int = 1) -> None:
        """Stage ``count`` repetitions of a recorded sequence."""
        self.batch.add_seq(seq.ops, count)
        self._syscalls += seq.syscalls * count
        self._switches += seq.switches * count

    def commit(self) -> float:
        """Run the staged ops; returns total charged nanoseconds."""
        self.kernel.syscall_count += self._syscalls
        self.kernel.scheduler.switch_count += self._switches
        self._syscalls = 0
        self._switches = 0
        total = self.kernel.ctx.run_batch(self.batch)
        self.batch = self.kernel.ctx.batch()
        return total


class GuestKernel:
    """A guest OS instance bound to one execution context."""

    def __init__(self, ctx: ExecContext) -> None:
        self.ctx = ctx
        self.fs = InMemoryFileSystem()
        self.processes = ProcessTable()
        self.scheduler = RoundRobinScheduler(self.processes)
        self.syscall_count = 0

    # -- plumbing ------------------------------------------------------

    def _enter(self, kind: SyscallKind) -> None:
        """Charge the cost of entering the kernel for ``kind``."""
        self.syscall_count += 1
        self.ctx.syscall_entry(base_cost_ns(kind))

    def batch(self) -> KernelBatch:
        """A staged-op batch for hot loops (see :class:`KernelBatch`)."""
        return KernelBatch(self)

    # -- trivial syscalls ------------------------------------------------

    def sys_getpid(self) -> int:
        """Current pid (per the scheduler)."""
        self._enter(SyscallKind.GETPID)
        return self.scheduler.current_pid

    def sys_clock_gettime(self) -> float:
        """Virtual time in nanoseconds (vDSO-priced)."""
        self._enter(SyscallKind.CLOCK_GETTIME)
        return self.ctx.clock.now()

    def sys_brk(self, nbytes: int) -> None:
        """Grow the heap by ``nbytes``."""
        self._enter(SyscallKind.BRK)
        self.ctx.mem_alloc(nbytes)

    # -- filesystem syscalls ---------------------------------------------

    def sys_create(self, path: str) -> None:
        """Create an empty file."""
        self._enter(SyscallKind.CREATE)
        self.fs.create(path)
        self.ctx.disk_write(4096)  # inode + dirent journal

    def sys_mkdir(self, path: str) -> None:
        """Create a directory."""
        self._enter(SyscallKind.MKDIR)
        self.fs.mkdir(path)
        self.ctx.disk_write(4096)

    def sys_write(self, path: str, data: bytes, offset: int | None = None) -> int:
        """Write file data (append when ``offset`` is None)."""
        self._enter(SyscallKind.WRITE)
        written = self.fs.write(path, data, offset)
        self.ctx.mem_copy(written)     # user -> page cache
        self.ctx.disk_write(written)   # writeback
        return written

    def sys_read(self, path: str, offset: int = 0,
                 length: int | None = None, cached: bool = False) -> bytes:
        """Read file data.

        ``cached=True`` models a page-cache hit (recently written or
        read data): the copy to user space still happens, but no block
        I/O is issued — so no virtio exit and no bounce buffering.
        """
        self._enter(SyscallKind.READ)
        data = self.fs.read(path, offset, length)
        if not cached:
            self.ctx.disk_read(len(data))
        self.ctx.mem_copy(len(data))   # page cache -> user
        return data

    def sys_stat(self, path: str) -> dict[str, int | bool]:
        """File metadata: existence, type, size."""
        self._enter(SyscallKind.STAT)
        if not self.fs.exists(path):
            raise GuestOsError(f"stat: no such path {path}")
        is_dir = self.fs.is_dir(path)
        size = 0 if is_dir else self.fs.file_size(path)
        return {"is_dir": is_dir, "size": size}

    def sys_unlink(self, path: str) -> int:
        """Delete a file; returns its former size."""
        self._enter(SyscallKind.UNLINK)
        size = self.fs.unlink(path)
        self.ctx.disk_write(4096)
        return size

    def sys_rmdir(self, path: str) -> None:
        """Delete an empty directory."""
        self._enter(SyscallKind.RMDIR)
        self.fs.rmdir(path)
        self.ctx.disk_write(4096)

    # -- process syscalls --------------------------------------------------

    def sys_fork(self, name: str | None = None) -> Process:
        """Fork the current process; returns the child."""
        self._enter(SyscallKind.FORK)
        child = self.processes.fork(self.scheduler.current_pid, name)
        self.ctx.mem_copy(256 * 1024)  # COW page-table setup
        return child

    def sys_exec(self, pid: int, name: str) -> Process:
        """Replace a process image."""
        self._enter(SyscallKind.EXEC)
        proc = self.processes.exec(pid, name)
        self.ctx.disk_read(512 * 1024)   # load the new image
        self.ctx.mem_alloc(1024 * 1024)  # fresh address space
        return proc

    def sys_exit(self, pid: int, code: int = 0) -> None:
        """Terminate a process."""
        self._enter(SyscallKind.EXIT)
        self.processes.exit(pid, code)

    def sys_wait(self, parent_pid: int | None = None) -> tuple[int, int]:
        """Reap one zombie child of the caller."""
        self._enter(SyscallKind.WAIT)
        pid = parent_pid if parent_pid is not None else self.scheduler.current_pid
        return self.processes.wait(pid)

    def sys_yield(self) -> int:
        """Round-robin to the next runnable process."""
        self._enter(SyscallKind.SCHED_YIELD)
        return self.scheduler.next()

    # -- pipes and context switches ----------------------------------------

    def make_pipe(self, capacity: int = Pipe.DEFAULT_CAPACITY) -> Pipe:
        """Create a pipe (no syscall cost: bundled with first use)."""
        return Pipe(capacity)

    def sys_pipe_write(self, pipe: Pipe, data: bytes) -> int:
        """Write to a pipe; returns bytes accepted."""
        self._enter(SyscallKind.PIPE_WRITE)
        accepted = pipe.write(data)
        self.ctx.mem_copy(accepted)
        return accepted

    def sys_pipe_read(self, pipe: Pipe, length: int) -> bytes:
        """Read from a pipe."""
        self._enter(SyscallKind.PIPE_READ)
        data = pipe.read(length)
        self.ctx.mem_copy(len(data))
        return data

    def context_switch(self) -> None:
        """One blocking context switch (sleep current, wake peer).

        On confidential VMs the halt/wake pair forces a world switch
        in addition to the native switch cost.
        """
        self.scheduler.switch_count += 1
        self.ctx.machine.counters.context_switches += 1
        self.ctx.syscall_entry(CONTEXT_SWITCH_NS)
        if self.ctx.profile.halt_transition_ns > 0:
            self.ctx.vm_transition(self.ctx.profile.halt_transition_ns)

    def pipe_ping_pong(self, rounds: int, payload: int = 512) -> int:
        """UnixBench-style token bounce between two processes.

        Each round is a write, a context switch, a read, and a context
        switch back.  Returns total bytes moved.
        """
        if rounds < 0:
            raise GuestOsError(f"negative rounds: {rounds}")
        pipe = self.make_pipe()
        token = b"x" * payload
        moved = 0
        # each round's read depends on the write before it, so this
        # loop is inherently per-op; the UnixBench suite's batch engine
        # replays its charge pattern through KernelBatch instead
        for _ in range(rounds):
            self.sys_pipe_write(pipe, token)  # confbench: allow[hot-path-per-op]
            self.context_switch()
            moved += len(self.sys_pipe_read(pipe, payload))  # confbench: allow[hot-path-per-op]
            self.context_switch()
        return moved
