"""The guest kernel: syscall dispatch with cost accounting.

``GuestKernel`` is the facade workloads talk to.  Every syscall:

1. charges the native base cost times the platform's syscall
   multiplier (kernel entry/exit),
2. charges the platform's world-switch cost (TDCALL/SEAMCALL on TDX,
   VMEXIT/VMRUN on SEV-SNP, RMM calls on CCA) when one applies,
3. performs the functional operation (filesystem mutation, process
   table update, pipe transfer), and
4. charges data-dependent hardware costs (disk traffic, memory copies,
   bounce buffers) through the :class:`~repro.guestos.context.ExecContext`.

Context switches deserve a note: blocking pipe reads/writes sleep and
wake processes, and on confidential VMs each sleep/wake is a world
switch.  That mechanism — frequent transitions rather than raw compute
slowdown — is why UnixBench shows the largest overheads in the paper.
"""

from __future__ import annotations

from repro.errors import GuestOsError
from repro.guestos.context import ExecContext
from repro.guestos.filesystem import InMemoryFileSystem
from repro.guestos.pipes import Pipe
from repro.guestos.process import Process, ProcessTable
from repro.guestos.scheduler import CONTEXT_SWITCH_NS, RoundRobinScheduler
from repro.guestos.syscalls import SyscallKind, base_cost_ns


class GuestKernel:
    """A guest OS instance bound to one execution context."""

    def __init__(self, ctx: ExecContext) -> None:
        self.ctx = ctx
        self.fs = InMemoryFileSystem()
        self.processes = ProcessTable()
        self.scheduler = RoundRobinScheduler(self.processes)
        self.syscall_count = 0

    # -- plumbing ------------------------------------------------------

    def _enter(self, kind: SyscallKind) -> None:
        """Charge the cost of entering the kernel for ``kind``."""
        self.syscall_count += 1
        self.ctx.syscall_entry(base_cost_ns(kind))

    # -- trivial syscalls ------------------------------------------------

    def sys_getpid(self) -> int:
        """Current pid (per the scheduler)."""
        self._enter(SyscallKind.GETPID)
        return self.scheduler.current_pid

    def sys_clock_gettime(self) -> float:
        """Virtual time in nanoseconds (vDSO-priced)."""
        self._enter(SyscallKind.CLOCK_GETTIME)
        return self.ctx.clock.now()

    def sys_brk(self, nbytes: int) -> None:
        """Grow the heap by ``nbytes``."""
        self._enter(SyscallKind.BRK)
        self.ctx.mem_alloc(nbytes)

    # -- filesystem syscalls ---------------------------------------------

    def sys_create(self, path: str) -> None:
        """Create an empty file."""
        self._enter(SyscallKind.CREATE)
        self.fs.create(path)
        self.ctx.disk_write(4096)  # inode + dirent journal

    def sys_mkdir(self, path: str) -> None:
        """Create a directory."""
        self._enter(SyscallKind.MKDIR)
        self.fs.mkdir(path)
        self.ctx.disk_write(4096)

    def sys_write(self, path: str, data: bytes, offset: int | None = None) -> int:
        """Write file data (append when ``offset`` is None)."""
        self._enter(SyscallKind.WRITE)
        written = self.fs.write(path, data, offset)
        self.ctx.mem_copy(written)     # user -> page cache
        self.ctx.disk_write(written)   # writeback
        return written

    def sys_read(self, path: str, offset: int = 0,
                 length: int | None = None, cached: bool = False) -> bytes:
        """Read file data.

        ``cached=True`` models a page-cache hit (recently written or
        read data): the copy to user space still happens, but no block
        I/O is issued — so no virtio exit and no bounce buffering.
        """
        self._enter(SyscallKind.READ)
        data = self.fs.read(path, offset, length)
        if not cached:
            self.ctx.disk_read(len(data))
        self.ctx.mem_copy(len(data))   # page cache -> user
        return data

    def sys_stat(self, path: str) -> dict[str, int | bool]:
        """File metadata: existence, type, size."""
        self._enter(SyscallKind.STAT)
        if not self.fs.exists(path):
            raise GuestOsError(f"stat: no such path {path}")
        is_dir = self.fs.is_dir(path)
        size = 0 if is_dir else self.fs.file_size(path)
        return {"is_dir": is_dir, "size": size}

    def sys_unlink(self, path: str) -> int:
        """Delete a file; returns its former size."""
        self._enter(SyscallKind.UNLINK)
        size = self.fs.unlink(path)
        self.ctx.disk_write(4096)
        return size

    def sys_rmdir(self, path: str) -> None:
        """Delete an empty directory."""
        self._enter(SyscallKind.RMDIR)
        self.fs.rmdir(path)
        self.ctx.disk_write(4096)

    # -- process syscalls --------------------------------------------------

    def sys_fork(self, name: str | None = None) -> Process:
        """Fork the current process; returns the child."""
        self._enter(SyscallKind.FORK)
        child = self.processes.fork(self.scheduler.current_pid, name)
        self.ctx.mem_copy(256 * 1024)  # COW page-table setup
        return child

    def sys_exec(self, pid: int, name: str) -> Process:
        """Replace a process image."""
        self._enter(SyscallKind.EXEC)
        proc = self.processes.exec(pid, name)
        self.ctx.disk_read(512 * 1024)   # load the new image
        self.ctx.mem_alloc(1024 * 1024)  # fresh address space
        return proc

    def sys_exit(self, pid: int, code: int = 0) -> None:
        """Terminate a process."""
        self._enter(SyscallKind.EXIT)
        self.processes.exit(pid, code)

    def sys_wait(self, parent_pid: int | None = None) -> tuple[int, int]:
        """Reap one zombie child of the caller."""
        self._enter(SyscallKind.WAIT)
        pid = parent_pid if parent_pid is not None else self.scheduler.current_pid
        return self.processes.wait(pid)

    def sys_yield(self) -> int:
        """Round-robin to the next runnable process."""
        self._enter(SyscallKind.SCHED_YIELD)
        return self.scheduler.next()

    # -- pipes and context switches ----------------------------------------

    def make_pipe(self, capacity: int = Pipe.DEFAULT_CAPACITY) -> Pipe:
        """Create a pipe (no syscall cost: bundled with first use)."""
        return Pipe(capacity)

    def sys_pipe_write(self, pipe: Pipe, data: bytes) -> int:
        """Write to a pipe; returns bytes accepted."""
        self._enter(SyscallKind.PIPE_WRITE)
        accepted = pipe.write(data)
        self.ctx.mem_copy(accepted)
        return accepted

    def sys_pipe_read(self, pipe: Pipe, length: int) -> bytes:
        """Read from a pipe."""
        self._enter(SyscallKind.PIPE_READ)
        data = pipe.read(length)
        self.ctx.mem_copy(len(data))
        return data

    def context_switch(self) -> None:
        """One blocking context switch (sleep current, wake peer).

        On confidential VMs the halt/wake pair forces a world switch
        in addition to the native switch cost.
        """
        self.scheduler.switch_count += 1
        self.ctx.machine.counters.context_switches += 1
        self.ctx.syscall_entry(CONTEXT_SWITCH_NS)
        if self.ctx.profile.halt_transition_ns > 0:
            self.ctx.vm_transition(self.ctx.profile.halt_transition_ns)

    def pipe_ping_pong(self, rounds: int, payload: int = 512) -> int:
        """UnixBench-style token bounce between two processes.

        Each round is a write, a context switch, a read, and a context
        switch back.  Returns total bytes moved.
        """
        if rounds < 0:
            raise GuestOsError(f"negative rounds: {rounds}")
        pipe = self.make_pipe()
        token = b"x" * payload
        moved = 0
        for _ in range(rounds):
            self.sys_pipe_write(pipe, token)
            self.context_switch()
            moved += len(self.sys_pipe_read(pipe, payload))
            self.context_switch()
        return moved
