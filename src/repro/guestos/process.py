"""Process table for the simulated guest kernel.

UnixBench's ``spawn`` (process creation), ``execl`` and ``shell``
tests exercise fork/exec/wait; this module provides the functional
side — pids, parent/child links, states, exit codes — while the
kernel prices the operations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ProcessError


class ProcessState(enum.Enum):
    """Lifecycle states of a simulated process."""

    RUNNING = "running"
    SLEEPING = "sleeping"
    ZOMBIE = "zombie"
    REAPED = "reaped"


@dataclass
class Process:
    """One entry in the process table."""

    pid: int
    name: str
    parent_pid: int | None = None
    state: ProcessState = ProcessState.RUNNING
    exit_code: int | None = None
    children: list[int] = field(default_factory=list)


class ProcessTable:
    """Pid allocation and fork/exec/exit/wait semantics.

    The table starts with pid 1 (``init``-like root process).
    """

    def __init__(self, max_processes: int = 32768) -> None:
        if max_processes < 2:
            raise ProcessError("need room for at least init plus one child")
        self.max_processes = max_processes
        self._next_pid = 2
        root = Process(pid=1, name="init")
        self._table: dict[int, Process] = {1: root}

    def get(self, pid: int) -> Process:
        """Look up a live (or zombie) process by pid."""
        try:
            return self._table[pid]
        except KeyError:
            raise ProcessError(f"no such process: pid {pid}") from None

    def live_count(self) -> int:
        """Number of processes not yet reaped."""
        return sum(
            1 for proc in self._table.values()
            if proc.state is not ProcessState.REAPED
        )

    def fork(self, parent_pid: int, name: str | None = None) -> Process:
        """Create a child of ``parent_pid``; returns the child."""
        parent = self.get(parent_pid)
        if parent.state is not ProcessState.RUNNING:
            raise ProcessError(f"cannot fork from {parent.state.value} pid {parent_pid}")
        if self.live_count() >= self.max_processes:
            raise ProcessError(f"process table full ({self.max_processes})")
        pid = self._next_pid
        self._next_pid += 1
        child = Process(
            pid=pid,
            name=name if name is not None else parent.name,
            parent_pid=parent_pid,
        )
        self._table[pid] = child
        parent.children.append(pid)
        return child

    def exec(self, pid: int, name: str) -> Process:
        """Replace a process image (rename, keep pid)."""
        proc = self.get(pid)
        if proc.state is not ProcessState.RUNNING:
            raise ProcessError(f"cannot exec in {proc.state.value} pid {pid}")
        proc.name = name
        return proc

    def exit(self, pid: int, code: int = 0) -> Process:
        """Terminate a process; it becomes a zombie until waited on."""
        proc = self.get(pid)
        if pid == 1:
            raise ProcessError("init (pid 1) cannot exit")
        if proc.state in (ProcessState.ZOMBIE, ProcessState.REAPED):
            raise ProcessError(f"pid {pid} already exited")
        proc.state = ProcessState.ZOMBIE
        proc.exit_code = code
        return proc

    def wait(self, parent_pid: int) -> tuple[int, int]:
        """Reap one zombie child of ``parent_pid``.

        Returns ``(child_pid, exit_code)``.  Raises when there is no
        zombie child (the simulation has no blocking).
        """
        parent = self.get(parent_pid)
        for child_pid in parent.children:
            child = self._table[child_pid]
            if child.state is ProcessState.ZOMBIE:
                child.state = ProcessState.REAPED
                parent.children.remove(child_pid)
                assert child.exit_code is not None
                return child_pid, child.exit_code
        raise ProcessError(f"pid {parent_pid} has no zombie children to wait on")

    def sleep(self, pid: int) -> None:
        """Put a process to sleep (wakes via :meth:`wake`)."""
        proc = self.get(pid)
        if proc.state is not ProcessState.RUNNING:
            raise ProcessError(f"cannot sleep {proc.state.value} pid {pid}")
        proc.state = ProcessState.SLEEPING

    def wake(self, pid: int) -> None:
        """Wake a sleeping process."""
        proc = self.get(pid)
        if proc.state is not ProcessState.SLEEPING:
            raise ProcessError(f"cannot wake {proc.state.value} pid {pid}")
        proc.state = ProcessState.RUNNING
