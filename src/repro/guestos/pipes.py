"""Bounded pipes for inter-process communication.

UnixBench's pipe throughput and pipe-based context-switching tests
are the workloads the paper singles out as TEE-hostile: each blocking
read/write pair forces a sleep/wake cycle, which on a confidential VM
shows up as TDVMCALL (TDX) or VMEXIT (SEV-SNP) world switches.  The
kernel charges those costs; this module provides the buffer
semantics.
"""

from __future__ import annotations

from repro.errors import GuestOsError


class Pipe:
    """A byte pipe with a bounded kernel buffer."""

    DEFAULT_CAPACITY = 65536

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity <= 0:
            raise GuestOsError(f"pipe capacity must be positive: {capacity}")
        self.capacity = capacity
        self._buffer = bytearray()
        self._read_closed = False
        self._write_closed = False
        self.total_written = 0
        self.total_read = 0

    def __repr__(self) -> str:
        # buffered bytes are guest data; expose counters, not content
        return (f"Pipe(capacity={self.capacity}, fill={self.fill}, "
                f"written={self.total_written}, read={self.total_read})")

    @property
    def fill(self) -> int:
        """Bytes currently buffered."""
        return len(self._buffer)

    @property
    def space(self) -> int:
        """Free space in the buffer."""
        return self.capacity - len(self._buffer)

    def write(self, data: bytes) -> int:
        """Write up to the available space; returns bytes accepted."""
        if self._write_closed:
            raise GuestOsError("write end closed")
        if self._read_closed:
            raise GuestOsError("broken pipe: read end closed")
        accepted = data[: self.space]
        self._buffer.extend(accepted)
        self.total_written += len(accepted)
        return len(accepted)

    def read(self, length: int) -> bytes:
        """Read up to ``length`` buffered bytes (may be empty)."""
        if self._read_closed:
            raise GuestOsError("read end closed")
        if length < 0:
            raise GuestOsError(f"negative read length: {length}")
        chunk = bytes(self._buffer[:length])
        del self._buffer[: len(chunk)]
        self.total_read += len(chunk)
        return chunk

    def close_write(self) -> None:
        """Close the write end (reads drain the remaining buffer)."""
        self._write_closed = True

    def close_read(self) -> None:
        """Close the read end (subsequent writes fail)."""
        self._read_closed = True

    @property
    def eof(self) -> bool:
        """True when the writer closed and the buffer is drained."""
        return self._write_closed and not self._buffer
