"""Execution context: where operations become virtual nanoseconds.

An :class:`ExecContext` binds together a machine, a virtual clock, a
cost ledger, a random stream, and a :class:`CostProfile`.  Workloads
and the guest kernel call its ``cpu_execute`` / ``mem_alloc`` /
``disk_read`` / ... methods; the context prices each operation with
the machine models, applies the platform's multipliers and fixed
costs, and charges the ledger while advancing the clock.

:class:`CostProfile` is the single extension point TEE platforms
implement.  The default :data:`NATIVE_PROFILE` is a passthrough (all
multipliers 1.0, no transitions), used by the normal — non
confidential — VM so that secure/normal ratios have a clean baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.hw.machine import Machine
from repro.hw.perfcounters import PerfCounters
from repro.sim.clock import VirtualClock
from repro.sim.ledger import CostCategory, CostLedger
from repro.sim.opstream import BatchLedger, ChargePattern, Op, OpBatch
from repro.sim.rng import SimRng


@dataclass
class CostProfile:
    """Per-platform cost knobs applied on top of raw hardware costs.

    Parameters
    ----------
    name:
        Platform name (``novm``, ``tdx``, ``sev-snp``, ``cca``).
    cpu_multiplier, mem_alloc_multiplier, mem_access_multiplier,
    io_read_multiplier, io_write_multiplier, syscall_multiplier:
        Scale factors on the respective raw costs.
    mem_encrypted / mem_integrity:
        Whether the platform's inline memory protection applies.
    syscall_transition_ns:
        Fixed world-switch cost added to *every* syscall.  Zero on
        TDX/SEV-SNP (regular syscalls stay inside the guest); nonzero
        on CCA where the simulated stage-2 handling intrudes.
    halt_transition_ns:
        World-switch cost of one blocking context switch (the idle
        HLT exit plus the wake-up: TDVMCALL on TDX, VMEXIT/VMRUN on
        SNP, RMM exits on CCA).  This is the mechanism the paper (and
        Misono et al.) blame for UnixBench's outsized overheads.
    io_transition_ns:
        World-switch cost charged per disk operation (the virtio
        doorbell kick leaves the guest).
    io_bounce_per_byte_ns:
        Per-byte bounce-buffer copy cost on I/O (TDX routes DMA
        through shared memory outside the protected space).
    cache_hit_bonus_probability / cache_hit_bonus:
        With the given probability per run, the secure VM sees a
        *better* cache hit rate by ``cache_hit_bonus`` — reproducing
        the paper's sub-1.0 heatmap cells (§IV-D, TDXdown effect).
    noise_sigma:
        Lognormal sigma of the per-run multiplicative noise.
    startup_ns:
        VM-side bootstrap cost (charged to STARTUP; excluded from
        the paper's ratio measurements).
    simulator_multiplier:
        Uniform extra factor modelling a software simulation layer
        (only the FVP-based CCA platform sets this above 1.0).
    """

    name: str = "native"
    cpu_multiplier: float = 1.0
    mem_alloc_multiplier: float = 1.0
    mem_access_multiplier: float = 1.0
    io_read_multiplier: float = 1.0
    io_write_multiplier: float = 1.0
    syscall_multiplier: float = 1.0
    mem_encrypted: bool = False
    mem_integrity: bool = False
    mem_miss_extra_ns: float = 0.0   # per cache-line fill: decrypt + MAC/RMP check
    syscall_transition_ns: float = 0.0
    halt_transition_ns: float = 0.0
    io_transition_ns: float = 0.0
    io_bounce_per_byte_ns: float = 0.0
    cache_hit_bonus_probability: float = 0.0
    cache_hit_bonus: float = 0.0
    noise_sigma: float = 0.015
    startup_ns: float = 0.0
    simulator_multiplier: float = 1.0


NATIVE_PROFILE = CostProfile()


@dataclass(slots=True)
class ExecContext:
    """Binds machine + clock + ledger + rng + platform profile.

    One context corresponds to one run of one workload inside one VM.
    The per-run noise factor and the (possibly bonus-adjusted) cache
    hit behaviour are drawn once at construction, so a whole run is
    coherently "lucky" or "unlucky", matching how real trials behave.
    """

    machine: Machine
    profile: CostProfile = field(default_factory=CostProfile)
    clock: VirtualClock = field(default_factory=VirtualClock)
    ledger: CostLedger = field(default_factory=CostLedger)
    rng: SimRng = field(default_factory=lambda: SimRng(0))
    #: optional observer called after every charge with (context,
    #: category, charged_ns) — the continuous-monitoring hook
    on_charge: "object | None" = None
    #: optional span trace; workload bodies may open sub-spans on it
    #: via ``ctx.trace.span(...)`` (see :mod:`repro.sim.trace`)
    trace: "object | None" = None
    #: optional fault-injection context for this run (see
    #: :class:`repro.sim.faults.FaultContext`); consumers such as the
    #: PCS and the verifiers probe it for injected failures
    faults: "object | None" = None
    _run_noise: float = field(init=False, repr=False)
    _op_noise_sigma: float = field(init=False, repr=False)
    _cache_bonus: float = field(init=False, repr=False)
    #: op → (charge pattern, counter events) pricing memo; machine
    #: models are pure and the run's cache bonus is fixed, so a given
    #: op always prices the same within one context
    _price_cache: dict = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._run_noise = self.rng.lognormal_factor(self.profile.noise_sigma)
        self._op_noise_sigma = self.profile.noise_sigma * 0.6
        self._cache_bonus = (
            self.profile.cache_hit_bonus
            if self.rng.bernoulli(self.profile.cache_hit_bonus_probability)
            else 0.0
        )
        self._price_cache = {}

    # -- internal ----------------------------------------------------

    def charge(self, category: CostCategory, nanos: float) -> float:
        """Scale ``nanos`` by simulator + noise factors, record, advance.

        Two noise terms model real measurement behaviour: a per-run
        factor (a whole trial lands "fast" or "slow" coherently) and a
        smaller per-operation factor (variation *within* a run, which
        gives Fig. 3's per-image percentile spread).

        Returns the charged (post-noise) nanoseconds.
        """
        scaled = nanos * self.profile.simulator_multiplier * self._run_noise
        if self._op_noise_sigma > 0:
            scaled *= self.rng.lognormal_factor(self._op_noise_sigma)
        self.ledger.charge(category, scaled)
        self.clock.advance(scaled)
        if self.on_charge is not None:
            self.on_charge(self, category, scaled)
        return scaled

    # -- operation pricing --------------------------------------------

    def cpu_execute(
        self,
        instructions: int,
        memory_references: int = 0,
        working_set_bytes: int = 0,
    ) -> float:
        """Execute a compute block; returns charged nanoseconds.

        Compute time takes the CPU multiplier; the memory-reference
        portion takes the memory-access multiplier plus the per-miss
        surcharge (inline decryption + integrity check on line fills),
        so memory-traffic-heavy code — e.g. managed language runtimes —
        is taxed harder by TEEs than register-bound arithmetic.
        """
        cpu = self.machine.cpu
        hit_rate = None
        if self._cache_bonus:
            base = cpu.cache.hit_rate(working_set_bytes)
            hit_rate = min(1.0, base + self._cache_bonus)
        compute_ns, memory_ns, misses = cpu.execute_split(
            instructions,
            self.machine.counters,
            memory_references=memory_references,
            working_set_bytes=working_set_bytes,
            hit_rate_override=hit_rate,
        )
        charged = self.charge(
            CostCategory.CPU, compute_ns * self.profile.cpu_multiplier
        )
        mem_cost = memory_ns * self.profile.mem_access_multiplier
        if self.profile.mem_encrypted:
            mem_cost += misses * self.profile.mem_miss_extra_ns
        if mem_cost > 0:
            charged += self.charge(CostCategory.MEM_ACCESS, mem_cost)
        return charged

    def mem_alloc(self, nbytes: int) -> float:
        """Allocate memory; returns charged nanoseconds."""
        raw = self.machine.memory.allocate(
            nbytes,
            self.machine.counters,
            encrypted=self.profile.mem_encrypted,
            integrity=self.profile.mem_integrity,
        )
        return self.charge(
            CostCategory.MEM_ALLOC, raw * self.profile.mem_alloc_multiplier
        )

    def mem_copy(self, nbytes: int) -> float:
        """Bulk-copy memory; returns charged nanoseconds."""
        raw = self.machine.memory.copy(
            nbytes,
            self.machine.counters,
            encrypted=self.profile.mem_encrypted,
            integrity=self.profile.mem_integrity,
        )
        return self.charge(
            CostCategory.MEM_ACCESS, raw * self.profile.mem_access_multiplier
        )

    def disk_read(self, nbytes: int) -> float:
        """Read from the block device, including TEE DMA costs."""
        raw = self.machine.disk.read(nbytes)
        charged = self.charge(
            CostCategory.IO_READ, raw * self.profile.io_read_multiplier
        )
        charged += self._bounce(nbytes)
        charged += self._io_kick()
        return charged

    def disk_write(self, nbytes: int) -> float:
        """Write to the block device, including TEE DMA costs."""
        raw = self.machine.disk.write(nbytes)
        charged = self.charge(
            CostCategory.IO_WRITE, raw * self.profile.io_write_multiplier
        )
        charged += self._bounce(nbytes)
        charged += self._io_kick()
        return charged

    def _io_kick(self) -> float:
        if self.profile.io_transition_ns <= 0:
            return 0.0
        return self.vm_transition(self.profile.io_transition_ns)

    def _bounce(self, nbytes: int) -> float:
        if self.profile.io_bounce_per_byte_ns <= 0 or nbytes <= 0:
            return 0.0
        self.machine.counters.bounce_buffer_bytes += nbytes
        return self.charge(
            CostCategory.BOUNCE_BUFFER, nbytes * self.profile.io_bounce_per_byte_ns
        )

    def syscall_entry(self, base_cost_ns: float) -> float:
        """Price a syscall: kernel entry cost plus TEE world switches."""
        charged = self.charge(
            CostCategory.SYSCALL, base_cost_ns * self.profile.syscall_multiplier
        )
        if self.profile.syscall_transition_ns > 0:
            self.machine.counters.vm_transitions += 1
            charged += self.charge(
                CostCategory.VM_TRANSITION, self.profile.syscall_transition_ns
            )
        return charged

    def vm_transition(self, cost_ns: float) -> float:
        """An explicit world switch outside the syscall path."""
        self.machine.counters.vm_transitions += 1
        return self.charge(CostCategory.VM_TRANSITION, cost_ns)

    def network_round_trip(self, payload_bytes: int) -> float:
        """One exchange on the host's NIC path."""
        raw = self.machine.nic.round_trip(payload_bytes, self.rng)
        return self.charge(CostCategory.NETWORK, raw)

    def charge_network(self, nanos: float) -> float:
        """Charge externally priced network time (e.g. a WAN service)."""
        return self.charge(CostCategory.NETWORK, nanos)

    def crypto(self, nanos: float) -> float:
        """Charge attestation/crypto work."""
        return self.charge(CostCategory.CRYPTO, nanos)

    def startup(self, nanos: float) -> float:
        """Charge bootstrap work (excluded from ratio measurements)."""
        return self.charge(CostCategory.STARTUP, nanos)

    def elapsed_ns(self, exclude_startup: bool = True) -> float:
        """Total charged time, optionally net of STARTUP.

        The paper's timing measurements exclude the launcher's runtime
        bootstrap, so ``exclude_startup`` defaults to True.
        """
        if exclude_startup:
            return self.ledger.total_excluding(CostCategory.STARTUP)
        return self.ledger.total()

    # -- batched execution --------------------------------------------

    def batch(self) -> OpBatch:
        """A fresh op batch to fill and pass to :meth:`run_batch`."""
        return OpBatch()

    def price_op(self, op: Op) -> tuple[ChargePattern, tuple]:
        """Price one op: its ordered charge pattern + counter deltas.

        The pattern lists ``(category, raw_ns)`` pairs in the exact
        order the per-op method would charge them; raw values carry
        the per-category multipliers but not the simulator/noise
        factors (those are applied by the accumulate kernel).  Counter
        deltas are ``(field, delta)`` pairs from pricing one
        repetition against a scratch bundle.
        """
        cached = self._price_cache.get(op)
        if cached is None:
            cached = self._price_cache[op] = self._price_op(op)
        return cached

    def _price_op(self, op: Op) -> tuple[ChargePattern, tuple]:
        profile = self.profile
        scratch = PerfCounters()
        charges: list[tuple[CostCategory, float]] = []
        kind = op.kind
        if kind == "cpu":
            instructions, memory_references, working_set_bytes = op.args
            cpu = self.machine.cpu
            hit_rate = None
            if self._cache_bonus:
                base = cpu.cache.hit_rate(working_set_bytes)
                hit_rate = min(1.0, base + self._cache_bonus)
            compute_ns, memory_ns, misses = cpu.execute_split(
                instructions,
                scratch,
                memory_references=memory_references,
                working_set_bytes=working_set_bytes,
                hit_rate_override=hit_rate,
            )
            charges.append((CostCategory.CPU,
                            compute_ns * profile.cpu_multiplier))
            mem_cost = memory_ns * profile.mem_access_multiplier
            if profile.mem_encrypted:
                mem_cost += misses * profile.mem_miss_extra_ns
            if mem_cost > 0:
                charges.append((CostCategory.MEM_ACCESS, mem_cost))
        elif kind == "mem_alloc":
            (nbytes,) = op.args
            raw = self.machine.memory.allocate(
                nbytes, scratch,
                encrypted=profile.mem_encrypted,
                integrity=profile.mem_integrity,
            )
            charges.append((CostCategory.MEM_ALLOC,
                            raw * profile.mem_alloc_multiplier))
        elif kind == "mem_copy":
            (nbytes,) = op.args
            raw = self.machine.memory.copy(
                nbytes, scratch,
                encrypted=profile.mem_encrypted,
                integrity=profile.mem_integrity,
            )
            charges.append((CostCategory.MEM_ACCESS,
                            raw * profile.mem_access_multiplier))
        elif kind in ("disk_read", "disk_write"):
            (nbytes,) = op.args
            if kind == "disk_read":
                raw = self.machine.disk.read(nbytes)
                charges.append((CostCategory.IO_READ,
                                raw * profile.io_read_multiplier))
            else:
                raw = self.machine.disk.write(nbytes)
                charges.append((CostCategory.IO_WRITE,
                                raw * profile.io_write_multiplier))
            if profile.io_bounce_per_byte_ns > 0 and nbytes > 0:
                scratch.bounce_buffer_bytes += nbytes
                charges.append((CostCategory.BOUNCE_BUFFER,
                                nbytes * profile.io_bounce_per_byte_ns))
            if profile.io_transition_ns > 0:
                scratch.vm_transitions += 1
                charges.append((CostCategory.VM_TRANSITION,
                                profile.io_transition_ns))
        elif kind == "syscall":
            (base_cost_ns,) = op.args
            charges.append((CostCategory.SYSCALL,
                            base_cost_ns * profile.syscall_multiplier))
            if profile.syscall_transition_ns > 0:
                scratch.vm_transitions += 1
                charges.append((CostCategory.VM_TRANSITION,
                                profile.syscall_transition_ns))
        elif kind == "vm_transition":
            (cost_ns,) = op.args
            scratch.vm_transitions += 1
            charges.append((CostCategory.VM_TRANSITION, cost_ns))
        elif kind == "crypto":
            (nanos,) = op.args
            charges.append((CostCategory.CRYPTO, nanos))
        elif kind == "network_ns":
            (nanos,) = op.args
            charges.append((CostCategory.NETWORK, nanos))
        elif kind == "startup":
            (nanos,) = op.args
            charges.append((CostCategory.STARTUP, nanos))
        elif kind == "event":
            name, delta = op.args
            setattr(scratch, name, getattr(scratch, name) + delta)
        else:
            raise SimulationError(f"unknown op kind: {kind!r}")
        return tuple(charges), scratch.nonzero_events()

    def replay_op(self, op: Op) -> float:
        """Execute one op through the per-op methods (the slow path)."""
        kind, args = op
        if kind == "cpu":
            return self.cpu_execute(*args)
        if kind == "mem_alloc":
            return self.mem_alloc(*args)
        if kind == "mem_copy":
            return self.mem_copy(*args)
        if kind == "disk_read":
            return self.disk_read(*args)
        if kind == "disk_write":
            return self.disk_write(*args)
        if kind == "syscall":
            return self.syscall_entry(*args)
        if kind == "vm_transition":
            return self.vm_transition(*args)
        if kind == "crypto":
            return self.crypto(*args)
        if kind == "network_ns":
            return self.charge_network(*args)
        if kind == "startup":
            return self.startup(*args)
        if kind == "event":
            name, delta = args
            counters = self.machine.counters
            setattr(counters, name, getattr(counters, name) + delta)
            return 0.0
        raise SimulationError(f"unknown op kind: {kind!r}")

    def run_batch(self, batch: OpBatch) -> float:
        """Execute an op batch; returns total charged nanoseconds.

        The fast path prices each distinct op once, applies counter
        deltas with exact integer multiplication, and folds all
        charges through the accumulate kernel — byte-identical to
        :meth:`replay_op`-ing every op (see :mod:`repro.sim.opstream`
        for the contract).  When a continuous-monitoring observer is
        attached it needs clock/ledger state *between* charges, so
        execution falls back to the per-op path.
        """
        if self.on_charge is not None:
            total = 0.0
            for ops, count in batch.entries:  # confbench: allow[hot-path-per-op]
                for _ in range(count):
                    for op in ops:
                        total += self.replay_op(op)
            return total
        counters = self.machine.counters
        price = self.price_op
        program: list[tuple[ChargePattern, int]] = []
        for ops, count in batch.entries:
            pattern: list[tuple[CostCategory, float]] = []
            for op in ops:
                charges, events = price(op)
                pattern.extend(charges)
                if events:
                    counters.add_events(events, count)
            if pattern:
                program.append((tuple(pattern), count))
        return BatchLedger(
            self.ledger, self.clock,
            self.profile.simulator_multiplier, self._run_noise,
            self._op_noise_sigma, self.rng.raw_random(),
        ).run(program)
