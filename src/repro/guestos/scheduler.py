"""Round-robin scheduler with context-switch accounting.

UnixBench's "pipe-based context switching" test bounces a token
between two processes; every hop is a context switch.  On confidential
VMs each switch's sleep/wake shows up as a world transition, which is
the mechanism recent work (and the paper, §IV-C) blames for UnixBench
being the most TEE-hostile suite.
"""

from __future__ import annotations

from repro.errors import ProcessError
from repro.guestos.process import ProcessState, ProcessTable

CONTEXT_SWITCH_NS = 1_600.0  # direct cost of one native context switch


class RoundRobinScheduler:
    """Cycles through runnable processes in pid order."""

    def __init__(self, table: ProcessTable) -> None:
        self.table = table
        self.current_pid = 1
        self.switch_count = 0

    def runnable_pids(self) -> list[int]:
        """Pids in RUNNING state, ascending."""
        return sorted(
            proc.pid
            for proc in self.table._table.values()  # noqa: SLF001 - scheduler is a kernel friend
            if proc.state is ProcessState.RUNNING
        )

    def switch_to(self, pid: int) -> bool:
        """Switch to a specific runnable process.

        Returns True if an actual switch happened (False when already
        current).  Raises if the target is not runnable.
        """
        proc = self.table.get(pid)
        if proc.state is not ProcessState.RUNNING:
            raise ProcessError(f"pid {pid} is {proc.state.value}, not runnable")
        if pid == self.current_pid:
            return False
        self.current_pid = pid
        self.switch_count += 1
        return True

    def next(self) -> int:
        """Advance to the next runnable process (round robin).

        Returns the new current pid.  With a single runnable process
        this is a no-op yield.
        """
        pids = self.runnable_pids()
        if not pids:
            raise ProcessError("no runnable processes")
        if self.current_pid not in pids:
            target = pids[0]
        else:
            index = pids.index(self.current_pid)
            target = pids[(index + 1) % len(pids)]
        self.switch_to(target)
        return self.current_pid
