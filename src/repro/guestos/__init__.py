"""Simulated guest operating system.

The workloads in the paper exercise a full OS (UnixBench explicitly;
SQLite and the FaaS ``iostress``/``filesystem`` functions implicitly
through file I/O and process management).  This package provides that
substrate: an in-memory filesystem, a process table, pipes, a syscall
layer with cost accounting, and a round-robin scheduler.

Functional behaviour (what a file contains, which pids exist) is real;
timing flows through the :class:`repro.guestos.context.ExecContext`,
whose :class:`repro.guestos.context.CostProfile` hook is where TEE
platforms inject their overheads (world switches, bounce buffers,
memory encryption).
"""

from repro.guestos.context import CostProfile, ExecContext, NATIVE_PROFILE
from repro.guestos.filesystem import InMemoryFileSystem
from repro.guestos.process import ProcessTable, Process, ProcessState
from repro.guestos.pipes import Pipe
from repro.guestos.syscalls import SyscallKind
from repro.guestos.scheduler import RoundRobinScheduler
from repro.guestos.kernel import GuestKernel

__all__ = [
    "CostProfile",
    "ExecContext",
    "NATIVE_PROFILE",
    "InMemoryFileSystem",
    "ProcessTable",
    "Process",
    "ProcessState",
    "Pipe",
    "SyscallKind",
    "RoundRobinScheduler",
    "GuestKernel",
]
