"""ConfBench reproduction: easy evaluation of confidential VMs.

A from-scratch Python reproduction of *"ConfBench: A Tool for Easy
Evaluation of Confidential Virtual Machines"* (DSN 2025): the
orchestration tool (gateway, TEE pools, hosts, relays, per-language
function launchers, perf monitoring, REST API), the three TEE
platforms it benches (Intel TDX, AMD SEV-SNP, ARM CCA-on-FVP) as
calibrated simulators, the workload suites (25 FaaS functions across
7 language runtimes, MobileNet-style ML inference, a mini SQL engine
with a speedtest1-style stress mix, a Byte-UnixBench-style OS suite),
and the full TDX/SNP attestation stacks with real RSA signatures.

Quick start::

    from repro import ConfBench

    bench = ConfBench(seed=42)
    bench.upload("cpustress")
    summary = bench.measure_overhead("cpustress", language="python",
                                     platform="tdx", trials=10)
    print(f"TDX overhead: {summary.overhead_percent:+.1f}%")

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for
paper-vs-measured results on every figure.
"""

from repro.core.api import ConfBench
from repro.core.client import ConfBenchClient
from repro.core.config import GatewayConfig, PlatformEntry, default_config
from repro.core.gateway import Gateway, GatewayStats, InvocationRequest
from repro.core.results import InvocationRecord, RatioSummary
from repro.errors import ConfBenchError
from repro.obs import MetricsRegistry, Profile, TraceExporter
from repro.tee.registry import available_platforms, platform_by_name
from repro.version import __version__

__all__ = [
    "ConfBench",
    "ConfBenchClient",
    "ConfBenchError",
    "GatewayConfig",
    "PlatformEntry",
    "default_config",
    "Gateway",
    "GatewayStats",
    "InvocationRequest",
    "InvocationRecord",
    "MetricsRegistry",
    "Profile",
    "RatioSummary",
    "TraceExporter",
    "available_platforms",
    "platform_by_name",
    "__version__",
]
