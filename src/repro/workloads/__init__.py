"""Workloads.

Four families, mirroring §IV-B:

- :mod:`repro.workloads.faas` — the 25 FaaS functions (from the
  FaaSdom / FaaSBenchmark / Lua-Benchmarks / wasmi-benchmarks mix)
  executed through language-runtime sessions.
- :mod:`repro.workloads.ml` — confidential ML inference: a
  MobileNet-style depthwise-separable CNN classifying 1 MB images.
- :mod:`repro.workloads.dbms` — a from-scratch mini relational engine
  plus a speedtest1-style stress suite.
- :mod:`repro.workloads.unixbench` — a Byte-UnixBench-style OS
  benchmark suite with index scoring.
"""

from repro.workloads.base import FaasWorkload, WorkloadTrait

__all__ = ["FaasWorkload", "WorkloadTrait"]
