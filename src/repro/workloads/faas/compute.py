"""CPU-bound FaaS functions.

Includes the paper's named examples (``cpustress``, ``factors``,
``ack``) plus classic FaaSdom / Lua-Benchmarks / wasmi-benchmarks
kernels (fibonacci, primes, mandelbrot, n-body, spectral norm,
fannkuch, matrix multiply).  Each computes a real, testable result at
its configured size and charges compute units proportional to the
actual operation counts.
"""

from __future__ import annotations

import math
from typing import Any

from repro.runtimes.base import RuntimeSession
from repro.workloads.base import FaasWorkload, WorkloadTrait


def cpustress(session: RuntimeSession, args: dict[str, Any]) -> dict[str, float]:
    """Intensive trigonometric + arithmetic loop (paper §IV-D)."""
    iterations = int(args["iterations"])
    accumulator = 0.0
    x = 0.5
    for i in range(iterations):
        x = math.sin(x) * math.cos(x) + math.sqrt(abs(x) + 1.0)
        accumulator += x * 1.0000001
    session.compute(iterations * 14)   # ~14 flops-equivalents per round
    return {"sum": accumulator, "iterations": iterations}


def factors(session: RuntimeSession, args: dict[str, Any]) -> list[int]:
    """Compute the factors of a number (paper §IV-D)."""
    n = int(args["n"])
    found = []
    i = 1
    steps = 0
    while i * i <= n:
        steps += 1
        if n % i == 0:
            found.append(i)
            if i != n // i:
                found.append(n // i)
        i += 1
    session.compute(steps * 6)
    return sorted(found)


def ackermann(session: RuntimeSession, args: dict[str, Any]) -> int:
    """The Ackermann function ('ack' in Fig. 6) — deep recursion."""
    m, n = int(args["m"]), int(args["n"])
    calls = 0

    def ack(m_: int, n_: int) -> int:
        nonlocal calls
        calls += 1
        if m_ == 0:
            return n_ + 1
        if n_ == 0:
            return ack(m_ - 1, 1)
        return ack(m_ - 1, ack(m_, n_ - 1))

    value = ack(m, n)
    session.compute(calls * 9)   # call overhead dominates
    return value


def fibonacci(session: RuntimeSession, args: dict[str, Any]) -> int:
    """Naive recursive Fibonacci (wasmi-benchmarks staple)."""
    n = int(args["n"])
    calls = 0

    def fib(k: int) -> int:
        nonlocal calls
        calls += 1
        if k < 2:
            return k
        return fib(k - 1) + fib(k - 2)

    value = fib(n)
    session.compute(calls * 7)
    return value


def primes(session: RuntimeSession, args: dict[str, Any]) -> dict[str, int]:
    """Sieve of Eratosthenes (Lua-Benchmarks 'sieve')."""
    limit = int(args["limit"])
    sieve = bytearray([1]) * (limit + 1)
    sieve[0:2] = b"\0\0"
    ops = 0
    for i in range(2, int(limit ** 0.5) + 1):
        if sieve[i]:
            for j in range(i * i, limit + 1, i):
                sieve[j] = 0
                ops += 1
    count = sum(sieve)
    session.allocate(limit + 1)
    session.compute(ops * 3 + limit)
    return {"limit": limit, "count": count}


def mandelbrot(session: RuntimeSession, args: dict[str, Any]) -> int:
    """Mandelbrot membership over a small grid (Lua-Benchmarks 'mandel')."""
    size = int(args["size"])
    max_iter = int(args["max_iter"])
    inside = 0
    total_iters = 0
    for py in range(size):
        y0 = py * 2.0 / size - 1.0
        for px in range(size):
            x0 = px * 3.0 / size - 2.0
            x = y = 0.0
            i = 0
            while x * x + y * y <= 4.0 and i < max_iter:
                x, y = x * x - y * y + x0, 2.0 * x * y + y0
                i += 1
            total_iters += i
            if i == max_iter:
                inside += 1
    session.compute(total_iters * 10)
    return inside


def nbody(session: RuntimeSession, args: dict[str, Any]) -> dict[str, float]:
    """Planetary n-body energy simulation (shootout/wasmi kernel)."""
    steps = int(args["steps"])
    bodies = [
        [0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 4 * math.pi ** 2],     # sun
        [4.84, -1.16, -0.10, 0.606, 2.81, -0.02, 9.5e-4],      # jupiter-ish
        [8.34, 4.12, -0.40, -1.01, 1.82, 0.008, 2.8e-4],       # saturn-ish
    ]
    dt = 0.01
    interactions = 0
    for _ in range(steps):
        for i in range(len(bodies)):
            for j in range(i + 1, len(bodies)):
                interactions += 1
                bi, bj = bodies[i], bodies[j]
                dx, dy, dz = bi[0] - bj[0], bi[1] - bj[1], bi[2] - bj[2]
                dist_sq = dx * dx + dy * dy + dz * dz + 1e-9
                mag = dt / (dist_sq * math.sqrt(dist_sq))
                for axis, delta in enumerate((dx, dy, dz)):
                    bi[3 + axis] -= delta * bj[6] * mag
                    bj[3 + axis] += delta * bi[6] * mag
        for body in bodies:
            body[0] += dt * body[3]
            body[1] += dt * body[4]
            body[2] += dt * body[5]
    energy = 0.0
    for i in range(len(bodies)):
        bi = bodies[i]
        energy += 0.5 * bi[6] * (bi[3] ** 2 + bi[4] ** 2 + bi[5] ** 2)
    session.compute(interactions * 30 + steps * 12)
    return {"steps": steps, "energy": energy}


def spectralnorm(session: RuntimeSession, args: dict[str, Any]) -> float:
    """Spectral norm power iteration (shootout kernel)."""
    n = int(args["n"])
    iterations = int(args["iterations"])

    def a(i: int, j: int) -> float:
        return 1.0 / ((i + j) * (i + j + 1) / 2 + i + 1)

    u = [1.0] * n
    v = [0.0] * n
    ops = 0
    for _ in range(iterations):
        for i in range(n):
            v[i] = sum(a(i, j) * u[j] for j in range(n))
            ops += n
        for i in range(n):
            u[i] = sum(a(j, i) * v[j] for j in range(n))
            ops += n
    vbv = sum(ui * vi for ui, vi in zip(u, v))
    vv = sum(vi * vi for vi in v)
    session.compute(ops * 8)
    return math.sqrt(vbv / vv)


def fannkuch(session: RuntimeSession, args: dict[str, Any]) -> int:
    """Fannkuch permutation flipping (shootout kernel), returns max flips."""
    n = int(args["n"])
    perm = list(range(n))
    count = [0] * n
    max_flips = 0
    total_flips = 0
    r = n
    while True:
        while r > 1:
            count[r - 1] = r
            r -= 1
        if perm[0] != 0:
            current = perm[:]
            flips = 0
            while current[0] != 0:
                k = current[0]
                current[: k + 1] = current[k::-1]
                flips += 1
            total_flips += flips
            max_flips = max(max_flips, flips)
        while True:
            if r == n:
                session.compute(total_flips * 12 + 50)
                return max_flips
            perm.insert(r, perm.pop(0))
            count[r] -= 1
            if count[r] > 0:
                break
            r += 1


def matrix_multiply(session: RuntimeSession, args: dict[str, Any]) -> float:
    """Dense matrix multiplication; returns the result's trace."""
    n = int(args["n"])
    a = [[(i * n + j) % 7 + 1.0 for j in range(n)] for i in range(n)]
    b = [[(i + j) % 5 + 1.0 for j in range(n)] for i in range(n)]
    c = [[0.0] * n for _ in range(n)]
    for i in range(n):
        row_a = a[i]
        row_c = c[i]
        for k in range(n):
            aik = row_a[k]
            row_b = b[k]
            for j in range(n):
                row_c[j] += aik * row_b[j]
    session.allocate(3 * n * n * 8)
    session.compute(n * n * n * 4, working_set_bytes=3 * n * n * 8)
    return sum(c[i][i] for i in range(n))


def juliaset(session: RuntimeSession, args: dict[str, Any]) -> int:
    """Julia set membership grid (Lua-Benchmarks kernel)."""
    size = int(args["size"])
    max_iter = int(args["max_iter"])
    c_re, c_im = -0.7, 0.27015
    inside = 0
    total = 0
    for py in range(size):
        for px in range(size):
            zx = 1.5 * (px - size / 2) / (0.5 * size)
            zy = (py - size / 2) / (0.5 * size)
            i = 0
            while zx * zx + zy * zy < 4.0 and i < max_iter:
                zx, zy = zx * zx - zy * zy + c_re, 2.0 * zx * zy + c_im
                i += 1
            total += i
            if i == max_iter:
                inside += 1
    session.compute(total * 10)
    return inside


COMPUTE_WORKLOADS = [
    FaasWorkload(
        name="cpustress",
        trait=WorkloadTrait.CPU,
        description="intensive trigonometric and arithmetic loop",
        fn=cpustress,
        default_args={"iterations": 6000},
        origin="paper §IV-D",
    ),
    FaasWorkload(
        name="factors",
        trait=WorkloadTrait.CPU,
        description="compute the factors of a number",
        fn=factors,
        default_args={"n": 1_234_567},
        origin="paper §IV-D",
    ),
    FaasWorkload(
        name="ack",
        trait=WorkloadTrait.CPU,
        description="Ackermann function (deep recursion)",
        fn=ackermann,
        default_args={"m": 2, "n": 4},
        origin="Lua-Benchmarks",
    ),
    FaasWorkload(
        name="fibonacci",
        trait=WorkloadTrait.CPU,
        description="naive recursive Fibonacci",
        fn=fibonacci,
        default_args={"n": 17},
        origin="wasmi-benchmarks",
    ),
    FaasWorkload(
        name="primes",
        trait=WorkloadTrait.CPU,
        description="sieve of Eratosthenes",
        fn=primes,
        default_args={"limit": 30_000},
        origin="Lua-Benchmarks (sieve)",
    ),
    FaasWorkload(
        name="mandelbrot",
        trait=WorkloadTrait.CPU,
        description="Mandelbrot membership grid",
        fn=mandelbrot,
        default_args={"size": 48, "max_iter": 40},
        origin="Lua-Benchmarks (mandel)",
    ),
    FaasWorkload(
        name="nbody",
        trait=WorkloadTrait.CPU,
        description="three-body gravitational simulation",
        fn=nbody,
        default_args={"steps": 900},
        origin="wasmi-benchmarks",
    ),
    FaasWorkload(
        name="spectralnorm",
        trait=WorkloadTrait.CPU,
        description="spectral norm power iteration",
        fn=spectralnorm,
        default_args={"n": 40, "iterations": 6},
        origin="FaaSBenchmark",
    ),
    FaasWorkload(
        name="fannkuch",
        trait=WorkloadTrait.CPU,
        description="fannkuch permutation flipping",
        fn=fannkuch,
        default_args={"n": 6},
        origin="Lua-Benchmarks",
    ),
    FaasWorkload(
        name="matrix",
        trait=WorkloadTrait.CPU,
        description="dense matrix multiplication",
        fn=matrix_multiply,
        default_args={"n": 28},
        origin="FaaSdom",
    ),
    FaasWorkload(
        name="juliaset",
        trait=WorkloadTrait.CPU,
        description="Julia set membership grid",
        fn=juliaset,
        default_args={"size": 40, "max_iter": 40},
        origin="Lua-Benchmarks",
    ),
]
