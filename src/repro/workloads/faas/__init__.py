"""The FaaS workload suite (25 paper workloads + extras)."""

from repro.workloads.faas.registry import (
    FIGURE_WORKLOAD_NAMES,
    all_workloads,
    figure_workloads,
    register_workload,
    unregister_workload,
    workload_by_name,
)

__all__ = [
    "FIGURE_WORKLOAD_NAMES",
    "all_workloads",
    "figure_workloads",
    "register_workload",
    "unregister_workload",
    "workload_by_name",
]
