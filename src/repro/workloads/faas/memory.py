"""Memory-bound FaaS functions.

``memstress`` is the paper's named example (repeated 1 MB buffer
allocation).  The rest are allocation-heavy kernels from the public
suites: binary trees (GC stress), sorting, string building, word
counting and JSON round-trips.
"""

from __future__ import annotations

import json
from typing import Any

from repro.runtimes.base import RuntimeSession
from repro.workloads.base import FaasWorkload, WorkloadTrait


def memstress(session: RuntimeSession, args: dict[str, Any]) -> dict[str, int]:
    """Repeatedly allocate 1 MB buffers (paper: covers half the RAM)."""
    buffer_bytes = int(args["buffer_bytes"])
    count = int(args["count"])
    checksum = 0
    batch = session.batch()
    for i in range(count):
        batch.allocate(buffer_bytes)
        # touch the buffer: one pass of writes
        batch.compute(buffer_bytes // 512,
                      working_set_bytes=buffer_bytes)
        checksum = (checksum + i * buffer_bytes) % (2 ** 31)
        batch.release(buffer_bytes)
    batch.commit()
    return {"allocated_mb": count * buffer_bytes // (1 << 20),
            "checksum": checksum}


def binarytrees(session: RuntimeSession, args: dict[str, Any]) -> dict[str, int]:
    """Allocate/walk binary trees (shootout GC stress kernel)."""
    depth = int(args["depth"])

    nodes_made = 0

    def make(d: int):
        nonlocal nodes_made
        nodes_made += 1
        if d == 0:
            return (None, None)
        return (make(d - 1), make(d - 1))

    def check(node) -> int:
        left, right = node
        if left is None:
            return 1
        return 1 + check(left) + check(right)

    tree = make(depth)
    total = check(tree)
    session.allocate(nodes_made * 48)        # node objects
    session.compute(nodes_made * 12, working_set_bytes=nodes_made * 48)
    session.release(nodes_made * 48)
    return {"depth": depth, "nodes": total}


def sort_numbers(session: RuntimeSession, args: dict[str, Any]) -> dict[str, Any]:
    """Sort a pseudo-random array; verifies order (FaaSdom kernel)."""
    n = int(args["n"])
    seed = 1234567
    values = []
    for _ in range(n):
        seed = (seed * 1103515245 + 12345) % (2 ** 31)
        values.append(seed)
    values.sort()
    session.allocate(n * 28)
    # comparison sort: n log n comparisons
    log_n = max(1, n.bit_length())
    session.compute(n * log_n * 4, working_set_bytes=n * 28)
    session.release(n * 28)
    return {"n": n, "min": values[0], "max": values[-1],
            "sorted": all(a <= b for a, b in zip(values, values[1:]))}


def string_concat(session: RuntimeSession, args: dict[str, Any]) -> dict[str, int]:
    """Build a large string by repeated concatenation."""
    rounds = int(args["rounds"])
    piece = "confidential-computing-"
    parts = []
    total_len = 0
    batch = session.batch()
    for i in range(rounds):
        fragment = f"{piece}{i}"
        parts.append(fragment)
        total_len += len(fragment)
        batch.allocate(len(fragment) * 2)   # str object + copy
        batch.release(len(fragment))
    batch.commit()
    result = "".join(parts)
    session.compute(total_len // 4, working_set_bytes=total_len)
    return {"rounds": rounds, "length": len(result)}


def wordcount(session: RuntimeSession, args: dict[str, Any]) -> dict[str, int]:
    """Count word frequencies over generated text."""
    repeats = int(args["repeats"])
    vocabulary = ("the quick brown fox jumps over the lazy dog while "
                  "secure enclaves measure attest and verify the code").split()
    counts: dict[str, int] = {}
    words = 0
    for _ in range(repeats):
        for word in vocabulary:
            counts[word] = counts.get(word, 0) + 1
            words += 1
    session.allocate(len(counts) * 64)
    session.compute(words * 10, working_set_bytes=len(counts) * 64)
    return {"total_words": words, "unique": len(counts),
            "the": counts.get("the", 0)}


def json_serde(session: RuntimeSession, args: dict[str, Any]) -> dict[str, int]:
    """Serialize and re-parse a nested document repeatedly."""
    rounds = int(args["rounds"])
    document = {
        "id": 42,
        "tags": ["tee", "tdx", "sev-snp", "cca"],
        "nested": {"values": list(range(40)), "flag": True},
    }
    size = 0
    batch = session.batch()
    for _ in range(rounds):
        text = json.dumps(document)
        parsed = json.loads(text)
        size = len(text)
        batch.allocate(size * 3)     # text + token + object tree
        batch.compute(size * 6, working_set_bytes=size * 3)
        batch.release(size * 3)
        if parsed["id"] != 42:
            raise AssertionError("round-trip corrupted the document")
    batch.commit()
    return {"rounds": rounds, "doc_bytes": size}


MEMORY_WORKLOADS = [
    FaasWorkload(
        name="memstress",
        trait=WorkloadTrait.MEMORY,
        description="repeated 1 MB buffer allocation",
        fn=memstress,
        default_args={"buffer_bytes": 1 << 20, "count": 24},
        origin="paper §IV-D",
    ),
    FaasWorkload(
        name="binarytrees",
        trait=WorkloadTrait.MEMORY,
        description="binary tree allocation / traversal (GC stress)",
        fn=binarytrees,
        default_args={"depth": 9},
        origin="Lua-Benchmarks (binary)",
    ),
    FaasWorkload(
        name="sort",
        trait=WorkloadTrait.MEMORY,
        description="sort a pseudo-random integer array",
        fn=sort_numbers,
        default_args={"n": 12_000},
        origin="FaaSdom",
    ),
    FaasWorkload(
        name="stringconcat",
        trait=WorkloadTrait.MEMORY,
        description="repeated string concatenation",
        fn=string_concat,
        default_args={"rounds": 2_500},
        origin="FaaSBenchmark",
    ),
    FaasWorkload(
        name="wordcount",
        trait=WorkloadTrait.MEMORY,
        description="word frequency counting",
        fn=wordcount,
        default_args={"repeats": 350},
        origin="FaaSdom",
    ),
    FaasWorkload(
        name="jsonserde",
        trait=WorkloadTrait.MEMORY,
        description="JSON serialize/parse round-trips",
        fn=json_serde,
        default_args={"rounds": 220},
        origin="FaaSdom",
    ),
]
