"""FaaS workload registry.

The paper reports results for 25 distinct workloads; that set is
:data:`FIGURE_WORKLOAD_NAMES` (used by the Fig. 6/7/8 harnesses).  A
26th workload (``juliaset``) ships as an extra to demonstrate
registry extensibility.
"""

from __future__ import annotations

from repro.errors import UnknownWorkloadError
from repro.workloads.base import FaasWorkload
from repro.workloads.faas.compute import COMPUTE_WORKLOADS
from repro.workloads.faas.io_mixed import IO_MIXED_WORKLOADS
from repro.workloads.faas.memory import MEMORY_WORKLOADS

_ALL: dict[str, FaasWorkload] = {
    workload.name: workload
    for workload in (*COMPUTE_WORKLOADS, *MEMORY_WORKLOADS, *IO_MIXED_WORKLOADS)
}

#: The paper's 25-workload set, ordered for the heatmap figures.
FIGURE_WORKLOAD_NAMES: tuple[str, ...] = (
    # cpu
    "cpustress", "factors", "ack", "fibonacci", "primes",
    "mandelbrot", "nbody", "spectralnorm", "fannkuch", "matrix",
    # memory
    "memstress", "binarytrees", "sort", "stringconcat", "wordcount",
    "jsonserde",
    # io / mixed
    "iostress", "logging", "filesystem", "base64", "checksum",
    "compression", "shahash", "graphbfs", "htmlrender",
)


def workload_by_name(name: str) -> FaasWorkload:
    """Look up a registered workload.

    Raises
    ------
    UnknownWorkloadError
        If no workload with that name exists.
    """
    try:
        return _ALL[name]
    except KeyError:
        raise UnknownWorkloadError(
            f"unknown workload {name!r}; known: {', '.join(sorted(_ALL))}"
        ) from None


def all_workloads() -> list[FaasWorkload]:
    """Every registered workload (including extras), sorted by name."""
    return [_ALL[name] for name in sorted(_ALL)]


def figure_workloads() -> list[FaasWorkload]:
    """The paper's 25 workloads in figure order."""
    return [_ALL[name] for name in FIGURE_WORKLOAD_NAMES]


def register_workload(workload: FaasWorkload) -> None:
    """Add a user-supplied workload (duplicates rejected)."""
    if workload.name in _ALL:
        raise ValueError(f"workload {workload.name!r} already registered")
    _ALL[workload.name] = workload


def unregister_workload(name: str) -> None:
    """Remove a user-supplied workload (built-ins protected)."""
    if name in FIGURE_WORKLOAD_NAMES or name == "juliaset":
        raise ValueError(f"refusing to unregister built-in workload {name!r}")
    _ALL.pop(name, None)
