"""I/O-bound and mixed FaaS functions.

Includes the paper's named examples — ``iostress`` (dd-style 1 MB
file writes), ``logging`` (3000 messages) and ``filesystem`` (nested
folders + a 1 MB file lifecycle) — plus mixed kernels: base64,
checksumming, run-length compression, hashing, BFS and a tiny
template renderer.
"""

from __future__ import annotations

import base64 as b64
import hashlib
import zlib
from typing import Any

from repro.runtimes.base import RuntimeSession
from repro.workloads.base import FaasWorkload, WorkloadTrait


def iostress(session: RuntimeSession, args: dict[str, Any]) -> dict[str, int]:
    """dd-style: create and write large files (1 MB each)."""
    file_bytes = int(args["file_bytes"])
    files = int(args["files"])
    block = b"\x5a" * 65536
    full_blocks, tail = divmod(file_bytes, len(block))
    written = 0
    kernel = session.kernel
    for index in range(files):
        path = f"/iostress-{index}.bin"
        session.write_file(path, b"")   # creates the file
        # functional append once; charges batched per chunk below
        kernel.fs.write(path, block * full_blocks + block[:tail], None)
        written += file_bytes
        kb = kernel.batch()
        kb.repeat(kb.seq().write(len(block)), full_blocks)
        if tail:
            kb.repeat(kb.seq().write(tail))
        kb.commit()
        session.delete_file(path)
    return {"files": files, "bytes_written": written}


def logging_workload(session: RuntimeSession, args: dict[str, Any]) -> dict[str, int]:
    """Print a large number of messages (paper default: 3000)."""
    messages = int(args["messages"])
    batch = session.batch()
    for i in range(messages):
        batch.log(f"[{i:06d}] request handled status=200 latency_ms=1.5")
    batch.commit()
    return {"messages": messages, "stdout_lines": session.stdout_lines}


def filesystem(session: RuntimeSession, args: dict[str, Any]) -> dict[str, Any]:
    """Nested folders, a 1 MB file, write/read/cleanup (paper §IV-D)."""
    file_bytes = int(args["file_bytes"])
    session.mkdir("/outer")
    session.mkdir("/outer/inner")
    path = "/outer/inner/data.bin"
    payload = b"\xab" * file_bytes
    session.write_file(path, payload)
    read_back = session.read_file(path)
    ok = read_back == payload
    session.delete_file(path)
    session.rmdir("/outer/inner")
    session.rmdir("/outer")
    return {"bytes": file_bytes, "verified": ok}


def base64_roundtrip(session: RuntimeSession, args: dict[str, Any]) -> dict[str, Any]:
    """Encode/decode a buffer through base64 repeatedly."""
    payload_bytes = int(args["payload_bytes"])
    rounds = int(args["rounds"])
    payload = bytes(range(256)) * (payload_bytes // 256 + 1)
    payload = payload[:payload_bytes]
    encoded = b""
    for _ in range(rounds):
        encoded = b64.b64encode(payload)
        decoded = b64.b64decode(encoded)
        if decoded != payload:
            raise AssertionError("base64 round-trip corrupted data")
        session.allocate(len(encoded) + len(decoded))
        session.compute(payload_bytes * 3, working_set_bytes=len(encoded))
        session.release(len(encoded) + len(decoded))
    return {"rounds": rounds, "encoded_bytes": len(encoded)}


def checksum(session: RuntimeSession, args: dict[str, Any]) -> dict[str, int]:
    """CRC32 over generated blocks, persisted to a result file."""
    blocks = int(args["blocks"])
    block_bytes = int(args["block_bytes"])
    value = 0
    for index in range(blocks):
        data = bytes((index + j) % 256 for j in range(256)) * (block_bytes // 256)
        value = zlib.crc32(data, value)
        session.compute(block_bytes, working_set_bytes=block_bytes)
    session.write_file("/checksum.txt", f"{value:08x}".encode())
    session.delete_file("/checksum.txt")
    return {"blocks": blocks, "crc32": value}


def compression(session: RuntimeSession, args: dict[str, Any]) -> dict[str, int]:
    """Run-length encode a repetitive buffer and verify by decoding."""
    payload_bytes = int(args["payload_bytes"])
    data = (b"A" * 19 + b"B" * 7 + b"C" * 3) * (payload_bytes // 29 + 1)
    data = data[:payload_bytes]
    encoded: list[tuple[int, int]] = []
    previous = data[0]
    run = 1
    for byte in data[1:]:
        if byte == previous and run < 255:
            run += 1
        else:
            encoded.append((previous, run))
            previous, run = byte, 1
    encoded.append((previous, run))
    decoded = b"".join(bytes([b]) * r for b, r in encoded)
    if decoded != data:
        raise AssertionError("RLE round-trip corrupted data")
    session.allocate(len(encoded) * 2 + payload_bytes)
    session.compute(payload_bytes * 4, working_set_bytes=payload_bytes)
    session.release(len(encoded) * 2 + payload_bytes)
    return {"input_bytes": payload_bytes, "runs": len(encoded)}


def sha_hash(session: RuntimeSession, args: dict[str, Any]) -> dict[str, Any]:
    """SHA-256 a buffer repeatedly (tiny-keccak analogue)."""
    payload_bytes = int(args["payload_bytes"])
    rounds = int(args["rounds"])
    payload = b"\x42" * payload_bytes
    digest = b""
    for _ in range(rounds):
        digest = hashlib.sha256(payload + digest).digest()
        session.compute(payload_bytes * 6, working_set_bytes=payload_bytes)
    return {"rounds": rounds, "digest": digest.hex()}


def graph_bfs(session: RuntimeSession, args: dict[str, Any]) -> dict[str, int]:
    """Breadth-first search over a deterministic random graph."""
    nodes = int(args["nodes"])
    degree = int(args["degree"])
    adjacency = [
        [((i * 7919 + k * 104729) % nodes) for k in range(degree)]
        for i in range(nodes)
    ]
    visited = [False] * nodes
    frontier = [0]
    visited[0] = True
    reached = 1
    edges_walked = 0
    while frontier:
        next_frontier = []
        for node in frontier:
            for neighbor in adjacency[node]:
                edges_walked += 1
                if not visited[neighbor]:
                    visited[neighbor] = True
                    reached += 1
                    next_frontier.append(neighbor)
        frontier = next_frontier
    session.allocate(nodes * degree * 8)
    session.compute(edges_walked * 6, working_set_bytes=nodes * degree * 8)
    session.release(nodes * degree * 8)
    return {"nodes": nodes, "reached": reached, "edges_walked": edges_walked}


def html_render(session: RuntimeSession, args: dict[str, Any]) -> dict[str, int]:
    """Render an HTML table from row data, write it out (FaaSdom-style)."""
    rows = int(args["rows"])
    cells = []
    for i in range(rows):
        cells.append(f"<tr><td>{i}</td><td>item-{i}</td><td>{i * 3.14:.2f}</td></tr>")
    session.compute_batch(60, rows)
    page = "<table>" + "".join(cells) + "</table>"
    session.allocate(len(page))
    session.write_file("/render.html", page.encode())
    size = session.kernel.sys_stat("/render.html")["size"]
    session.delete_file("/render.html")
    session.release(len(page))
    return {"rows": rows, "bytes": int(size)}


IO_MIXED_WORKLOADS = [
    FaasWorkload(
        name="iostress",
        trait=WorkloadTrait.IO,
        description="dd-style large-file writes (1 MB files)",
        fn=iostress,
        default_args={"file_bytes": 1 << 20, "files": 4},
        origin="paper §IV-D",
    ),
    FaasWorkload(
        name="logging",
        trait=WorkloadTrait.IO,
        description="print a large number of log messages",
        fn=logging_workload,
        default_args={"messages": 3000},
        origin="paper §IV-D",
    ),
    FaasWorkload(
        name="filesystem",
        trait=WorkloadTrait.IO,
        description="nested folders + 1 MB file lifecycle",
        fn=filesystem,
        default_args={"file_bytes": 1 << 20},
        origin="paper §IV-D",
    ),
    FaasWorkload(
        name="base64",
        trait=WorkloadTrait.MIXED,
        description="base64 encode/decode round-trips",
        fn=base64_roundtrip,
        default_args={"payload_bytes": 64 * 1024, "rounds": 10},
        origin="FaaSdom",
    ),
    FaasWorkload(
        name="checksum",
        trait=WorkloadTrait.MIXED,
        description="CRC32 over generated blocks",
        fn=checksum,
        default_args={"blocks": 24, "block_bytes": 32 * 1024},
        origin="FaaSBenchmark",
    ),
    FaasWorkload(
        name="compression",
        trait=WorkloadTrait.MIXED,
        description="run-length encoding with verification",
        fn=compression,
        default_args={"payload_bytes": 192 * 1024},
        origin="FaaSBenchmark",
    ),
    FaasWorkload(
        name="shahash",
        trait=WorkloadTrait.MIXED,
        description="chained SHA-256 hashing",
        fn=sha_hash,
        default_args={"payload_bytes": 48 * 1024, "rounds": 12},
        origin="wasmi-benchmarks (tiny-keccak analogue)",
    ),
    FaasWorkload(
        name="graphbfs",
        trait=WorkloadTrait.MIXED,
        description="BFS over a deterministic random graph",
        fn=graph_bfs,
        default_args={"nodes": 4_000, "degree": 4},
        origin="FaaSBenchmark",
    ),
    FaasWorkload(
        name="htmlrender",
        trait=WorkloadTrait.MIXED,
        description="HTML table rendering written to disk",
        fn=html_render,
        default_args={"rows": 900},
        origin="FaaSdom",
    ),
]
