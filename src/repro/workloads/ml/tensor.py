"""Tensor operations for the CNN, with MAC accounting.

A tiny inference-only op set: standard convolution, depthwise
convolution, pointwise (1x1) convolution, ReLU6, global average
pooling, dense, softmax.  Every op returns its output *and* the
multiply-accumulate count so the cost model can charge the VM
context for exactly the arithmetic performed.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError


def conv2d(x: np.ndarray, weights: np.ndarray, stride: int = 1) -> tuple[np.ndarray, int]:
    """Standard convolution (NHWC-free: single image HWC).

    Parameters
    ----------
    x:
        Input of shape (H, W, C_in).
    weights:
        Kernel of shape (K, K, C_in, C_out).
    stride:
        Spatial stride.

    Returns
    -------
    (output, macs):
        Output of shape (H', W', C_out) and the MAC count.
    """
    if x.ndim != 3 or weights.ndim != 4:
        raise WorkloadError(
            f"conv2d expects (H,W,C) and (K,K,Cin,Cout); got {x.shape}, {weights.shape}"
        )
    k = weights.shape[0]
    c_in, c_out = weights.shape[2], weights.shape[3]
    if x.shape[2] != c_in:
        raise WorkloadError(f"channel mismatch: input {x.shape[2]}, kernel {c_in}")
    h_out = (x.shape[0] - k) // stride + 1
    w_out = (x.shape[1] - k) // stride + 1
    if h_out <= 0 or w_out <= 0:
        raise WorkloadError(f"kernel {k} too large for input {x.shape}")

    # im2col: gather (h_out*w_out, k*k*c_in) patches, one matmul.
    patches = np.empty((h_out * w_out, k * k * c_in), dtype=x.dtype)
    index = 0
    for i in range(h_out):
        for j in range(w_out):
            patch = x[i * stride:i * stride + k, j * stride:j * stride + k, :]
            patches[index] = patch.reshape(-1)
            index += 1
    flat_weights = weights.reshape(k * k * c_in, c_out)
    out = patches @ flat_weights
    macs = h_out * w_out * k * k * c_in * c_out
    return out.reshape(h_out, w_out, c_out), macs


def depthwise_conv2d(x: np.ndarray, weights: np.ndarray,
                     stride: int = 1) -> tuple[np.ndarray, int]:
    """Depthwise convolution: one K×K filter per input channel.

    ``weights`` has shape (K, K, C).
    """
    if x.ndim != 3 or weights.ndim != 3:
        raise WorkloadError(
            f"depthwise expects (H,W,C) and (K,K,C); got {x.shape}, {weights.shape}"
        )
    k = weights.shape[0]
    channels = weights.shape[2]
    if x.shape[2] != channels:
        raise WorkloadError(f"channel mismatch: {x.shape[2]} vs {channels}")
    h_out = (x.shape[0] - k) // stride + 1
    w_out = (x.shape[1] - k) // stride + 1
    if h_out <= 0 or w_out <= 0:
        raise WorkloadError(f"kernel {k} too large for input {x.shape}")
    out = np.zeros((h_out, w_out, channels), dtype=x.dtype)
    for di in range(k):
        for dj in range(k):
            region = x[di:di + h_out * stride:stride,
                       dj:dj + w_out * stride:stride, :]
            out += region * weights[di, dj, :]
    macs = h_out * w_out * k * k * channels
    return out, macs


def pointwise_conv2d(x: np.ndarray, weights: np.ndarray) -> tuple[np.ndarray, int]:
    """1×1 convolution: a per-pixel channel mix; weights (C_in, C_out)."""
    if x.ndim != 3 or weights.ndim != 2:
        raise WorkloadError(
            f"pointwise expects (H,W,C) and (Cin,Cout); got {x.shape}, {weights.shape}"
        )
    if x.shape[2] != weights.shape[0]:
        raise WorkloadError(f"channel mismatch: {x.shape[2]} vs {weights.shape[0]}")
    out = x @ weights
    macs = x.shape[0] * x.shape[1] * weights.shape[0] * weights.shape[1]
    return out, macs


def relu6(x: np.ndarray) -> np.ndarray:
    """MobileNet's clipped activation."""
    return np.clip(x, 0.0, 6.0)


def global_avg_pool(x: np.ndarray) -> tuple[np.ndarray, int]:
    """Average over the spatial dims: (H, W, C) -> (C,)."""
    if x.ndim != 3:
        raise WorkloadError(f"pool expects (H,W,C); got {x.shape}")
    return x.mean(axis=(0, 1)), x.shape[0] * x.shape[1] * x.shape[2]


def dense(x: np.ndarray, weights: np.ndarray,
          bias: np.ndarray) -> tuple[np.ndarray, int]:
    """Fully connected layer: (C,) @ (C, N) + (N,)."""
    if x.ndim != 1 or weights.ndim != 2 or x.shape[0] != weights.shape[0]:
        raise WorkloadError(
            f"dense shape mismatch: x {x.shape}, weights {weights.shape}"
        )
    return x @ weights + bias, x.shape[0] * weights.shape[1]


def softmax(x: np.ndarray) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = x - x.max()
    exp = np.exp(shifted)
    return exp / exp.sum()
