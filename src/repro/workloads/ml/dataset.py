"""Synthetic image dataset: 40 diversified ~1 MB images.

The paper uses the GuaranTEE dataset of 40 one-megabyte images; with
no such dataset available offline, this module synthesises images of
the same count and size: each image is a class-specific structured
pattern (gradients, stripes, checker tiles at class-dependent
frequency and palette) plus deterministic noise.  Raw HWC uint8 at
592×592×3 ≈ 1.003 MiB matches the paper's per-image footprint.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError

#: 592*592*3 bytes = 1,051,392 ≈ 1.00 MiB raw.
DEFAULT_IMAGE_SIDE = 592
DEFAULT_IMAGE_COUNT = 40


@dataclass(frozen=True)
class LabeledImage:
    """One image with the class id of the template that built it."""

    image: np.ndarray
    template_class: int
    index: int

    @property
    def nbytes(self) -> int:
        return self.image.nbytes


class ImageDataset:
    """A list of labeled synthetic images."""

    def __init__(self, images: list[LabeledImage]) -> None:
        if not images:
            raise WorkloadError("dataset cannot be empty")
        self.images = images

    def __len__(self) -> int:
        return len(self.images)

    def __iter__(self):
        return iter(self.images)

    def __getitem__(self, index: int) -> LabeledImage:
        return self.images[index]

    def total_bytes(self) -> int:
        """Sum of raw image sizes (≈ 40 MB for the default dataset)."""
        return sum(item.nbytes for item in self.images)


def _class_pattern(rng: np.random.Generator, side: int, cls: int) -> np.ndarray:
    """A structured pattern distinctive to ``cls``."""
    ys, xs = np.mgrid[0:side, 0:side]
    frequency = 2 + cls
    phase = cls * 0.7
    base = (
        np.sin(xs * frequency * 2 * np.pi / side + phase)
        + np.cos(ys * (frequency + 1) * 2 * np.pi / side)
    )
    palette = np.array([
        [(cls * 37) % 200 + 55, (cls * 91) % 200 + 55, (cls * 53) % 200 + 55]
    ], dtype=np.float64)
    image = (base[..., None] * 0.25 + 0.5) * palette
    noise = rng.normal(0.0, 14.0, size=(side, side, 3))
    return np.clip(image + noise, 0, 255).astype(np.uint8)


def generate_dataset(
    count: int = DEFAULT_IMAGE_COUNT,
    side: int = DEFAULT_IMAGE_SIDE,
    num_classes: int = 10,
    seed: int = 0,
) -> ImageDataset:
    """Build ``count`` diversified images cycling through the classes."""
    if count < 1:
        raise WorkloadError(f"need at least one image, got {count}")
    if num_classes < 1:
        raise WorkloadError(f"need at least one class, got {num_classes}")
    rng = np.random.default_rng(seed)
    images = [
        LabeledImage(
            image=_class_pattern(rng, side, index % num_classes),
            template_class=index % num_classes,
            index=index,
        )
        for index in range(count)
    ]
    return ImageDataset(images)
