"""Confidential ML inference workload.

Reproduces the paper's §IV-C "Confidential ML" experiment: a
MobileNet-style model (depthwise-separable CNN, per the TFLite
label_image example) classifying a dataset of 40 one-megabyte images
(per the GuaranTEE setup the paper replicates).

The substitution: instead of TensorFlow Lite, the model is a real
numpy forward pass (:mod:`repro.workloads.ml.mobilenet`) over
synthetic images (:mod:`repro.workloads.ml.dataset`); compute cost is
charged through the VM's execution context proportional to the actual
multiply-accumulate count.
"""

from repro.workloads.ml.mobilenet import MobileNetLite
from repro.workloads.ml.dataset import ImageDataset, generate_dataset
from repro.workloads.ml.inference import InferenceResult, classify_image, run_inference_workload

__all__ = [
    "MobileNetLite",
    "ImageDataset",
    "generate_dataset",
    "InferenceResult",
    "classify_image",
    "run_inference_workload",
]
