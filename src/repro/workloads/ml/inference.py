"""Inference execution with cost accounting.

``classify_image`` performs a real forward pass and charges the VM's
execution context for:

- loading the ~1 MB image from the guest filesystem (disk read +
  copy to user space — where TDX's bounce buffers and CCA's emulated
  virtio show up),
- decode/preprocess work proportional to the pixel count,
- the network arithmetic, proportional to the measured MAC count
  with the memory traffic of the activations.

``run_inference_workload`` is the Fig. 3 unit: stage the dataset in
the VM, classify every image, and return the per-image times.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.guestos.kernel import GuestKernel
from repro.workloads.ml.dataset import ImageDataset, LabeledImage
from repro.workloads.ml.mobilenet import MobileNetLite

#: MACs execute as fused multiply-adds; a vectorised CPU retires
#: several per instruction-equivalent.
_INSTRUCTIONS_PER_MAC = 0.5
_MEM_REFS_PER_MAC = 0.035
_DECODE_INSTR_PER_PIXEL = 6.0


@dataclass(frozen=True)
class InferenceResult:
    """Outcome of classifying one image."""

    index: int
    label: int
    confidence: float
    template_class: int
    macs: int
    elapsed_ns: float


def classify_image(
    kernel: GuestKernel,
    model: MobileNetLite,
    item: LabeledImage,
    staged_path: str,
) -> InferenceResult:
    """Classify one staged image, charging all costs to the VM."""
    start = kernel.ctx.elapsed_ns()

    # the forward pass is pure; all charges batch into one ledger merge
    raw = kernel.fs.read(staged_path, 0, None)
    pixels = len(raw) // 3
    label, confidence, macs = model.classify(item.image)
    activation_bytes = model.input_size * model.input_size * 8 * 4

    kb = kernel.batch()
    seq = kb.seq()
    # ~1 MB from the page cache (staged just before; hot in memory)
    seq.read(len(raw), cached=True)
    seq.cpu_execute(
        int(pixels * _DECODE_INSTR_PER_PIXEL),
        memory_references=pixels // 4,
        working_set_bytes=len(raw),
    )
    seq.mem_alloc(activation_bytes)
    seq.cpu_execute(
        int(macs * _INSTRUCTIONS_PER_MAC),
        memory_references=int(macs * _MEM_REFS_PER_MAC),
        working_set_bytes=activation_bytes,
    )
    kb.repeat(seq)
    kb.commit()

    return InferenceResult(
        index=item.index,
        label=label,
        confidence=confidence,
        template_class=item.template_class,
        macs=macs,
        elapsed_ns=kernel.ctx.elapsed_ns() - start,
    )


def stage_dataset(kernel: GuestKernel, dataset: ImageDataset) -> list[str]:
    """Write every image into the guest FS (upload side, not timed
    as part of inference)."""
    kernel.fs.makedirs("/data/images")
    paths = []
    for item in dataset:
        path = f"/data/images/img-{item.index:03d}.raw"
        kernel.fs.create(path)
        kernel.fs.write(path, item.image.tobytes())
        paths.append(path)
    return paths


def run_inference_workload(
    kernel: GuestKernel,
    model: MobileNetLite,
    dataset: ImageDataset,
) -> list[InferenceResult]:
    """The Fig. 3 unit: classify the whole dataset inside one VM."""
    paths = stage_dataset(kernel, dataset)
    return [
        classify_image(kernel, model, item, path)
        for item, path in zip(dataset, paths)
    ]
