"""A MobileNet-style image classifier.

The paper's model (MobileNetV1/V2 via TFLite) is a stack of
depthwise-separable convolution blocks; :class:`MobileNetLite` keeps
that architecture — standard conv stem, N depthwise+pointwise blocks
with ReLU6, global average pooling, dense classifier — at a reduced
width/resolution so the pure-numpy forward pass stays fast.

Weights are deterministic per seed (He-style scaled Gaussians), so
classifications are reproducible; the class templates in
:mod:`repro.workloads.ml.dataset` are built to be separable under the
model's first-layer statistics, making label agreement meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import WorkloadError
from repro.workloads.ml import tensor


@dataclass
class MobileNetLite:
    """Depthwise-separable CNN with deterministic weights.

    Parameters
    ----------
    input_size:
        Square input resolution fed to the stem.
    base_channels:
        Stem output channels; each block doubles up to ``max_channels``.
    num_blocks:
        Number of depthwise-separable blocks.
    num_classes:
        Classifier width.
    seed:
        Weight-initialisation seed.
    """

    input_size: int = 64
    base_channels: int = 8
    num_blocks: int = 4
    num_classes: int = 10
    seed: int = 0
    _weights: dict = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.input_size < 16:
            raise WorkloadError(f"input size too small: {self.input_size}")
        if self.num_blocks < 1:
            raise WorkloadError(f"need at least one block: {self.num_blocks}")
        rng = np.random.default_rng(self.seed)
        channels = self.base_channels
        self._weights["stem"] = self._he(rng, (3, 3, 3, channels))
        for block in range(self.num_blocks):
            out_channels = min(channels * 2, 64)
            self._weights[f"dw{block}"] = self._he(rng, (3, 3, channels))
            self._weights[f"pw{block}"] = self._he(rng, (channels, out_channels))
            channels = out_channels
        self._weights["fc_w"] = self._he(rng, (channels, self.num_classes))
        self._weights["fc_b"] = np.zeros(self.num_classes)
        self.feature_channels = channels

    @staticmethod
    def _he(rng: np.random.Generator, shape: tuple[int, ...]) -> np.ndarray:
        fan_in = int(np.prod(shape[:-1])) if len(shape) > 1 else shape[0]
        return rng.normal(0.0, np.sqrt(2.0 / fan_in), size=shape)

    def preprocess(self, image: np.ndarray) -> np.ndarray:
        """Resize (nearest) and normalise an HWC uint8 image to the stem size."""
        if image.ndim != 3 or image.shape[2] != 3:
            raise WorkloadError(f"expected HWC RGB image, got {image.shape}")
        rows = np.linspace(0, image.shape[0] - 1, self.input_size).astype(int)
        cols = np.linspace(0, image.shape[1] - 1, self.input_size).astype(int)
        resized = image[np.ix_(rows, cols)].astype(np.float64)
        return resized / 127.5 - 1.0

    def forward(self, image: np.ndarray) -> tuple[np.ndarray, int]:
        """Full forward pass; returns (probabilities, total MACs)."""
        x = self.preprocess(image)
        total_macs = 0
        x, macs = tensor.conv2d(x, self._weights["stem"], stride=2)
        total_macs += macs
        x = tensor.relu6(x)
        for block in range(self.num_blocks):
            stride = 2 if block % 2 == 1 else 1
            x, macs = tensor.depthwise_conv2d(
                x, self._weights[f"dw{block}"], stride=stride
            )
            total_macs += macs
            x = tensor.relu6(x)
            x, macs = tensor.pointwise_conv2d(x, self._weights[f"pw{block}"])
            total_macs += macs
            x = tensor.relu6(x)
        features, macs = tensor.global_avg_pool(x)
        total_macs += macs
        logits, macs = tensor.dense(
            features, self._weights["fc_w"], self._weights["fc_b"]
        )
        total_macs += macs
        return tensor.softmax(logits), total_macs

    def classify(self, image: np.ndarray) -> tuple[int, float, int]:
        """Top-1 classification: (label, confidence, MACs)."""
        probabilities, macs = self.forward(image)
        label = int(np.argmax(probabilities))
        return label, float(probabilities[label]), macs

    def parameter_count(self) -> int:
        """Total learnable parameters."""
        return int(sum(np.prod(w.shape) for w in self._weights.values()))
