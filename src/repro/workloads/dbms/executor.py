"""Expression evaluation and statement execution.

The executor runs parsed statements against the catalog.  Plans are
simple and SQLite-like:

- ``SELECT`` without FROM evaluates expressions directly;
- single-table queries use an **index path** when a WHERE conjunct is
  an equality or range on an indexed column, else a full scan;
- joins are nested loops, probing the inner table's index on the join
  column when one exists;
- GROUP BY/aggregates, ORDER BY, DISTINCT and LIMIT run as pipeline
  stages over the row stream.

Every row touched increments ``rows_touched`` on the executor so the
engine can charge per-row CPU costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import SqlExecutionError
from repro.workloads.dbms import ast_nodes as ast
from repro.workloads.dbms.values import (
    SqlValue,
    arithmetic,
    compare,
    is_truthy,
    sort_key,
)

if TYPE_CHECKING:   # pragma: no cover - import cycle guard
    from repro.workloads.dbms.engine import Database
    from repro.workloads.dbms.table import Table


@dataclass
class RowScope:
    """Column bindings for one logical row (possibly a join product)."""

    bindings: dict[str, dict[str, SqlValue]] = field(default_factory=dict)

    def bind(self, alias: str, table: "Table", row: tuple[SqlValue, ...]) -> None:
        self.bindings[alias] = {
            col.name: row[i] for i, col in enumerate(table.columns)
        }

    def lookup(self, ref: ast.ColumnRef) -> SqlValue:
        if ref.table is not None:
            try:
                return self.bindings[ref.table][ref.name]
            except KeyError:
                raise SqlExecutionError(f"unknown column {ref.display}") from None
        hits = [
            columns[ref.name]
            for columns in self.bindings.values()
            if ref.name in columns
        ]
        if not hits:
            raise SqlExecutionError(f"unknown column {ref.name!r}")
        if len(hits) > 1:
            raise SqlExecutionError(f"ambiguous column {ref.name!r}")
        return hits[0]


_EMPTY_SCOPE = RowScope()


def _like_match(text: str, pattern: str) -> bool:
    """SQL LIKE: ``%`` matches any run, ``_`` matches one character.

    Case-insensitive for ASCII, as in SQLite's default.
    """
    import re

    parts = []
    for ch in pattern:
        if ch == "%":
            parts.append(".*")
        elif ch == "_":
            parts.append(".")
        else:
            parts.append(re.escape(ch))
    return re.fullmatch("".join(parts), text, flags=re.IGNORECASE) is not None


def evaluate(expr: ast.Expression, scope: RowScope) -> SqlValue:
    """Evaluate a scalar expression in a row scope."""
    if isinstance(expr, ast.Literal):
        return expr.value
    if isinstance(expr, ast.ColumnRef):
        return scope.lookup(expr)
    if isinstance(expr, ast.UnaryOp):
        value = evaluate(expr.operand, scope)
        if expr.op == "-":
            return None if value is None else -value
        if expr.op == "NOT":
            if value is None:
                return None
            return 0 if is_truthy(value) else 1
        raise SqlExecutionError(f"unknown unary operator {expr.op!r}")
    if isinstance(expr, ast.IsNull):
        value = evaluate(expr.operand, scope)
        result = value is None
        return int(result != expr.negated)
    if isinstance(expr, ast.Like):
        value = evaluate(expr.operand, scope)
        pattern = evaluate(expr.pattern, scope)
        if value is None or pattern is None:
            return None
        matched = _like_match(str(value), str(pattern))
        return int(matched != expr.negated)
    if isinstance(expr, ast.InList):
        value = evaluate(expr.operand, scope)
        if value is None:
            return None
        saw_null = False
        for item in expr.items:
            candidate = evaluate(item, scope)
            if candidate is None:
                saw_null = True
                continue
            if compare(value, candidate) == 0:
                return int(not expr.negated)
        if saw_null:
            return None     # SQL three-valued logic: unknown membership
        return int(expr.negated)
    if isinstance(expr, ast.Between):
        value = evaluate(expr.operand, scope)
        low = evaluate(expr.low, scope)
        high = evaluate(expr.high, scope)
        if value is None or low is None or high is None:
            return None
        inside = compare(value, low) >= 0 and compare(value, high) <= 0
        return int(inside != expr.negated)
    if isinstance(expr, ast.BinaryOp):
        return _binary(expr, scope)
    if isinstance(expr, ast.FunctionCall):
        if expr.name in ast.AGGREGATE_FUNCTIONS:
            raise SqlExecutionError(
                f"aggregate {expr.name} used outside aggregation context"
            )
        value = evaluate(expr.argument, scope)
        if expr.name == "LENGTH":
            return None if value is None else len(str(value))
        if expr.name == "ABS":
            return None if value is None else abs(value)
        raise SqlExecutionError(f"unknown function {expr.name!r}")
    raise SqlExecutionError(f"cannot evaluate {expr!r}")


def _binary(expr: ast.BinaryOp, scope: RowScope) -> SqlValue:
    op = expr.op
    if op == "AND":
        left = evaluate(expr.left, scope)
        if left is not None and not is_truthy(left):
            return 0
        right = evaluate(expr.right, scope)
        if right is not None and not is_truthy(right):
            return 0
        if left is None or right is None:
            return None
        return 1
    if op == "OR":
        left = evaluate(expr.left, scope)
        if left is not None and is_truthy(left):
            return 1
        right = evaluate(expr.right, scope)
        if right is not None and is_truthy(right):
            return 1
        if left is None or right is None:
            return None
        return 0
    left = evaluate(expr.left, scope)
    right = evaluate(expr.right, scope)
    if op in ("=", "!=", "<", "<=", ">", ">="):
        result = compare(left, right)
        if result is None:
            return None
        return int({
            "=": result == 0,
            "!=": result != 0,
            "<": result < 0,
            "<=": result <= 0,
            ">": result > 0,
            ">=": result >= 0,
        }[op])
    return arithmetic(op, left, right)


# -- aggregates ------------------------------------------------------------

class _Accumulator:
    """State for one aggregate call over one group."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total: float = 0
        self.minimum: SqlValue = None
        self.maximum: SqlValue = None

    def feed(self, value: SqlValue) -> None:
        if self.name == "COUNT":
            if value is not None:
                self.count += 1
            return
        if value is None:
            return
        self.count += 1
        if self.name in ("SUM", "AVG"):
            self.total += value
        if self.name in ("MIN", "MAX"):
            if self.minimum is None or sort_key(value) < sort_key(self.minimum):
                self.minimum = value
            if self.maximum is None or sort_key(value) > sort_key(self.maximum):
                self.maximum = value

    def result(self) -> SqlValue:
        if self.name == "COUNT":
            return self.count
        if self.count == 0:
            return None
        if self.name == "SUM":
            return self.total
        if self.name == "AVG":
            return self.total / self.count
        if self.name == "MIN":
            return self.minimum
        if self.name == "MAX":
            return self.maximum
        raise SqlExecutionError(f"unknown aggregate {self.name!r}")


def _evaluate_with_aggregates(
    expr: ast.Expression,
    group_rows: list[RowScope],
) -> SqlValue:
    """Evaluate an expression over a group (aggregates consume the group)."""
    if isinstance(expr, ast.FunctionCall) and expr.name in ast.AGGREGATE_FUNCTIONS:
        acc = _Accumulator(expr.name)
        for scope in group_rows:
            if expr.argument is None:      # COUNT(*)
                acc.count += 1
            else:
                acc.feed(evaluate(expr.argument, scope))
        return acc.result()
    if isinstance(expr, ast.BinaryOp):
        return _binary_static(
            expr.op,
            _evaluate_with_aggregates(expr.left, group_rows),
            _evaluate_with_aggregates(expr.right, group_rows),
        )
    if isinstance(expr, ast.UnaryOp):
        value = _evaluate_with_aggregates(expr.operand, group_rows)
        if expr.op == "-":
            return None if value is None else -value
        return None if value is None else int(not is_truthy(value))
    # non-aggregate leaf: evaluate on the group's first row
    representative = group_rows[0] if group_rows else _EMPTY_SCOPE
    return evaluate(expr, representative)


def _binary_static(op: str, left: SqlValue, right: SqlValue) -> SqlValue:
    if op in ("=", "!=", "<", "<=", ">", ">="):
        result = compare(left, right)
        if result is None:
            return None
        return int({
            "=": result == 0, "!=": result != 0, "<": result < 0,
            "<=": result <= 0, ">": result > 0, ">=": result >= 0,
        }[op])
    if op in ("AND", "OR"):
        if left is None or right is None:
            return None
        truth = (is_truthy(left) and is_truthy(right)) if op == "AND" else (
            is_truthy(left) or is_truthy(right))
        return int(truth)
    return arithmetic(op, left, right)


# -- index-path analysis ---------------------------------------------------------

@dataclass(frozen=True)
class IndexPath:
    """A usable index access: equality or range on one column."""

    column: str
    equals: SqlValue | None = None
    low: SqlValue | None = None
    high: SqlValue | None = None
    include_low: bool = True
    include_high: bool = True


def _conjuncts(expr: ast.Expression) -> list[ast.Expression]:
    if isinstance(expr, ast.BinaryOp) and expr.op == "AND":
        return _conjuncts(expr.left) + _conjuncts(expr.right)
    return [expr]


def find_index_path(table: "Table", where: ast.Expression | None,
                    alias: str) -> IndexPath | None:
    """Choose an index access path for a WHERE clause, if any."""
    if where is None or not table.indexes:
        return None
    for conjunct in _conjuncts(where):
        if (isinstance(conjunct, ast.Between) and not conjunct.negated
                and isinstance(conjunct.operand, ast.ColumnRef)
                and isinstance(conjunct.low, ast.Literal)
                and isinstance(conjunct.high, ast.Literal)
                and conjunct.low.value is not None
                and conjunct.high.value is not None
                and (conjunct.operand.table is None
                     or conjunct.operand.table == alias)
                and conjunct.operand.name in table.indexes):
            return IndexPath(column=conjunct.operand.name,
                             low=conjunct.low.value,
                             high=conjunct.high.value)
        if not isinstance(conjunct, ast.BinaryOp):
            continue
        if conjunct.op not in ("=", "<", "<=", ">", ">="):
            continue
        column_side, literal_side, op = None, None, conjunct.op
        if (isinstance(conjunct.left, ast.ColumnRef)
                and isinstance(conjunct.right, ast.Literal)):
            column_side, literal_side = conjunct.left, conjunct.right
        elif (isinstance(conjunct.right, ast.ColumnRef)
                and isinstance(conjunct.left, ast.Literal)):
            column_side, literal_side = conjunct.right, conjunct.left
            op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
        if column_side is None:
            continue
        if column_side.table is not None and column_side.table != alias:
            continue
        if column_side.name not in table.indexes:
            continue
        value = literal_side.value
        if value is None:
            continue
        if op == "=":
            return IndexPath(column=column_side.name, equals=value)
        if op in ("<", "<="):
            return IndexPath(column=column_side.name, high=value,
                             include_high=(op == "<="))
        return IndexPath(column=column_side.name, low=value,
                         include_low=(op == ">="))
    return None


# -- statement execution ------------------------------------------------------------

@dataclass
class ExecResult:
    """Result of one statement."""

    columns: list[str]
    rows: list[tuple[SqlValue, ...]]
    rowcount: int = 0

    def scalar(self) -> SqlValue:
        """The single value of a 1x1 result."""
        if len(self.rows) != 1 or len(self.rows[0]) != 1:
            raise SqlExecutionError(
                f"expected a 1x1 result, got {len(self.rows)} rows"
            )
        return self.rows[0][0]


class Executor:
    """Executes statements against a database's catalog."""

    def __init__(self, db: "Database") -> None:
        self.db = db
        self.rows_touched = 0

    # -- SELECT ------------------------------------------------------------

    def _source_scopes(self, stmt: ast.Select):
        """Yield RowScopes for the FROM/JOIN product (post-WHERE for
        the index-path part, pre-WHERE otherwise)."""
        if stmt.table is None:
            yield RowScope()
            return
        table = self.db.table(stmt.table)
        alias = stmt.alias or stmt.table

        path = find_index_path(table, stmt.where, alias) if stmt.join is None else None
        if path is not None:
            if path.equals is not None:
                source = table.index_lookup(path.column, path.equals)
            else:
                source = table.index_range(
                    path.column, path.low, path.high,
                    include_low=path.include_low,
                    include_high=path.include_high,
                )
        else:
            source = table.scan()

        if stmt.join is None:
            for _, row in source:
                self.rows_touched += 1
                scope = RowScope()
                scope.bind(alias, table, row)
                yield scope
            return

        join_table = self.db.table(stmt.join.table)
        join_alias = stmt.join.alias or stmt.join.table
        join_column = self._join_probe_column(stmt.join.on, join_alias, join_table)

        for _, row in source:
            self.rows_touched += 1
            outer = RowScope()
            outer.bind(alias, table, row)
            if join_column is not None:
                probe_value = self._join_probe_value(
                    stmt.join.on, outer, join_alias
                )
                inner_rows = join_table.index_lookup(join_column, probe_value)
            else:
                inner_rows = join_table.scan()
            for _, inner in inner_rows:
                self.rows_touched += 1
                scope = RowScope(bindings=dict(outer.bindings))
                scope.bind(join_alias, join_table, inner)
                if is_truthy(evaluate(stmt.join.on, scope)):
                    yield scope

    def _join_probe_column(self, on: ast.Expression, join_alias: str,
                           join_table: "Table") -> str | None:
        """If the ON clause is `a.x = b.y` with b.y indexed, probe it."""
        if not (isinstance(on, ast.BinaryOp) and on.op == "="):
            return None
        for side in (on.left, on.right):
            if (isinstance(side, ast.ColumnRef) and side.table == join_alias
                    and side.name in join_table.indexes):
                return side.name
        return None

    def _join_probe_value(self, on: ast.Expression, outer: RowScope,
                          join_alias: str) -> SqlValue:
        assert isinstance(on, ast.BinaryOp)
        if (isinstance(on.left, ast.ColumnRef)
                and on.left.table == join_alias):
            return evaluate(on.right, outer)
        return evaluate(on.left, outer)

    def _expand_star(self, stmt: ast.Select) -> list[tuple[str, ast.Expression]]:
        """The output column list with * expanded."""
        outputs: list[tuple[str, ast.Expression]] = []
        for item in stmt.items:
            if not item.star:
                name = item.alias or _expression_name(item.expr)
                outputs.append((name, item.expr))
                continue
            if stmt.table is None:
                raise SqlExecutionError("SELECT * needs a FROM clause")
            table = self.db.table(stmt.table)
            alias = stmt.alias or stmt.table
            for col in table.columns:
                outputs.append(
                    (col.name, ast.ColumnRef(name=col.name, table=alias))
                )
            if stmt.join is not None:
                join_table = self.db.table(stmt.join.table)
                join_alias = stmt.join.alias or stmt.join.table
                for col in join_table.columns:
                    outputs.append(
                        (col.name, ast.ColumnRef(name=col.name, table=join_alias))
                    )
        return outputs

    def select(self, stmt: ast.Select) -> ExecResult:
        outputs = self._expand_star(stmt)
        is_aggregate = bool(stmt.group_by) or any(
            ast.contains_aggregate(expr) for _, expr in outputs
        )

        scopes = []
        for scope in self._source_scopes(stmt):
            if stmt.where is not None and not is_truthy(
                evaluate(stmt.where, scope)
            ):
                continue
            scopes.append(scope)

        if is_aggregate:
            rows = self._aggregate_rows(stmt, outputs, scopes)
        else:
            rows = [
                tuple(evaluate(expr, scope) for _, expr in outputs)
                for scope in scopes
            ]
            if stmt.order_by:
                rows = self._order(stmt, outputs, rows, scopes)

        if is_aggregate and stmt.order_by:
            rows = self._order_plain(stmt, outputs, rows)

        if stmt.distinct:
            seen = set()
            unique = []
            for row in rows:
                key = tuple(sort_key(v) for v in row)
                if key not in seen:
                    seen.add(key)
                    unique.append(row)
            rows = unique

        if stmt.limit is not None:
            rows = rows[: stmt.limit]

        return ExecResult(columns=[name for name, _ in outputs], rows=rows,
                          rowcount=len(rows))

    def _aggregate_rows(self, stmt, outputs, scopes):
        groups: dict[tuple, list[RowScope]] = {}
        if stmt.group_by:
            for scope in scopes:
                key = tuple(
                    sort_key(evaluate(expr, scope)) for expr in stmt.group_by
                )
                groups.setdefault(key, []).append(scope)
        else:
            groups[()] = scopes
        rows = []
        for group_scopes in groups.values():
            if stmt.having is not None:
                verdict = _evaluate_with_aggregates(stmt.having, group_scopes)
                if verdict is None or not is_truthy(verdict):
                    continue
            rows.append(tuple(
                _evaluate_with_aggregates(expr, group_scopes)
                for _, expr in outputs
            ))
        return rows

    def _order(self, stmt, outputs, rows, scopes):
        keyed = []
        for row, scope in zip(rows, scopes):
            keys = []
            for item in stmt.order_by:
                value = evaluate(item.expr, scope)
                keys.append((item.descending, sort_key(value)))
            keyed.append((keys, row))
        return _sorted_by_order_keys(keyed, stmt.order_by)

    def _order_plain(self, stmt, outputs, rows):
        """ORDER BY over aggregate output rows.

        The order expression must match an output column, either by
        alias/name (``ORDER BY n``) or structurally (``ORDER BY b % 7``
        when ``b % 7`` is selected) — frozen AST nodes compare by value.
        """
        name_to_pos = {name: i for i, (name, _) in enumerate(outputs)}
        expr_to_pos = {expr: i for i, (_, expr) in enumerate(outputs)}

        def position_of(order_expr) -> int:
            if (isinstance(order_expr, ast.ColumnRef)
                    and order_expr.name in name_to_pos):
                return name_to_pos[order_expr.name]
            if order_expr in expr_to_pos:
                return expr_to_pos[order_expr]
            raise SqlExecutionError(
                "ORDER BY on aggregates must reference output columns"
            )

        positions = [position_of(item.expr) for item in stmt.order_by]
        keyed = []
        for row in rows:
            keys = [
                (item.descending, sort_key(row[pos]))
                for item, pos in zip(stmt.order_by, positions)
            ]
            keyed.append((keys, row))
        return _sorted_by_order_keys(keyed, stmt.order_by)

    # -- DML -------------------------------------------------------------------

    def insert(self, stmt: ast.Insert) -> ExecResult:
        table = self.db.table(stmt.table)
        inserted = 0
        for value_tuple in stmt.rows:
            values = [evaluate(expr, _EMPTY_SCOPE) for expr in value_tuple]
            if stmt.columns is not None:
                if len(values) != len(stmt.columns):
                    raise SqlExecutionError(
                        f"{len(stmt.columns)} columns but {len(values)} values"
                    )
                full: list[SqlValue] = [None] * len(table.columns)
                for name, value in zip(stmt.columns, values):
                    if name not in table.column_index:
                        raise SqlExecutionError(
                            f"no column {name!r} in {table.name!r}"
                        )
                    full[table.column_index[name]] = value
                values = full
            rowid = table.insert_row(tuple(values))
            self.db.log_undo(("insert", table.name, rowid))
            inserted += 1
            self.rows_touched += 1
        return ExecResult(columns=[], rows=[], rowcount=inserted)

    def _matching_rowids(self, table: "Table", where: ast.Expression | None,
                         alias: str) -> list[int]:
        path = find_index_path(table, where, alias)
        if path is not None:
            if path.equals is not None:
                source = table.index_lookup(path.column, path.equals)
            else:
                source = table.index_range(
                    path.column, path.low, path.high,
                    include_low=path.include_low,
                    include_high=path.include_high,
                )
        else:
            source = table.scan()
        matches = []
        for rowid, row in source:
            self.rows_touched += 1
            scope = RowScope()
            scope.bind(alias, table, row)
            if where is None or is_truthy(evaluate(where, scope)):
                matches.append(rowid)
        return matches

    def update(self, stmt: ast.Update) -> ExecResult:
        table = self.db.table(stmt.table)
        for column, _ in stmt.assignments:
            if column not in table.column_index:
                raise SqlExecutionError(f"no column {column!r} in {table.name!r}")
        updated = 0
        for rowid in self._matching_rowids(table, stmt.where, stmt.table):
            row = table.rows.get(rowid)
            scope = RowScope()
            scope.bind(stmt.table, table, row)
            new_row = list(row)
            for column, expr in stmt.assignments:
                new_row[table.column_index[column]] = evaluate(expr, scope)
            old = table.update_row(rowid, tuple(new_row))
            self.db.log_undo(("update", table.name, rowid, old))
            updated += 1
        return ExecResult(columns=[], rows=[], rowcount=updated)

    def delete(self, stmt: ast.Delete) -> ExecResult:
        table = self.db.table(stmt.table)
        deleted = 0
        for rowid in self._matching_rowids(table, stmt.where, stmt.table):
            old = table.delete_row(rowid)
            self.db.log_undo(("delete", table.name, rowid, old))
            deleted += 1
        return ExecResult(columns=[], rows=[], rowcount=deleted)


def _sorted_by_order_keys(keyed, order_items):
    """Stable multi-key sort honouring per-key DESC flags."""
    for position in reversed(range(len(order_items))):
        descending = order_items[position].descending
        keyed.sort(key=lambda pair: pair[0][position][1], reverse=descending)
    return [row for _, row in keyed]


def _expression_name(expr: ast.Expression) -> str:
    if isinstance(expr, ast.ColumnRef):
        return expr.name
    if isinstance(expr, ast.FunctionCall):
        inner = "*" if expr.argument is None else _expression_name(expr.argument)
        return f"{expr.name}({inner})"
    if isinstance(expr, ast.Literal):
        return repr(expr.value)
    return "expr"
