"""B+tree for row and index storage.

Keys are opaque comparable tuples (the engine wraps SQL values with
:func:`repro.workloads.dbms.values.sort_key` to get a total order);
leaves are linked for range scans.  Insert splits nodes top-down;
delete removes from the leaf without rebalancing — lookups stay
correct and the tree stays sorted, trading a little balance for a lot
of simplicity (documented engine-level decision; speedtest's delete
mix doesn't degrade it meaningfully).
"""

from __future__ import annotations

import bisect
from collections.abc import Iterator
from dataclasses import dataclass, field
from typing import Any

from repro.errors import DbmsError


@dataclass
class _Leaf:
    keys: list[Any] = field(default_factory=list)
    values: list[Any] = field(default_factory=list)
    next: "_Leaf | None" = None


@dataclass
class _Internal:
    keys: list[Any] = field(default_factory=list)        # separators
    children: list["_Internal | _Leaf"] = field(default_factory=list)


class BPlusTree:
    """A B+tree mapping unique keys to values."""

    def __init__(self, order: int = 32) -> None:
        if order < 4:
            raise DbmsError(f"order must be >= 4, got {order}")
        self.order = order
        self.root: _Internal | _Leaf = _Leaf()
        self.size = 0
        self.node_touches = 0    # cost-accounting signal for the pager

    # -- navigation -------------------------------------------------------

    def _find_leaf(self, key: Any) -> tuple[_Leaf, list[_Internal]]:
        node = self.root
        path: list[_Internal] = []
        while isinstance(node, _Internal):
            self.node_touches += 1
            index = bisect.bisect_right(node.keys, key)
            path.append(node)
            node = node.children[index]
        self.node_touches += 1
        return node, path

    # -- operations -----------------------------------------------------------

    def get(self, key: Any, default: Any = None) -> Any:
        """Value for ``key`` or ``default``."""
        leaf, _ = self._find_leaf(key)
        index = bisect.bisect_left(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            return leaf.values[index]
        return default

    def __contains__(self, key: Any) -> bool:
        sentinel = object()
        return self.get(key, sentinel) is not sentinel

    def insert(self, key: Any, value: Any, replace: bool = False) -> None:
        """Insert a key; duplicate keys rejected unless ``replace``."""
        leaf, path = self._find_leaf(key)
        index = bisect.bisect_left(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            if not replace:
                raise DbmsError(f"duplicate key: {key!r}")
            leaf.values[index] = value
            return
        leaf.keys.insert(index, key)
        leaf.values.insert(index, value)
        self.size += 1
        if len(leaf.keys) > self.order:
            self._split(leaf, path)

    def _split(self, node: _Leaf | _Internal, path: list[_Internal]) -> None:
        mid = len(node.keys) // 2
        if isinstance(node, _Leaf):
            sibling = _Leaf(
                keys=node.keys[mid:],
                values=node.values[mid:],
                next=node.next,
            )
            del node.keys[mid:]
            del node.values[mid:]
            node.next = sibling
            separator = sibling.keys[0]
        else:
            separator = node.keys[mid]
            sibling = _Internal(
                keys=node.keys[mid + 1:],
                children=node.children[mid + 1:],
            )
            del node.keys[mid:]
            del node.children[mid + 1:]

        if not path:
            self.root = _Internal(keys=[separator], children=[node, sibling])
            return
        parent = path[-1]
        index = bisect.bisect_right(parent.keys, separator)
        parent.keys.insert(index, separator)
        parent.children.insert(index + 1, sibling)
        if len(parent.keys) > self.order:
            self._split(parent, path[:-1])

    def delete(self, key: Any) -> bool:
        """Remove a key; returns True if it was present."""
        leaf, _ = self._find_leaf(key)
        index = bisect.bisect_left(leaf.keys, key)
        if index >= len(leaf.keys) or leaf.keys[index] != key:
            return False
        del leaf.keys[index]
        del leaf.values[index]
        self.size -= 1
        return True

    # -- scans ---------------------------------------------------------------------

    def _first_leaf(self) -> _Leaf:
        node = self.root
        while isinstance(node, _Internal):
            self.node_touches += 1
            node = node.children[0]
        return node

    def items(self) -> Iterator[tuple[Any, Any]]:
        """All (key, value) pairs in key order."""
        leaf: _Leaf | None = self._first_leaf()
        while leaf is not None:
            self.node_touches += 1
            yield from zip(leaf.keys, leaf.values)
            leaf = leaf.next

    def range(self, low: Any = None, high: Any = None,
              include_low: bool = True,
              include_high: bool = True) -> Iterator[tuple[Any, Any]]:
        """(key, value) pairs with low <= key <= high (bounds optional)."""
        if low is None:
            leaf: _Leaf | None = self._first_leaf()
            start = 0
        else:
            leaf, _ = self._find_leaf(low)
            start = (bisect.bisect_left(leaf.keys, low) if include_low
                     else bisect.bisect_right(leaf.keys, low))
        while leaf is not None:
            self.node_touches += 1
            for index in range(start, len(leaf.keys)):
                key = leaf.keys[index]
                if high is not None:
                    if include_high:
                        if key > high:
                            return
                    elif key >= high:
                        return
                yield key, leaf.values[index]
            leaf = leaf.next
            start = 0

    def __len__(self) -> int:
        return self.size

    def depth(self) -> int:
        """Tree height (1 = just a leaf)."""
        node = self.root
        levels = 1
        while isinstance(node, _Internal):
            levels += 1
            node = node.children[0]
        return levels
