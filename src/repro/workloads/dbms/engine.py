"""The database facade with transaction and cost-hook support.

:class:`Database` owns the catalog, the pager and the undo log.
``execute(sql)`` parses, plans, runs and charges costs through a
:class:`DbCostHooks` implementation — the default is a no-op (pure
functional engine); :class:`KernelCostHooks` maps parsing to CPU
work, row touches to per-row CPU work, and pager traffic to disk I/O
on a guest kernel, which is how the speedtest runs inside a VM.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SqlExecutionError
from repro.guestos.kernel import GuestKernel
from repro.workloads.dbms import ast_nodes as ast
from repro.workloads.dbms.executor import ExecResult, Executor
from repro.workloads.dbms.pager import PAGE_SIZE, Pager
from repro.workloads.dbms.parser import parse
from repro.workloads.dbms.table import Table


class DbCostHooks:
    """Cost callbacks; the base class is a no-op for pure use."""

    def on_parse(self, sql_length: int) -> None:
        """Called once per statement with the SQL text length."""

    def on_rows(self, count: int) -> None:
        """Called with the number of rows touched by a statement."""

    def on_page_reads(self, count: int) -> None:
        """Called with pages read from storage (cache misses)."""

    def on_page_writes(self, count: int) -> None:
        """Called with pages flushed (journal + data) at commit."""


@dataclass
class KernelCostHooks(DbCostHooks):
    """Maps engine work onto a guest kernel's execution context.

    Cost constants approximate SQLite's profile: ~2k instructions per
    row visited (decode + compare + copy) and page-sized disk
    transfers for storage traffic.
    """

    kernel: GuestKernel
    instructions_per_row: int = 2_000
    instructions_per_sql_byte: int = 220

    def on_parse(self, sql_length: int) -> None:
        self.kernel.ctx.cpu_execute(sql_length * self.instructions_per_sql_byte)

    def on_rows(self, count: int) -> None:
        if count > 0:
            self.kernel.ctx.cpu_execute(
                count * self.instructions_per_row,
                memory_references=count * 40,
                working_set_bytes=count * 120,
            )

    def on_page_reads(self, count: int) -> None:
        if count > 0:
            self.kernel.ctx.disk_read(count * PAGE_SIZE)

    def on_page_writes(self, count: int) -> None:
        if count > 0:
            self.kernel.ctx.disk_write(count * PAGE_SIZE)


class Database:
    """An in-memory relational database with SQLite-flavoured SQL."""

    def __init__(self, hooks: DbCostHooks | None = None) -> None:
        self.hooks = hooks if hooks is not None else DbCostHooks()
        self.pager = Pager()
        self.tables: dict[str, Table] = {}
        self._next_table_id = 1
        self.in_transaction = False
        self._undo: list[tuple] = []
        self.statements_executed = 0

    # -- catalog -----------------------------------------------------------

    def table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise SqlExecutionError(f"no such table: {name}") from None

    def log_undo(self, entry: tuple) -> None:
        """Record an undoable mutation while a transaction is open."""
        if self.in_transaction:
            self._undo.append(entry)

    # -- execution -------------------------------------------------------------

    def execute(self, sql: str) -> ExecResult:
        """Parse and run one statement, charging cost hooks."""
        self.statements_executed += 1
        self.hooks.on_parse(len(sql))
        statement = parse(sql)
        reads_before = self.pager.stats.reads

        executor = Executor(self)
        result = self._dispatch(statement, executor)

        self.hooks.on_rows(executor.rows_touched)
        self.hooks.on_page_reads(self.pager.stats.reads - reads_before)
        if not self.in_transaction:
            flushed = self.pager.commit()
            self.hooks.on_page_writes(flushed)
            self._undo.clear()
        return result

    def executemany(self, statements: list[str]) -> list[ExecResult]:
        """Run several statements in order."""
        return [self.execute(sql) for sql in statements]

    def _dispatch(self, statement: ast.Statement,
                  executor: Executor) -> ExecResult:
        if isinstance(statement, ast.Select):
            return executor.select(statement)
        if isinstance(statement, ast.Insert):
            return executor.insert(statement)
        if isinstance(statement, ast.Update):
            return executor.update(statement)
        if isinstance(statement, ast.Delete):
            return executor.delete(statement)
        if isinstance(statement, ast.CreateTable):
            return self._create_table(statement)
        if isinstance(statement, ast.CreateIndex):
            return self._create_index(statement)
        if isinstance(statement, ast.DropTable):
            return self._drop_table(statement)
        if isinstance(statement, ast.Begin):
            return self._begin()
        if isinstance(statement, ast.Commit):
            return self._commit()
        if isinstance(statement, ast.Rollback):
            return self._rollback()
        raise SqlExecutionError(f"unhandled statement {statement!r}")

    # -- DDL ---------------------------------------------------------------------

    def _create_table(self, statement: ast.CreateTable) -> ExecResult:
        if statement.table in self.tables:
            if statement.if_not_exists:
                return ExecResult(columns=[], rows=[])
            raise SqlExecutionError(f"table {statement.table!r} already exists")
        self.tables[statement.table] = Table(
            name=statement.table,
            columns=statement.columns,
            pager=self.pager,
            table_id=self._next_table_id,
        )
        self._next_table_id += 1
        self.pager.write(self._next_table_id * 1_000_000)   # schema page
        return ExecResult(columns=[], rows=[])

    def _create_index(self, statement: ast.CreateIndex) -> ExecResult:
        table = self.table(statement.table)
        table.create_index(statement.index, statement.column,
                           unique=statement.unique)
        # building the index touches every row
        executor_rows = table.row_count()
        self.hooks.on_rows(executor_rows)
        return ExecResult(columns=[], rows=[])

    def _drop_table(self, statement: ast.DropTable) -> ExecResult:
        if statement.table not in self.tables:
            if statement.if_exists:
                return ExecResult(columns=[], rows=[])
            raise SqlExecutionError(f"no such table: {statement.table}")
        del self.tables[statement.table]
        return ExecResult(columns=[], rows=[])

    # -- transactions ---------------------------------------------------------------

    def _begin(self) -> ExecResult:
        if self.in_transaction:
            raise SqlExecutionError("already in a transaction")
        self.in_transaction = True
        self._undo.clear()
        return ExecResult(columns=[], rows=[])

    def _commit(self) -> ExecResult:
        if not self.in_transaction:
            raise SqlExecutionError("no transaction to commit")
        self.in_transaction = False
        self._undo.clear()
        flushed = self.pager.commit()
        self.hooks.on_page_writes(flushed)
        return ExecResult(columns=[], rows=[])

    def _rollback(self) -> ExecResult:
        if not self.in_transaction:
            raise SqlExecutionError("no transaction to roll back")
        self.in_transaction = False
        for entry in reversed(self._undo):
            kind, table_name = entry[0], entry[1]
            table = self.tables.get(table_name)
            if table is None:
                continue
            if kind == "insert":
                table.delete_row(entry[2])
            elif kind == "delete":
                table.insert_row(entry[3], rowid=entry[2])
            elif kind == "update":
                table.update_row(entry[2], entry[3])
        self._undo.clear()
        self.pager.rollback()
        return ExecResult(columns=[], rows=[])
