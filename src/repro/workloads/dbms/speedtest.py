"""speedtest1-style DBMS stress suite.

SQLite's ``speedtest1.c`` runs a numbered series of tests ("100 —
50000 INSERTs into table with no index", "142 — ...") scaled by a
relative size knob (default 100).  This module mirrors the structure
with a representative test mix over the mini engine:

===  =========================================================
id   test
===  =========================================================
100  INSERTs into table with no index (autocommit)
110  batched INSERTs into table with no index (one transaction)
120  batched INSERTs into table with an index
130  SELECTs with WHERE on an unindexed column (full scans)
140  SELECTs with WHERE on an indexed column
142  SELECTs with LIKE on a text column (full scans)
145  SELECTs with aggregate + GROUP BY
150  CREATE INDEX on a populated table
160  UPDATEs via the index
170  UPDATEs via full scans
180  two-table JOIN with an indexed inner column
190  DELETEs via the index, then table DROP
230  UPDATEs with BETWEEN ranges via the primary key
240  SELECTs with ORDER BY on an unindexed column
250  full-scan COUNT with an OR of predicates
260  DISTINCT + GROUP BY with HAVING
===  =========================================================

Each test reports its virtual elapsed time when run under kernel
hooks; the Fig. "DBMS" harness compares secure vs. normal per test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import DbmsError
from repro.workloads.dbms.engine import Database

#: speedtest1's default relative test size.
DEFAULT_SIZE = 100


@dataclass(frozen=True)
class SpeedtestResult:
    """Outcome of one numbered test."""

    test_id: int
    name: str
    statements: int
    rows_out: int
    elapsed_ns: float


def _names(i: int) -> str:
    consonants = "bcdfghjklmnpqrstvwz"
    vowels = "aeiou"
    return "".join(
        consonants[(i // (5 ** k)) % len(consonants)] + vowels[(i // (3 ** k)) % 5]
        for k in range(3)
    )


class Speedtest:
    """Runs the numbered test mix against one database."""

    def __init__(self, db: Database, size: int = DEFAULT_SIZE,
                 clock: Callable[[], float] | None = None) -> None:
        if size < 1:
            raise DbmsError(f"size must be >= 1, got {size}")
        self.db = db
        self.size = size
        self.n = size * 5          # base row count, speedtest1-style scaling
        self._clock = clock if clock is not None else (lambda: 0.0)
        self.results: list[SpeedtestResult] = []

    def _run(self, test_id: int, name: str, body: Callable[[], tuple[int, int]]) -> None:
        start = self._clock()
        statements, rows = body()
        self.results.append(SpeedtestResult(
            test_id=test_id,
            name=name,
            statements=statements,
            rows_out=rows,
            elapsed_ns=self._clock() - start,
        ))

    # -- the tests -------------------------------------------------------

    def test_100_inserts_no_index(self) -> None:
        def body():
            self.db.execute(
                "CREATE TABLE t1 (a INTEGER, b INTEGER, c TEXT)"
            )
            for i in range(self.n):
                self.db.execute(
                    f"INSERT INTO t1 VALUES ({i}, {(i * 7919) % self.n}, "
                    f"'{_names(i)}')"
                )
            return self.n + 1, 0
        self._run(100, f"{self.n} INSERTs into table with no index", body)

    def test_110_batched_inserts(self) -> None:
        def body():
            self.db.execute("CREATE TABLE t2 (a INTEGER, b INTEGER, c TEXT)")
            self.db.execute("BEGIN")
            for i in range(self.n):
                self.db.execute(
                    f"INSERT INTO t2 VALUES ({i}, {(i * 104729) % self.n}, "
                    f"'{_names(i)}')"
                )
            self.db.execute("COMMIT")
            return self.n + 3, 0
        self._run(110, f"{self.n} batched INSERTs (one transaction)", body)

    def test_120_inserts_with_index(self) -> None:
        def body():
            self.db.execute(
                "CREATE TABLE t3 (a INTEGER PRIMARY KEY, b INTEGER, c TEXT)"
            )
            self.db.execute("CREATE INDEX t3b ON t3 (b)")
            self.db.execute("BEGIN")
            for i in range(self.n):
                self.db.execute(
                    f"INSERT INTO t3 VALUES ({i}, {(i * 31) % self.n}, "
                    f"'{_names(i)}')"
                )
            self.db.execute("COMMIT")
            return self.n + 4, 0
        self._run(120, f"{self.n} INSERTs into indexed table", body)

    def test_130_selects_unindexed(self) -> None:
        queries = max(1, self.size // 4)

        def body():
            rows = 0
            for q in range(queries):
                low = (q * 17) % self.n
                result = self.db.execute(
                    f"SELECT COUNT(*), AVG(b) FROM t1 "
                    f"WHERE b > {low} AND b < {low + self.n // 10}"
                )
                rows += result.rowcount
            return queries, rows
        self._run(130, f"{queries} SELECTs on unindexed column (scans)", body)

    def test_140_selects_indexed(self) -> None:
        queries = self.size

        def body():
            rows = 0
            for q in range(queries):
                rows += self.db.execute(
                    f"SELECT a, c FROM t3 WHERE b = {(q * 13) % self.n}"
                ).rowcount
            return queries, rows
        self._run(140, f"{queries} SELECTs via index", body)

    def test_145_group_by(self) -> None:
        def body():
            result = self.db.execute(
                "SELECT b % 10 AS bucket, COUNT(*), SUM(a) FROM t1 "
                "GROUP BY b % 10 ORDER BY bucket"
            )
            return 1, result.rowcount
        self._run(145, "aggregate with GROUP BY over full table", body)

    def test_150_create_index(self) -> None:
        def body():
            self.db.execute("CREATE INDEX t1b ON t1 (b)")
            return 1, 0
        self._run(150, "CREATE INDEX on populated table", body)

    def test_160_updates_indexed(self) -> None:
        updates = self.size

        def body():
            for u in range(updates):
                self.db.execute(
                    f"UPDATE t3 SET c = 'upd{u}' WHERE b = {(u * 11) % self.n}"
                )
            return updates, 0
        self._run(160, f"{updates} UPDATEs via index", body)

    def test_170_updates_scan(self) -> None:
        updates = max(1, self.size // 10)

        def body():
            for u in range(updates):
                low = (u * 29) % self.n
                self.db.execute(
                    f"UPDATE t2 SET b = b + 1 "
                    f"WHERE a >= {low} AND a < {low + self.n // 20}"
                )
            return updates, 0
        self._run(170, f"{updates} UPDATEs via full scans", body)

    def test_180_join(self) -> None:
        def body():
            result = self.db.execute(
                "SELECT COUNT(*) FROM t1 JOIN t3 ON t1.a = t3.a "
                "WHERE t1.b < " + str(self.n // 2)
            )
            return 1, result.rowcount
        self._run(180, "two-table JOIN on indexed column", body)

    def test_142_selects_like(self) -> None:
        queries = max(1, self.size // 5)

        def body():
            rows = 0
            for q in range(queries):
                prefix = "bcdfghjklmnpqrstvwz"[q % 19]
                rows += self.db.execute(
                    f"SELECT COUNT(*) FROM t1 WHERE c LIKE '{prefix}%'"
                ).rowcount
            return queries, rows
        self._run(142, f"{queries} SELECTs with LIKE (scans)", body)

    def test_230_updates_between(self) -> None:
        updates = max(1, self.size // 10)

        def body():
            for u in range(updates):
                low = (u * 37) % self.n
                self.db.execute(
                    f"UPDATE t3 SET b = b + 1 WHERE a BETWEEN {low} "
                    f"AND {low + self.n // 25}"
                )
            return updates, 0
        self._run(230, f"{updates} UPDATEs with BETWEEN via primary key",
                  body)

    def test_240_order_by(self) -> None:
        def body():
            result = self.db.execute(
                "SELECT a, c FROM t1 ORDER BY c, a DESC LIMIT 50"
            )
            return 1, result.rowcount
        self._run(240, "ORDER BY on an unindexed text column", body)

    def test_250_scan_count_or(self) -> None:
        def body():
            result = self.db.execute(
                f"SELECT COUNT(*) FROM t1 WHERE b < {self.n // 10} "
                f"OR b > {self.n - self.n // 10} OR c LIKE 'z%'"
            )
            return 1, result.rowcount
        self._run(250, "full-scan COUNT with OR of predicates", body)

    def test_260_distinct_having(self) -> None:
        def body():
            result = self.db.execute(
                "SELECT DISTINCT b % 7, COUNT(*) FROM t1 GROUP BY b % 7 "
                "HAVING COUNT(*) > 1 ORDER BY b % 7"
            )
            return 1, result.rowcount
        self._run(260, "DISTINCT + GROUP BY with HAVING", body)

    def test_190_deletes_and_drop(self) -> None:
        deletes = self.size

        def body():
            for d in range(deletes):
                self.db.execute(
                    f"DELETE FROM t3 WHERE b = {(d * 7) % self.n}"
                )
            self.db.execute("DROP TABLE t2")
            return deletes + 1, 0
        self._run(190, f"{deletes} DELETEs via index + DROP TABLE", body)

    def run_all(self) -> list[SpeedtestResult]:
        """The full numbered sequence, in order."""
        self.test_100_inserts_no_index()
        self.test_110_batched_inserts()
        self.test_120_inserts_with_index()
        self.test_130_selects_unindexed()
        self.test_140_selects_indexed()
        self.test_142_selects_like()
        self.test_145_group_by()
        self.test_150_create_index()
        self.test_160_updates_indexed()
        self.test_170_updates_scan()
        self.test_180_join()
        self.test_230_updates_between()
        self.test_240_order_by()
        self.test_250_scan_count_or()
        self.test_260_distinct_having()
        self.test_190_deletes_and_drop()
        return self.results


def run_speedtest(db: Database, size: int = DEFAULT_SIZE,
                  clock: Callable[[], float] | None = None) -> list[SpeedtestResult]:
    """Run the whole suite against ``db`` and return per-test results."""
    return Speedtest(db, size=size, clock=clock).run_all()
