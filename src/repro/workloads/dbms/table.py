"""Table storage: rows in a B+tree, secondary indexes, page mapping.

A table keeps its rows in a rowid-keyed B+tree (SQLite-style) and
maintains one B+tree per index keyed by ``(sort_key(value), rowid)``.
All mutations funnel through :meth:`Table.insert_row`,
:meth:`Table.delete_row` and :meth:`Table.update_row`, which keep the
indexes consistent and report page traffic to the pager — the same
three primitives the transaction undo log replays in reverse.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SqlExecutionError
from repro.workloads.dbms.ast_nodes import ColumnDef
from repro.workloads.dbms.btree import BPlusTree
from repro.workloads.dbms.pager import PAGE_SIZE, Pager
from repro.workloads.dbms.values import (
    SqlValue,
    apply_affinity,
    row_payload_bytes,
    sort_key,
)


@dataclass
class Index:
    """A secondary index over one column."""

    name: str
    column: str
    unique: bool = False
    tree: BPlusTree = field(default_factory=BPlusTree)

    def key_for(self, value: SqlValue, rowid: int) -> tuple:
        return (sort_key(value), rowid)


class Table:
    """One table: schema, row storage, indexes."""

    def __init__(self, name: str, columns: tuple[ColumnDef, ...],
                 pager: Pager, table_id: int) -> None:
        if not columns:
            raise SqlExecutionError(f"table {name!r} needs at least one column")
        names = [col.name for col in columns]
        if len(set(names)) != len(names):
            raise SqlExecutionError(f"duplicate column names in {name!r}")
        self.name = name
        self.columns = columns
        self.column_index = {col.name: i for i, col in enumerate(columns)}
        self.rows = BPlusTree()
        self.indexes: dict[str, Index] = {}
        self.next_rowid = 1
        self.pager = pager
        self.table_id = table_id
        self._row_bytes_estimate = 64
        primary = [col for col in columns if col.primary_key]
        if primary:
            self.create_index(f"pk_{name}", primary[0].name, unique=True)

    # -- helpers ------------------------------------------------------------

    def _page_of(self, rowid: int) -> int:
        rows_per_page = max(1, PAGE_SIZE // self._row_bytes_estimate)
        return self.table_id * 1_000_000 + rowid // rows_per_page

    def coerce(self, raw: tuple[SqlValue, ...]) -> tuple[SqlValue, ...]:
        """Apply column affinities to a full-width row."""
        if len(raw) != len(self.columns):
            raise SqlExecutionError(
                f"table {self.name!r} has {len(self.columns)} columns, "
                f"got {len(raw)} values"
            )
        return tuple(
            apply_affinity(value, col.affinity)
            for value, col in zip(raw, self.columns)
        )

    def value_of(self, row: tuple[SqlValue, ...], column: str) -> SqlValue:
        try:
            return row[self.column_index[column]]
        except KeyError:
            raise SqlExecutionError(
                f"no column {column!r} in table {self.name!r}"
            ) from None

    # -- indexes ----------------------------------------------------------------

    def create_index(self, name: str, column: str, unique: bool = False) -> Index:
        """Build an index over existing rows."""
        if column not in self.column_index:
            raise SqlExecutionError(
                f"no column {column!r} in table {self.name!r}"
            )
        if column in self.indexes:
            raise SqlExecutionError(
                f"column {column!r} of {self.name!r} is already indexed"
            )
        index = Index(name=name, column=column, unique=unique)
        for rowid, row in self.rows.items():
            self._index_insert(index, self.value_of(row, column), rowid)
        self.indexes[column] = index
        return index

    def _index_insert(self, index: Index, value: SqlValue, rowid: int) -> None:
        if value is None:
            return   # NULLs are not indexed (and never violate UNIQUE)
        if index.unique:
            for _, existing in index.tree.range(
                (sort_key(value), 0), (sort_key(value), 2 ** 62)
            ):
                raise SqlExecutionError(
                    f"UNIQUE constraint failed: {self.name}.{index.column} "
                    f"= {value!r} (row {existing})"
                )
        index.tree.insert(index.key_for(value, rowid), rowid)

    def _index_delete(self, index: Index, value: SqlValue, rowid: int) -> None:
        if value is None:
            return
        index.tree.delete(index.key_for(value, rowid))

    # -- mutations ------------------------------------------------------------------

    def insert_row(self, raw: tuple[SqlValue, ...],
                   rowid: int | None = None) -> int:
        """Insert a coerced row; returns its rowid."""
        row = self.coerce(raw)
        if rowid is None:
            rowid = self.next_rowid
        self.next_rowid = max(self.next_rowid, rowid + 1)
        for index in self.indexes.values():
            self._index_insert(index, self.value_of(row, index.column), rowid)
        self.rows.insert(rowid, row)
        self._row_bytes_estimate = max(16, row_payload_bytes(row))
        self.pager.write(self._page_of(rowid))
        return rowid

    def delete_row(self, rowid: int) -> tuple[SqlValue, ...]:
        """Delete by rowid; returns the removed row."""
        row = self.rows.get(rowid)
        if row is None:
            raise SqlExecutionError(f"no row {rowid} in {self.name!r}")
        for index in self.indexes.values():
            self._index_delete(index, self.value_of(row, index.column), rowid)
        self.rows.delete(rowid)
        self.pager.write(self._page_of(rowid))
        return row

    def update_row(self, rowid: int,
                   new_row: tuple[SqlValue, ...]) -> tuple[SqlValue, ...]:
        """Replace a row in place; returns the old row."""
        old = self.rows.get(rowid)
        if old is None:
            raise SqlExecutionError(f"no row {rowid} in {self.name!r}")
        row = self.coerce(new_row)
        for index in self.indexes.values():
            old_value = self.value_of(old, index.column)
            new_value = self.value_of(row, index.column)
            if sort_key(old_value) != sort_key(new_value):
                self._index_delete(index, old_value, rowid)
                self._index_insert(index, new_value, rowid)
        self.rows.insert(rowid, row, replace=True)
        self.pager.write(self._page_of(rowid))
        return old

    # -- reads -----------------------------------------------------------------------

    def scan(self):
        """All (rowid, row) pairs, charging page reads."""
        last_page = None
        for rowid, row in self.rows.items():
            page = self._page_of(rowid)
            if page != last_page:
                self.pager.read(page)
                last_page = page
            yield rowid, row

    def fetch(self, rowid: int) -> tuple[SqlValue, ...] | None:
        """One row by rowid, charging a page read."""
        row = self.rows.get(rowid)
        if row is not None:
            self.pager.read(self._page_of(rowid))
        return row

    def index_lookup(self, column: str, value: SqlValue):
        """(rowid, row) pairs where ``column == value`` via the index."""
        index = self.indexes[column]
        low = (sort_key(value), 0)
        high = (sort_key(value), 2 ** 62)
        for _, rowid in index.tree.range(low, high):
            row = self.fetch(rowid)
            if row is not None:
                yield rowid, row

    def index_range(self, column: str, low: SqlValue | None,
                    high: SqlValue | None, include_low: bool = True,
                    include_high: bool = True):
        """(rowid, row) pairs with the column in [low, high]."""
        index = self.indexes[column]
        low_key = None if low is None else (sort_key(low), 0 if include_low else 2 ** 62)
        high_key = None if high is None else (sort_key(high), 2 ** 62 if include_high else 0)
        for _, rowid in index.tree.range(low_key, high_key,
                                         include_low=include_low,
                                         include_high=include_high):
            row = self.fetch(rowid)
            if row is not None:
                yield rowid, row

    def row_count(self) -> int:
        return len(self.rows)
