"""SQL value semantics.

Values are plain Python objects (``None``, ``int``, ``float``,
``str``); this module centralises the SQL-flavoured rules: NULL
propagation in comparisons and arithmetic, type affinity on insert,
and a total sort order (NULL < numbers < text) used by ORDER BY and
index keys — the same ordering SQLite uses.
"""

from __future__ import annotations

from typing import Any

from repro.errors import SqlExecutionError

SqlValue = None | int | float | str

AFFINITIES = ("INTEGER", "REAL", "TEXT")


def apply_affinity(value: SqlValue, affinity: str) -> SqlValue:
    """Coerce an inserted value to the column's declared type."""
    if value is None:
        return None
    if affinity == "INTEGER":
        try:
            return int(value)
        except (TypeError, ValueError):
            raise SqlExecutionError(f"cannot store {value!r} in INTEGER column") from None
    if affinity == "REAL":
        try:
            return float(value)
        except (TypeError, ValueError):
            raise SqlExecutionError(f"cannot store {value!r} in REAL column") from None
    if affinity == "TEXT":
        return str(value)
    raise SqlExecutionError(f"unknown affinity {affinity!r}")


def _type_rank(value: SqlValue) -> int:
    if value is None:
        return 0
    if isinstance(value, bool):          # guard: bools are ints in Python
        return 1
    if isinstance(value, (int, float)):
        return 1
    return 2


def sort_key(value: SqlValue) -> tuple[int, Any]:
    """A total-order key: NULL < numeric < text."""
    rank = _type_rank(value)
    if rank == 0:
        return (0, 0)
    return (rank, value)


def compare(left: SqlValue, right: SqlValue) -> int | None:
    """Three-way compare with SQL NULL semantics.

    Returns -1/0/1, or ``None`` when either side is NULL (comparisons
    with NULL are neither true nor false).
    """
    if left is None or right is None:
        return None
    lk, rk = sort_key(left), sort_key(right)
    if lk < rk:
        return -1
    if lk > rk:
        return 1
    return 0


def is_truthy(value: SqlValue) -> bool:
    """SQL WHERE truthiness: NULL and 0 are not true."""
    if value is None:
        return False
    if isinstance(value, str):
        return bool(value)
    return value != 0


def arithmetic(op: str, left: SqlValue, right: SqlValue) -> SqlValue:
    """NULL-propagating arithmetic."""
    if left is None or right is None:
        return None
    try:
        if op == "+":
            if isinstance(left, str) or isinstance(right, str):
                raise SqlExecutionError("cannot add text values (use ||)")
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                return None          # SQLite yields NULL on division by zero
            result = left / right
            if isinstance(left, int) and isinstance(right, int):
                return int(left / right)
            return result
        if op == "%":
            if right == 0:
                return None
            return left % right
        if op == "||":
            return f"{left}{right}"
    except TypeError:
        raise SqlExecutionError(
            f"type error: {left!r} {op} {right!r}"
        ) from None
    raise SqlExecutionError(f"unknown arithmetic operator {op!r}")


def row_payload_bytes(row: tuple[SqlValue, ...]) -> int:
    """Approximate on-disk size of a row (for pager accounting)."""
    total = 8   # header
    for value in row:
        if value is None:
            total += 1
        elif isinstance(value, int):
            total += 8
        elif isinstance(value, float):
            total += 8
        else:
            total += 2 + len(str(value).encode())
    return total
