"""Recursive-descent SQL parser.

Grammar (informal)::

    statement  := create_table | create_index | drop_table | insert
                | select | update | delete | BEGIN | COMMIT | ROLLBACK
    expr       := or_expr
    or_expr    := and_expr (OR and_expr)*
    and_expr   := not_expr (AND not_expr)*
    not_expr   := NOT not_expr | comparison
    comparison := additive ((= != < <= > >=) additive | IS [NOT] NULL)?
    additive   := term ((+ - ||) term)*
    term       := factor ((* / %) factor)*
    factor     := - factor | literal | column | function | ( expr )
"""

from __future__ import annotations

from repro.errors import SqlSyntaxError
from repro.workloads.dbms import ast_nodes as ast
from repro.workloads.dbms.ast_nodes import Expression
from repro.workloads.dbms.tokenizer import Token, TokenType, tokenize

_COMPARISON_OPS = ("=", "!=", "<", "<=", ">", ">=")
_FUNCTIONS = ast.AGGREGATE_FUNCTIONS | ast.SCALAR_FUNCTIONS


class Parser:
    """Parses one statement from a token stream."""

    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.index = 0

    # -- token plumbing --------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.current
        if token.type is not TokenType.EOF:
            self.index += 1
        return token

    def accept(self, type_: TokenType, value: str | None = None) -> Token | None:
        if self.current.matches(type_, value):
            return self.advance()
        return None

    def expect(self, type_: TokenType, value: str | None = None) -> Token:
        token = self.accept(type_, value)
        if token is None:
            want = value if value is not None else type_.value
            raise SqlSyntaxError(
                f"expected {want!r}, got {self.current.value!r} "
                f"at position {self.current.position}"
            )
        return token

    def accept_keyword(self, *words: str) -> str | None:
        for word in words:
            if self.accept(TokenType.KEYWORD, word):
                return word
        return None

    def expect_ident(self) -> str:
        token = self.current
        # allow non-reserved use of type keywords as identifiers is NOT
        # supported: identifiers must be plain IDENT tokens.
        if token.type is not TokenType.IDENT:
            raise SqlSyntaxError(
                f"expected identifier, got {token.value!r} at {token.position}"
            )
        return self.advance().value

    # -- statement dispatch -------------------------------------------------

    def parse_statement(self) -> ast.Statement:
        if self.accept(TokenType.KEYWORD, "CREATE"):
            if self.current.matches(TokenType.KEYWORD, "TABLE"):
                return self._create_table()
            return self._create_index()
        if self.accept(TokenType.KEYWORD, "DROP"):
            return self._drop_table()
        if self.accept(TokenType.KEYWORD, "INSERT"):
            return self._insert()
        if self.accept(TokenType.KEYWORD, "SELECT"):
            return self._select()
        if self.accept(TokenType.KEYWORD, "UPDATE"):
            return self._update()
        if self.accept(TokenType.KEYWORD, "DELETE"):
            return self._delete()
        if self.accept(TokenType.KEYWORD, "BEGIN"):
            return ast.Begin()
        if self.accept(TokenType.KEYWORD, "COMMIT"):
            return ast.Commit()
        if self.accept(TokenType.KEYWORD, "ROLLBACK"):
            return ast.Rollback()
        raise SqlSyntaxError(
            f"unsupported statement starting with {self.current.value!r}"
        )

    def finish(self) -> None:
        self.accept(TokenType.OP, ";")
        if self.current.type is not TokenType.EOF:
            raise SqlSyntaxError(
                f"trailing tokens starting at {self.current.value!r} "
                f"(position {self.current.position})"
            )

    # -- DDL ------------------------------------------------------------------

    def _create_table(self) -> ast.CreateTable:
        self.expect(TokenType.KEYWORD, "TABLE")
        if_not_exists = False
        if self.accept(TokenType.KEYWORD, "IF"):
            self.expect(TokenType.KEYWORD, "NOT")
            self.expect(TokenType.KEYWORD, "EXISTS")
            if_not_exists = True
        table = self.expect_ident()
        self.expect(TokenType.OP, "(")
        columns = []
        while True:
            name = self.expect_ident()
            affinity = self.accept_keyword("INTEGER", "REAL", "TEXT")
            if affinity is None:
                raise SqlSyntaxError(
                    f"column {name!r} needs a type (INTEGER/REAL/TEXT)"
                )
            primary = False
            if self.accept(TokenType.KEYWORD, "PRIMARY"):
                self.expect(TokenType.KEYWORD, "KEY")
                primary = True
            columns.append(ast.ColumnDef(name=name, affinity=affinity,
                                         primary_key=primary))
            if not self.accept(TokenType.OP, ","):
                break
        self.expect(TokenType.OP, ")")
        if sum(1 for col in columns if col.primary_key) > 1:
            raise SqlSyntaxError("at most one PRIMARY KEY column")
        return ast.CreateTable(table=table, columns=tuple(columns),
                               if_not_exists=if_not_exists)

    def _create_index(self) -> ast.CreateIndex:
        unique = bool(self.accept(TokenType.KEYWORD, "UNIQUE"))
        self.expect(TokenType.KEYWORD, "INDEX")
        index = self.expect_ident()
        self.expect(TokenType.KEYWORD, "ON")
        table = self.expect_ident()
        self.expect(TokenType.OP, "(")
        column = self.expect_ident()
        self.expect(TokenType.OP, ")")
        return ast.CreateIndex(index=index, table=table, column=column,
                               unique=unique)

    def _drop_table(self) -> ast.DropTable:
        self.expect(TokenType.KEYWORD, "TABLE")
        if_exists = False
        if self.accept(TokenType.KEYWORD, "IF"):
            self.expect(TokenType.KEYWORD, "EXISTS")
            if_exists = True
        return ast.DropTable(table=self.expect_ident(), if_exists=if_exists)

    # -- DML --------------------------------------------------------------------

    def _insert(self) -> ast.Insert:
        self.expect(TokenType.KEYWORD, "INTO")
        table = self.expect_ident()
        columns = None
        if self.accept(TokenType.OP, "("):
            names = [self.expect_ident()]
            while self.accept(TokenType.OP, ","):
                names.append(self.expect_ident())
            self.expect(TokenType.OP, ")")
            columns = tuple(names)
        self.expect(TokenType.KEYWORD, "VALUES")
        rows = [self._value_tuple()]
        while self.accept(TokenType.OP, ","):
            rows.append(self._value_tuple())
        return ast.Insert(table=table, columns=columns, rows=tuple(rows))

    def _value_tuple(self) -> tuple[Expression, ...]:
        self.expect(TokenType.OP, "(")
        values = [self.parse_expression()]
        while self.accept(TokenType.OP, ","):
            values.append(self.parse_expression())
        self.expect(TokenType.OP, ")")
        return tuple(values)

    def _select(self) -> ast.Select:
        distinct = bool(self.accept(TokenType.KEYWORD, "DISTINCT"))
        items = [self._select_item()]
        while self.accept(TokenType.OP, ","):
            items.append(self._select_item())

        table = alias = None
        join = None
        if self.accept(TokenType.KEYWORD, "FROM"):
            table = self.expect_ident()
            alias = self._maybe_alias()
            if (self.accept(TokenType.KEYWORD, "JOIN")
                    or (self.accept(TokenType.KEYWORD, "INNER")
                        and self.expect(TokenType.KEYWORD, "JOIN"))):
                join_table = self.expect_ident()
                join_alias = self._maybe_alias()
                self.expect(TokenType.KEYWORD, "ON")
                join = ast.JoinClause(table=join_table, alias=join_alias,
                                      on=self.parse_expression())

        where = None
        if self.accept(TokenType.KEYWORD, "WHERE"):
            where = self.parse_expression()

        group_by: tuple[Expression, ...] = ()
        having = None
        if self.accept(TokenType.KEYWORD, "GROUP"):
            self.expect(TokenType.KEYWORD, "BY")
            groups = [self.parse_expression()]
            while self.accept(TokenType.OP, ","):
                groups.append(self.parse_expression())
            group_by = tuple(groups)
            if self.accept(TokenType.KEYWORD, "HAVING"):
                having = self.parse_expression()

        order_by: list[ast.OrderItem] = []
        if self.accept(TokenType.KEYWORD, "ORDER"):
            self.expect(TokenType.KEYWORD, "BY")
            while True:
                expr = self.parse_expression()
                descending = False
                if self.accept(TokenType.KEYWORD, "DESC"):
                    descending = True
                else:
                    self.accept(TokenType.KEYWORD, "ASC")
                order_by.append(ast.OrderItem(expr=expr, descending=descending))
                if not self.accept(TokenType.OP, ","):
                    break

        limit = None
        if self.accept(TokenType.KEYWORD, "LIMIT"):
            token = self.expect(TokenType.INTEGER)
            limit = int(token.value)

        return ast.Select(
            items=tuple(items), table=table, alias=alias, join=join,
            where=where, group_by=group_by, having=having,
            order_by=tuple(order_by), limit=limit, distinct=distinct,
        )

    def _maybe_alias(self) -> str | None:
        if self.accept(TokenType.KEYWORD, "AS"):
            return self.expect_ident()
        if self.current.type is TokenType.IDENT:
            return self.advance().value
        return None

    def _select_item(self) -> ast.SelectItem:
        if self.accept(TokenType.OP, "*"):
            return ast.SelectItem(expr=ast.Literal(None), star=True)
        expr = self.parse_expression()
        alias = None
        if self.accept(TokenType.KEYWORD, "AS"):
            alias = self.expect_ident()
        return ast.SelectItem(expr=expr, alias=alias)

    def _update(self) -> ast.Update:
        table = self.expect_ident()
        self.expect(TokenType.KEYWORD, "SET")
        assignments = []
        while True:
            column = self.expect_ident()
            self.expect(TokenType.OP, "=")
            assignments.append((column, self.parse_expression()))
            if not self.accept(TokenType.OP, ","):
                break
        where = None
        if self.accept(TokenType.KEYWORD, "WHERE"):
            where = self.parse_expression()
        return ast.Update(table=table, assignments=tuple(assignments),
                          where=where)

    def _delete(self) -> ast.Delete:
        self.expect(TokenType.KEYWORD, "FROM")
        table = self.expect_ident()
        where = None
        if self.accept(TokenType.KEYWORD, "WHERE"):
            where = self.parse_expression()
        return ast.Delete(table=table, where=where)

    # -- expressions ----------------------------------------------------------------

    def parse_expression(self) -> Expression:
        return self._or_expr()

    def _or_expr(self) -> Expression:
        left = self._and_expr()
        while self.accept(TokenType.KEYWORD, "OR"):
            left = ast.BinaryOp(op="OR", left=left, right=self._and_expr())
        return left

    def _and_expr(self) -> Expression:
        left = self._not_expr()
        while self.accept(TokenType.KEYWORD, "AND"):
            left = ast.BinaryOp(op="AND", left=left, right=self._not_expr())
        return left

    def _not_expr(self) -> Expression:
        if self.accept(TokenType.KEYWORD, "NOT"):
            return ast.UnaryOp(op="NOT", operand=self._not_expr())
        return self._comparison()

    def _comparison(self) -> Expression:
        left = self._additive()
        if self.accept(TokenType.KEYWORD, "IS"):
            negated = bool(self.accept(TokenType.KEYWORD, "NOT"))
            self.expect(TokenType.KEYWORD, "NULL")
            return ast.IsNull(operand=left, negated=negated)
        negated = bool(self.accept(TokenType.KEYWORD, "NOT"))
        if self.accept(TokenType.KEYWORD, "LIKE"):
            return ast.Like(operand=left, pattern=self._additive(),
                            negated=negated)
        if self.accept(TokenType.KEYWORD, "IN"):
            self.expect(TokenType.OP, "(")
            items = [self.parse_expression()]
            while self.accept(TokenType.OP, ","):
                items.append(self.parse_expression())
            self.expect(TokenType.OP, ")")
            return ast.InList(operand=left, items=tuple(items),
                              negated=negated)
        if self.accept(TokenType.KEYWORD, "BETWEEN"):
            low = self._additive()
            self.expect(TokenType.KEYWORD, "AND")
            return ast.Between(operand=left, low=low, high=self._additive(),
                               negated=negated)
        if negated:
            raise SqlSyntaxError(
                "NOT here must be followed by LIKE, IN or BETWEEN"
            )
        for op in _COMPARISON_OPS:
            if self.accept(TokenType.OP, op):
                return ast.BinaryOp(op=op, left=left, right=self._additive())
        return left

    def _additive(self) -> Expression:
        left = self._term()
        while True:
            op_token = (self.accept(TokenType.OP, "+")
                        or self.accept(TokenType.OP, "-")
                        or self.accept(TokenType.OP, "||"))
            if op_token is None:
                return left
            left = ast.BinaryOp(op=op_token.value, left=left, right=self._term())

    def _term(self) -> Expression:
        left = self._factor()
        while True:
            op_token = (self.accept(TokenType.OP, "*")
                        or self.accept(TokenType.OP, "/")
                        or self.accept(TokenType.OP, "%"))
            if op_token is None:
                return left
            left = ast.BinaryOp(op=op_token.value, left=left,
                                right=self._factor())

    def _factor(self) -> Expression:
        if self.accept(TokenType.OP, "-"):
            return ast.UnaryOp(op="-", operand=self._factor())
        if self.accept(TokenType.OP, "("):
            expr = self.parse_expression()
            self.expect(TokenType.OP, ")")
            return expr
        token = self.current
        if token.type is TokenType.INTEGER:
            self.advance()
            return ast.Literal(int(token.value))
        if token.type is TokenType.REAL:
            self.advance()
            return ast.Literal(float(token.value))
        if token.type is TokenType.STRING:
            self.advance()
            return ast.Literal(token.value)
        if token.matches(TokenType.KEYWORD, "NULL"):
            self.advance()
            return ast.Literal(None)
        if token.type is TokenType.IDENT:
            name = self.advance().value
            if name.upper() in _FUNCTIONS and self.accept(TokenType.OP, "("):
                fn = name.upper()
                if self.accept(TokenType.OP, "*"):
                    self.expect(TokenType.OP, ")")
                    if fn != "COUNT":
                        raise SqlSyntaxError(f"{fn}(*) is not valid")
                    return ast.FunctionCall(name=fn, argument=None)
                argument = self.parse_expression()
                self.expect(TokenType.OP, ")")
                return ast.FunctionCall(name=fn, argument=argument)
            if self.accept(TokenType.OP, "."):
                column = self.expect_ident()
                return ast.ColumnRef(name=column, table=name)
            return ast.ColumnRef(name=name)
        raise SqlSyntaxError(
            f"unexpected token {token.value!r} at position {token.position}"
        )


def parse(sql: str) -> ast.Statement:
    """Parse one SQL statement."""
    parser = Parser(tokenize(sql))
    statement = parser.parse_statement()
    parser.finish()
    return statement
