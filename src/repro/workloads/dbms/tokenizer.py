"""SQL tokenizer.

Produces a flat token stream for the recursive-descent parser.
Handles keywords (case-insensitive), identifiers, integer/real
literals, single-quoted strings with ``''`` escaping, and the
operator set the engine's SQL subset needs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import SqlSyntaxError

KEYWORDS = frozenset({
    "SELECT", "FROM", "WHERE", "INSERT", "INTO", "VALUES", "UPDATE", "SET",
    "DELETE", "CREATE", "TABLE", "INDEX", "DROP", "ON", "JOIN", "INNER",
    "AND", "OR", "NOT", "NULL", "PRIMARY", "KEY", "ORDER", "BY", "GROUP",
    "LIMIT", "ASC", "DESC", "AS", "INTEGER", "REAL", "TEXT", "BEGIN",
    "COMMIT", "ROLLBACK", "IS", "DISTINCT", "UNIQUE", "IF", "EXISTS",
    "LIKE", "IN", "BETWEEN", "HAVING",
})

_TWO_CHAR_OPS = ("<=", ">=", "!=", "<>", "||")
_ONE_CHAR_OPS = "()+-*/%,=<>.;"


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    INTEGER = "integer"
    REAL = "real"
    STRING = "string"
    OP = "op"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: str
    position: int

    def matches(self, type_: TokenType, value: str | None = None) -> bool:
        if self.type is not type_:
            return False
        return value is None or self.value == value


def tokenize(sql: str) -> list[Token]:
    """Tokenize a statement; raises :class:`SqlSyntaxError` on junk."""
    tokens: list[Token] = []
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if sql.startswith("--", i):
            newline = sql.find("\n", i)
            i = n if newline == -1 else newline + 1
            continue
        start = i
        if ch.isalpha() or ch == "_":
            while i < n and (sql[i].isalnum() or sql[i] == "_"):
                i += 1
            word = sql[start:i]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, upper, start))
            else:
                tokens.append(Token(TokenType.IDENT, word, start))
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            seen_dot = False
            while i < n and (sql[i].isdigit() or (sql[i] == "." and not seen_dot)):
                if sql[i] == ".":
                    seen_dot = True
                i += 1
            text = sql[start:i]
            if seen_dot:
                tokens.append(Token(TokenType.REAL, text, start))
            else:
                tokens.append(Token(TokenType.INTEGER, text, start))
            continue
        if ch == "'":
            i += 1
            chunks = []
            while True:
                if i >= n:
                    raise SqlSyntaxError(f"unterminated string at {start}")
                if sql[i] == "'":
                    if i + 1 < n and sql[i + 1] == "'":
                        chunks.append("'")
                        i += 2
                        continue
                    i += 1
                    break
                chunks.append(sql[i])
                i += 1
            tokens.append(Token(TokenType.STRING, "".join(chunks), start))
            continue
        two = sql[i:i + 2]
        if two in _TWO_CHAR_OPS:
            tokens.append(Token(TokenType.OP, "!=" if two == "<>" else two, start))
            i += 2
            continue
        if ch in _ONE_CHAR_OPS:
            tokens.append(Token(TokenType.OP, ch, start))
            i += 1
            continue
        raise SqlSyntaxError(f"unexpected character {ch!r} at position {i}")
    tokens.append(Token(TokenType.EOF, "", n))
    return tokens
