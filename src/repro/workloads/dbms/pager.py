"""Page accounting layer.

SQLite's costs are dominated by page traffic (btree page reads,
journal + page writes on commit); this pager mirrors that accounting
so the cost hooks can charge the VM for realistic I/O volumes without
actually serialising pages.  Functional state stays in the B+trees;
the pager tracks how many pages the workload *would have* touched.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DbmsError

PAGE_SIZE = 4096


@dataclass
class PagerStats:
    """Page traffic counters."""

    reads: int = 0
    writes: int = 0
    journal_writes: int = 0
    cache_hits: int = 0


class Pager:
    """Tracks page reads/writes with a simple hot-set cache model.

    Parameters
    ----------
    cache_pages:
        Pages the cache holds; reads within the hot set are hits.
    """

    def __init__(self, cache_pages: int = 2000) -> None:
        if cache_pages < 1:
            raise DbmsError(f"cache must hold at least one page: {cache_pages}")
        self.cache_pages = cache_pages
        self.stats = PagerStats()
        self._hot: dict[int, int] = {}    # page id -> last access tick
        self._tick = 0
        self._dirty: set[int] = set()

    def _touch(self, page_id: int) -> bool:
        """Record an access; returns True on cache hit."""
        self._tick += 1
        hit = page_id in self._hot
        self._hot[page_id] = self._tick
        if len(self._hot) > self.cache_pages:
            coldest = min(self._hot, key=self._hot.__getitem__)
            del self._hot[coldest]
        return hit

    def read(self, page_id: int) -> bool:
        """A page read; returns True when served from cache."""
        if self._touch(page_id):
            self.stats.cache_hits += 1
            return True
        self.stats.reads += 1
        return False

    def write(self, page_id: int) -> None:
        """Mark a page dirty (flushed at commit)."""
        self._touch(page_id)
        self._dirty.add(page_id)

    def dirty_count(self) -> int:
        """Pages awaiting flush."""
        return len(self._dirty)

    def commit(self) -> int:
        """Flush dirty pages (journal write + page write each).

        Returns the number of pages flushed.
        """
        flushed = len(self._dirty)
        self.stats.journal_writes += flushed
        self.stats.writes += flushed
        self._dirty.clear()
        return flushed

    def rollback(self) -> int:
        """Discard dirty pages; returns how many were discarded."""
        discarded = len(self._dirty)
        self._dirty.clear()
        return discarded


def pages_for_bytes(nbytes: int) -> int:
    """Pages needed to hold ``nbytes`` of payload."""
    if nbytes < 0:
        raise DbmsError(f"negative byte count: {nbytes}")
    return max(1, (nbytes + PAGE_SIZE - 1) // PAGE_SIZE)
