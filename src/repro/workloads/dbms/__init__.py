"""Mini relational engine + speedtest suite.

The paper's DBMS experiment runs SQLite's ``speedtest1`` amalgamation
(v3460000, default relative test size 100) inside confidential VMs.
This package substitutes a from-scratch engine with the same moving
parts:

- SQL front end: tokenizer → recursive-descent parser → AST
  (:mod:`tokenizer`, :mod:`parser`, :mod:`ast_nodes`);
- storage: B+trees for rows and secondary indexes over a page
  accounting layer (:mod:`btree`, :mod:`pager`);
- execution: scan/index-scan/join/aggregate/sort plans
  (:mod:`executor`), fronted by :class:`repro.workloads.dbms.engine.Database`;
- :mod:`speedtest` — a test mix mirroring speedtest1's categories
  with the same relative-size knob.

The engine is real (queries return correct rows, verified by tests);
virtual time is charged through cost hooks that map row touches and
page traffic onto the VM execution context.
"""

from repro.workloads.dbms.engine import Database, DbCostHooks, KernelCostHooks
from repro.workloads.dbms.speedtest import SpeedtestResult, run_speedtest

__all__ = [
    "Database",
    "DbCostHooks",
    "KernelCostHooks",
    "SpeedtestResult",
    "run_speedtest",
]
