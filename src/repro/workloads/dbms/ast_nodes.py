"""AST node definitions for the SQL subset."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.workloads.dbms.values import SqlValue


# -- expressions -------------------------------------------------------

@dataclass(frozen=True)
class Literal:
    value: SqlValue


@dataclass(frozen=True)
class ColumnRef:
    name: str
    table: str | None = None

    @property
    def display(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class BinaryOp:
    op: str
    left: "Expression"
    right: "Expression"


@dataclass(frozen=True)
class UnaryOp:
    op: str                    # "NOT" | "-"
    operand: "Expression"


@dataclass(frozen=True)
class IsNull:
    operand: "Expression"
    negated: bool = False


@dataclass(frozen=True)
class FunctionCall:
    name: str                  # COUNT/SUM/AVG/MIN/MAX/LENGTH/ABS
    argument: "Expression | None"   # None means COUNT(*)


@dataclass(frozen=True)
class Like:
    """``expr [NOT] LIKE pattern`` — % and _ wildcards."""

    operand: "Expression"
    pattern: "Expression"
    negated: bool = False


@dataclass(frozen=True)
class InList:
    """``expr [NOT] IN (item, ...)``."""

    operand: "Expression"
    items: tuple["Expression", ...]
    negated: bool = False


@dataclass(frozen=True)
class Between:
    """``expr [NOT] BETWEEN low AND high`` (inclusive)."""

    operand: "Expression"
    low: "Expression"
    high: "Expression"
    negated: bool = False


Expression = (Literal | ColumnRef | BinaryOp | UnaryOp | IsNull
              | FunctionCall | Like | InList | Between)

AGGREGATE_FUNCTIONS = frozenset({"COUNT", "SUM", "AVG", "MIN", "MAX"})
SCALAR_FUNCTIONS = frozenset({"LENGTH", "ABS"})


def contains_aggregate(expr: Expression) -> bool:
    """True if the expression tree contains an aggregate call."""
    if isinstance(expr, FunctionCall):
        if expr.name in AGGREGATE_FUNCTIONS:
            return True
        return expr.argument is not None and contains_aggregate(expr.argument)
    if isinstance(expr, BinaryOp):
        return contains_aggregate(expr.left) or contains_aggregate(expr.right)
    if isinstance(expr, UnaryOp):
        return contains_aggregate(expr.operand)
    if isinstance(expr, IsNull):
        return contains_aggregate(expr.operand)
    if isinstance(expr, Like):
        return contains_aggregate(expr.operand) or contains_aggregate(expr.pattern)
    if isinstance(expr, InList):
        return contains_aggregate(expr.operand) or any(
            contains_aggregate(item) for item in expr.items
        )
    if isinstance(expr, Between):
        return (contains_aggregate(expr.operand)
                or contains_aggregate(expr.low)
                or contains_aggregate(expr.high))
    return False


# -- statements ----------------------------------------------------------

@dataclass(frozen=True)
class ColumnDef:
    name: str
    affinity: str              # INTEGER | REAL | TEXT
    primary_key: bool = False


@dataclass(frozen=True)
class CreateTable:
    table: str
    columns: tuple[ColumnDef, ...]
    if_not_exists: bool = False


@dataclass(frozen=True)
class CreateIndex:
    index: str
    table: str
    column: str
    unique: bool = False


@dataclass(frozen=True)
class DropTable:
    table: str
    if_exists: bool = False


@dataclass(frozen=True)
class Insert:
    table: str
    columns: tuple[str, ...] | None     # None = all, in table order
    rows: tuple[tuple[Expression, ...], ...]


@dataclass(frozen=True)
class SelectItem:
    expr: Expression
    alias: str | None = None
    star: bool = False


@dataclass(frozen=True)
class JoinClause:
    table: str
    alias: str | None
    on: Expression


@dataclass(frozen=True)
class OrderItem:
    expr: Expression
    descending: bool = False


@dataclass(frozen=True)
class Select:
    items: tuple[SelectItem, ...]
    table: str | None
    alias: str | None = None
    join: JoinClause | None = None
    where: Expression | None = None
    group_by: tuple[Expression, ...] = field(default=())
    having: Expression | None = None
    order_by: tuple[OrderItem, ...] = field(default=())
    limit: int | None = None
    distinct: bool = False


@dataclass(frozen=True)
class Update:
    table: str
    assignments: tuple[tuple[str, Expression], ...]
    where: Expression | None = None


@dataclass(frozen=True)
class Delete:
    table: str
    where: Expression | None = None


@dataclass(frozen=True)
class Begin:
    pass


@dataclass(frozen=True)
class Commit:
    pass


@dataclass(frozen=True)
class Rollback:
    pass


Statement = (
    CreateTable | CreateIndex | DropTable | Insert | Select | Update
    | Delete | Begin | Commit | Rollback
)
