"""UnixBench index scoring.

The classic suite's baseline constants: the score the SPARCstation
20-61 (128 MB RAM, SPARC Storage Array, Solaris 2.3) achieved.  A
test's *index* is ``10 * score / baseline``; the system index is the
geometric mean of the test indexes.  These baseline values are the
ones shipped in Byte UnixBench's ``pgms/index.base``.
"""

from __future__ import annotations

import math

from repro.errors import WorkloadError

#: test key -> (display name, baseline score, unit)
BASELINE_SCORES: dict[str, tuple[str, float, str]] = {
    "dhry2": ("Dhrystone 2 using register variables", 116_700.0, "lps"),
    "whetstone": ("Double-Precision Whetstone", 55.0, "MWIPS"),
    "execl": ("Execl Throughput", 43.0, "lps"),
    "fscopy256": ("File Copy 256 bufsize 500 maxblocks", 1_655.0, "KBps"),
    "fscopy1024": ("File Copy 1024 bufsize 2000 maxblocks", 3_960.0, "KBps"),
    "fscopy4096": ("File Copy 4096 bufsize 8000 maxblocks", 5_800.0, "KBps"),
    "pipe": ("Pipe Throughput", 12_440.0, "lps"),
    "context1": ("Pipe-based Context Switching", 4_000.0, "lps"),
    "spawn": ("Process Creation", 126.0, "lps"),
    "shell1": ("Shell Scripts (1 concurrent)", 42.4, "lpm"),
    "syscall": ("System Call Overhead", 15_000.0, "lps"),
}


def index_for(test_key: str, score: float) -> float:
    """One test's index: ``10 * score / baseline``."""
    try:
        _, baseline, _ = BASELINE_SCORES[test_key]
    except KeyError:
        known = ", ".join(sorted(BASELINE_SCORES))
        raise WorkloadError(f"unknown test {test_key!r}; known: {known}") from None
    if score < 0:
        raise WorkloadError(f"negative score for {test_key}: {score}")
    return 10.0 * score / baseline


def system_index(indexes: dict[str, float]) -> float:
    """Geometric mean of per-test indexes (the aggregated figure)."""
    if not indexes:
        raise WorkloadError("no test indexes to aggregate")
    if any(value <= 0 for value in indexes.values()):
        raise WorkloadError("all indexes must be positive for a geometric mean")
    log_sum = sum(math.log(value) for value in indexes.values())
    return math.exp(log_sum / len(indexes))
