"""The UnixBench test implementations.

Every test performs real work against the guest kernel (loops,
syscalls, pipes, forks, file copies), measures the *virtual* time the
execution context accumulated, and reports a loops-per-second score.
Iteration counts are scaled-down but fixed, so scores are directly
comparable across platforms and VMs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import WorkloadError
from repro.guestos.kernel import GuestKernel
from repro.guestos.syscalls import SyscallKind
from repro.workloads.unixbench.index import (
    BASELINE_SCORES,
    index_for,
    system_index,
)

#: Simulation engines: ``batch`` stages each test's hot loop as one
#: op batch (the fast path); ``perop`` issues every syscall
#: individually (the legacy path, kept for equivalence testing).
ENGINES = ("batch", "perop")


@dataclass(frozen=True)
class TestScore:
    """One test's outcome."""

    key: str
    name: str
    operations: int
    elapsed_ns: float
    score: float        # ops per virtual second (units per index.py)
    index: float


@dataclass
class UnixBenchReport:
    """The whole run: per-test scores plus the aggregated index."""

    scores: list[TestScore] = field(default_factory=list)

    @property
    def system_index(self) -> float:
        return system_index({score.key: score.index for score in self.scores})

    def score_of(self, key: str) -> TestScore:
        for score in self.scores:
            if score.key == key:
                return score
        raise WorkloadError(f"no score recorded for {key!r}")


class _Bench:
    """Helper: run one measured section against the kernel."""

    def __init__(self, kernel: GuestKernel, scale: float,
                 engine: str = "batch") -> None:
        self.kernel = kernel
        self.scale = scale
        self.engine = engine
        self.report = UnixBenchReport()

    def _record(self, key: str, operations: int, elapsed_ns: float,
                scale_score: float = 1.0) -> None:
        if elapsed_ns <= 0:
            raise WorkloadError(f"test {key} accumulated no virtual time")
        ops_per_second = operations / (elapsed_ns / 1e9) * scale_score
        name = BASELINE_SCORES[key][0]
        self.report.scores.append(TestScore(
            key=key,
            name=name,
            operations=operations,
            elapsed_ns=elapsed_ns,
            score=ops_per_second,
            index=index_for(key, ops_per_second),
        ))

    def _measured(self):
        return self.kernel.ctx.elapsed_ns()

    # -- CPU tests --------------------------------------------------------

    def dhry2(self) -> None:
        """Integer/string manipulation loop (Dhrystone-flavoured)."""
        loops = int(4000 * self.scale)
        start = self._measured()
        checksum = 0
        for i in range(loops):
            a = (i * 7 + 3) % 97
            b = (a << 2) ^ i
            checksum = (checksum + a * b) & 0xFFFFFFFF
        if checksum == 0xDEADBEEF:   # keep the loop honest
            raise WorkloadError("impossible checksum")
        self.kernel.ctx.cpu_execute(loops * 95, memory_references=loops * 6,
                                    working_set_bytes=64 * 1024)
        self._record("dhry2", loops, self._measured() - start)

    def whetstone(self) -> None:
        """Floating-point kernel (Whetstone-flavoured), scored in MWIPS."""
        loops = int(600 * self.scale)
        start = self._measured()
        x = 1.0
        for i in range(loops):
            x = math.sin(x) + math.cos(x) * math.atan(1.0 + x * x) / 2.0
        self.kernel.ctx.cpu_execute(loops * 420, memory_references=loops * 3)
        elapsed = self._measured() - start
        # score is "millions of whetstone instructions per second"
        self._record("whetstone", loops, elapsed, scale_score=420 / 1e6)
        if not math.isfinite(x):
            raise WorkloadError("whetstone diverged")

    # -- syscall / IPC tests --------------------------------------------------

    def syscall(self) -> None:
        loops = int(1500 * self.scale)
        start = self._measured()
        if self.engine == "batch":
            kb = self.kernel.batch()
            kb.repeat(kb.seq().syscall(SyscallKind.GETPID), loops)
            kb.commit()
        else:
            for _ in range(loops):  # confbench: allow[hot-path-per-op]
                self.kernel.sys_getpid()
        self._record("syscall", loops, self._measured() - start)

    def pipe(self) -> None:
        loops = int(700 * self.scale)
        pipe = self.kernel.make_pipe()
        payload = b"x" * 512
        start = self._measured()
        if self.engine == "batch":
            # the pipe drains every iteration, so one functional
            # round-trip proves the transfer; charges batch as
            # (write, read) x loops
            accepted = pipe.write(payload)
            if pipe.read(accepted) != payload:
                raise WorkloadError("pipe transfer corrupted")
            kb = self.kernel.batch()
            kb.repeat(kb.seq().pipe_write(512).pipe_read(512), loops)
            kb.commit()
        else:
            for _ in range(loops):  # confbench: allow[hot-path-per-op]
                self.kernel.sys_pipe_write(pipe, payload)
                self.kernel.sys_pipe_read(pipe, 512)
        self._record("pipe", loops, self._measured() - start)

    def context1(self) -> None:
        rounds = int(250 * self.scale)
        start = self._measured()
        if self.engine == "batch":
            kb = self.kernel.batch()
            kb.repeat(
                kb.seq().pipe_write(128).context_switch()
                        .pipe_read(128).context_switch(),
                rounds,
            )
            kb.commit()
        else:
            self.kernel.pipe_ping_pong(rounds, payload=128)
        self._record("context1", rounds, self._measured() - start)

    # -- process tests -------------------------------------------------------------

    def spawn(self) -> None:
        loops = int(50 * self.scale)
        start = self._measured()
        if self.engine == "batch":
            kb = self.kernel.batch()
            kb.repeat(
                kb.seq().fork().syscall(SyscallKind.EXIT)
                        .syscall(SyscallKind.WAIT),
                loops,
            )
            kb.commit()
            self._spawn_processes(loops, "child")
        else:
            for _ in range(loops):  # confbench: allow[hot-path-per-op]
                child = self.kernel.sys_fork("child")
                self.kernel.sys_exit(child.pid, 0)
                self.kernel.sys_wait()
        self._record("spawn", loops, self._measured() - start)

    def execl(self) -> None:
        loops = int(30 * self.scale)
        start = self._measured()
        if self.engine == "batch":
            kb = self.kernel.batch()
            kb.repeat(
                kb.seq().fork().exec().syscall(SyscallKind.EXIT)
                        .syscall(SyscallKind.WAIT),
                loops,
            )
            kb.commit()
            self._spawn_processes(loops, "execl-host",
                                  exec_name="/bin/prog{}")
        else:
            for index in range(loops):  # confbench: allow[hot-path-per-op]
                child = self.kernel.sys_fork("execl-host")
                self.kernel.sys_exec(child.pid, f"/bin/prog{index % 3}")
                self.kernel.sys_exit(child.pid, 0)
                self.kernel.sys_wait()
        self._record("execl", loops, self._measured() - start)

    def _spawn_processes(self, loops: int, name: str,
                         exec_name: str | None = None) -> None:
        """The functional process-table work of a fork/exec/exit loop.

        The batched tests charge the whole loop in one fold, then run
        the uncharged process-table mutations here so the table (pid
        counter, reaped children) ends in the same state as the
        per-op path.
        """
        table = self.kernel.processes
        parent = self.kernel.scheduler.current_pid
        for index in range(loops):
            child = table.fork(parent, name)
            if exec_name is not None:
                table.exec(child.pid, exec_name.format(index % 3))
            table.exit(child.pid, 0)
            table.wait(parent)

    def shell1(self) -> None:
        """Shell-script style: spawn a small pipeline, do file work."""
        loops = int(12 * self.scale)
        start = self._measured()
        if self.engine == "batch":
            self._shell1_batch(loops)
        else:
            for index in range(loops):  # confbench: allow[hot-path-per-op]
                pids = []
                for stage in ("sort", "grep", "tee"):
                    child = self.kernel.sys_fork(stage)
                    self.kernel.sys_exec(child.pid, f"/bin/{stage}")
                    pids.append(child.pid)
                path = f"/tmp-shell-{index}"
                self.kernel.sys_create(path)
                self.kernel.sys_write(path, b"line\n" * 100)
                self.kernel.sys_read(path)
                self.kernel.sys_unlink(path)
                for pid in pids:
                    self.kernel.sys_exit(pid, 0)
                    self.kernel.sys_wait()
        elapsed = self._measured() - start
        # shell scripts are scored in loops per *minute*
        self._record("shell1", loops, elapsed, scale_score=60.0)

    def _shell1_batch(self, loops: int) -> None:
        """shell1's loop body charges one repeated pattern per loop."""
        payload = b"line\n" * 100
        kb = self.kernel.batch()
        seq = kb.seq()
        for _ in ("sort", "grep", "tee"):
            seq.fork().exec()
        seq.syscall(SyscallKind.CREATE).disk_write(4096)
        seq.write(len(payload))
        seq.read(len(payload))
        seq.syscall(SyscallKind.UNLINK).disk_write(4096)
        for _ in ("sort", "grep", "tee"):
            seq.syscall(SyscallKind.EXIT).syscall(SyscallKind.WAIT)
        kb.repeat(seq, loops)
        kb.commit()
        # the uncharged functional work, loop by loop
        fs = self.kernel.fs
        table = self.kernel.processes
        parent = self.kernel.scheduler.current_pid
        for index in range(loops):
            pids = []
            for stage in ("sort", "grep", "tee"):
                child = table.fork(parent, stage)
                table.exec(child.pid, f"/bin/{stage}")
                pids.append(child.pid)
            path = f"/tmp-shell-{index}"
            fs.create(path)
            fs.write(path, payload, None)
            fs.read(path, 0, None)
            fs.unlink(path)
            for pid in pids:
                table.exit(pid, 0)
                table.wait(parent)

    # -- file copy tests ------------------------------------------------------------

    def _fscopy(self, key: str, bufsize: int, blocks: int) -> None:
        source, dest = f"/fs-src-{bufsize}", f"/fs-dst-{bufsize}"
        self.kernel.sys_create(source)
        self.kernel.sys_write(source, b"d" * (bufsize * blocks))
        self.kernel.sys_create(dest)
        start = self._measured()
        copied = 0
        if self.engine == "batch":
            kb = self.kernel.batch()
            kb.repeat(kb.seq().read(bufsize).write(bufsize), blocks)
            kb.commit()
            # functional copy in one sweep: appending the whole file
            # leaves dest byte-equal to blocks per-block appends
            data = self.kernel.fs.read(source, 0, None)
            copied = self.kernel.fs.write(dest, data, None)
        else:
            for block in range(blocks):  # confbench: allow[hot-path-per-op]
                chunk = self.kernel.sys_read(source, offset=block * bufsize,
                                             length=bufsize)
                copied += self.kernel.sys_write(dest, chunk)
        elapsed = self._measured() - start
        # scored in KB copied per second
        self._record(key, blocks, elapsed,
                     scale_score=(bufsize / 1024.0))
        self.kernel.sys_unlink(source)
        self.kernel.sys_unlink(dest)
        if copied != bufsize * blocks:
            raise WorkloadError(f"file copy truncated: {copied}")

    def fscopy256(self) -> None:
        self._fscopy("fscopy256", 256, int(120 * self.scale))

    def fscopy1024(self) -> None:
        self._fscopy("fscopy1024", 1024, int(80 * self.scale))

    def fscopy4096(self) -> None:
        self._fscopy("fscopy4096", 4096, int(50 * self.scale))


def run_unixbench(kernel: GuestKernel, scale: float = 1.0,
                  engine: str = "batch") -> UnixBenchReport:
    """Run the single-threaded suite; returns per-test scores + index.

    ``scale`` shrinks/grows iteration counts uniformly (it cancels in
    secure/normal comparisons).  ``engine`` selects the batched fast
    path (default) or the legacy per-op path; scores are byte-
    identical between the two.
    """
    if scale <= 0:
        raise WorkloadError(f"scale must be positive: {scale}")
    if engine not in ENGINES:
        raise WorkloadError(f"unknown engine {engine!r} (have: {ENGINES})")
    bench = _Bench(kernel, scale, engine)
    bench.dhry2()
    bench.whetstone()
    bench.syscall()
    bench.pipe()
    bench.context1()
    bench.spawn()
    bench.execl()
    bench.shell1()
    bench.fscopy256()
    bench.fscopy1024()
    bench.fscopy4096()
    return bench.report
