"""Byte-UnixBench-style OS benchmark suite.

Mirrors the paper's §IV-C "OS" experiment: low-level system
benchmarks run single-threaded, each producing a loops-per-second
score that is divided by the score of the reference system (UnixBench
uses a SPARCstation 20-61 with Solaris 2.3) and multiplied by 10; the
system index is the geometric mean of the per-test indexes.

Tests (matching the classic suite's categories): Dhrystone-like
integer workload, Whetstone-like floating point, syscall overhead,
pipe throughput, pipe-based context switching, process creation,
execl throughput, file copy at three buffer sizes, and shell-script
style process pipelines — the mix the paper calls "very
heterogeneous ... giving a good overview of the overall overhead at
OS level".
"""

from repro.workloads.unixbench.suite import (
    TestScore,
    UnixBenchReport,
    run_unixbench,
)
from repro.workloads.unixbench.index import BASELINE_SCORES, index_for

__all__ = [
    "TestScore",
    "UnixBenchReport",
    "run_unixbench",
    "BASELINE_SCORES",
    "index_for",
]
