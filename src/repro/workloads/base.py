"""Workload descriptors.

A :class:`FaasWorkload` is a named function body written against the
:class:`~repro.runtimes.base.RuntimeSession` API, so the same source
logic runs under every language runtime — the reproduction's analogue
of the paper "manually porting specific functions across languages,
maintaining as much as possible the original logic" (§IV-B).  Each
workload genuinely computes its result (tested for correctness) while
charging the cost model for the work implied.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.runtimes.base import RuntimeSession


class WorkloadTrait(enum.Enum):
    """Dominant resource profile of a workload (used by analyses)."""

    CPU = "cpu"
    MEMORY = "memory"
    IO = "io"
    MIXED = "mixed"


@dataclass(frozen=True)
class FaasWorkload:
    """One FaaS benchmark function."""

    name: str
    trait: WorkloadTrait
    description: str
    fn: Callable[[RuntimeSession, dict[str, Any]], Any]
    default_args: dict[str, Any] = field(default_factory=dict)
    origin: str = ""   # which public suite the paper drew it from

    def run(self, session: RuntimeSession,
            args: dict[str, Any] | None = None) -> Any:
        """Execute the workload body with defaults merged under ``args``."""
        merged = dict(self.default_args)
        if args:
            merged.update(args)
        return self.fn(session, merged)
