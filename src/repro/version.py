"""Single source of the package version.

Lives at the bottom of the layer DAG (rank 0, like ``repro.errors``)
so any layer may import it.  ``repro.core.resultstore`` used to pull
``__version__`` from the package root — a core → repro upward import
that closed a package-level cycle (``repro/__init__`` imports core);
the layering pass in :mod:`repro.analysis` now rejects that shape.
"""

from __future__ import annotations

__version__ = "1.0.0"
