"""CCA realm attestation tokens — the post-FVP path.

The paper leaves CCA out of the attestation experiment because the
FVP simulator lacks the required hardware; §VI promises to revisit
once silicon arrives.  This module prepares that revisit:

- :func:`request_realm_token` drives the RSI flow (the part that works
  today): realm → RMM → unsigned token with measurements + challenge.
- :class:`RealmTokenVerifier` validates token structure and challenge
  binding, and — when given a CPAK (CCA Platform Attestation Key, the
  piece only hardware can hold) — the signature too.  Without a CPAK
  it refuses with :class:`~repro.errors.TeeUnsupportedError`, making
  the simulator's gap explicit instead of silently accepting.

Tests inject a software CPAK to exercise the full future flow.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.attest.crypto import (
    DIGEST_COST_PER_BYTE_NS,
    SIGN_COST_NS,
    VERIFY_COST_NS,
    RsaKeyPair,
)
from repro.errors import QuoteVerificationError, TeeUnsupportedError
from repro.guestos.context import ExecContext
from repro.tee.cca import Realm, RealmManagementMonitor


@dataclass(frozen=True)
class RealmToken:
    """A CCA attestation token (signed only when hardware provides a
    CPAK)."""

    realm_initial_measurement_hex: str
    challenge_hex: str
    rim_extensions: tuple[str, ...]
    signed: bool
    signature: bytes = b""

    def body_bytes(self) -> bytes:
        return json.dumps(
            {
                "rim": self.realm_initial_measurement_hex,
                "challenge": self.challenge_hex,
                "extensions": list(self.rim_extensions),
            },
            sort_keys=True,
        ).encode()


def request_realm_token(
    rmm: RealmManagementMonitor,
    realm: Realm,
    ctx: ExecContext,
    challenge: bytes,
    cpak: RsaKeyPair | None = None,
) -> RealmToken:
    """RSI_ATTESTATION_TOKEN, optionally signed by a hardware CPAK.

    On FVP (``cpak=None``) the token comes back unsigned, exactly as
    the paper's setup behaves.
    """
    raw, cost = rmm.rsi_attestation_token(realm.rid, challenge)
    ctx.vm_transition(cost)
    token = RealmToken(
        realm_initial_measurement_hex=bytes(
            raw["realm_initial_measurement"]
        ).hex(),
        challenge_hex=bytes(raw["challenge"]).hex(),
        rim_extensions=tuple(raw["rim_extensions"]),
        signed=False,
    )
    if cpak is None:
        return token
    body = token.body_bytes()
    ctx.crypto(SIGN_COST_NS + len(body) * DIGEST_COST_PER_BYTE_NS)
    return RealmToken(
        realm_initial_measurement_hex=token.realm_initial_measurement_hex,
        challenge_hex=token.challenge_hex,
        rim_extensions=token.rim_extensions,
        signed=True,
        signature=cpak.sign(body),
    )


class RealmTokenVerifier:
    """Realm-owner verification of CCA tokens."""

    def __init__(self, expected_rim: bytes,
                 cpak_public=None) -> None:
        self.expected_rim_hex = expected_rim.hex()
        self.cpak_public = cpak_public

    def verify(self, token: RealmToken, ctx: ExecContext,
               expected_challenge: bytes) -> bool:
        """Check measurements, challenge binding, and (if possible)
        the signature.

        Raises
        ------
        QuoteVerificationError
            On measurement/challenge mismatch or a bad signature.
        TeeUnsupportedError
            When the token is unsigned and no CPAK is pinned — the
            FVP situation: structural checks pass but the paper's
            "report can be cryptographically verified" step cannot run.
        """
        if token.realm_initial_measurement_hex != self.expected_rim_hex:
            raise QuoteVerificationError(
                "realm initial measurement does not match the expected RIM"
            )
        expected_hex = expected_challenge.ljust(64, b"\0").hex()
        if token.challenge_hex != expected_hex:
            raise QuoteVerificationError("challenge mismatch (stale token?)")

        if not token.signed:
            raise TeeUnsupportedError(
                "token is unsigned: the FVP simulator has no CPAK; "
                "structural checks passed but cryptographic verification "
                "needs CCA hardware (paper §VI)"
            )
        if self.cpak_public is None:
            raise TeeUnsupportedError(
                "no CPAK public key pinned; cannot verify a signed token"
            )
        body = token.body_bytes()
        ctx.crypto(VERIFY_COST_NS + len(body) * DIGEST_COST_PER_BYTE_NS)
        if not self.cpak_public.verify(body, token.signature):
            raise QuoteVerificationError("realm token signature invalid")
        return True
