"""TDX quote generation (the DCAP path).

Flow, mirroring go-tdx-guest + Intel's DCAP libraries (§IV-C):

1. The TD asks the TDX Module for a TDREPORT bound to 64 bytes of
   caller data (one TDCALL).
2. The report travels to the host-side **Quoting Enclave** (QE),
   which holds an attestation key certified by the platform's PCK
   certificate (provisioned from the Intel PCS at setup time).
3. The QE validates the report's origin and signs the quote body.

The result is a :class:`TdxQuote` carrying the measurements, the QE's
signature, and the PCK certificate chain the verifier will walk.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.attest.certs import Certificate
from repro.attest.crypto import (
    DIGEST_COST_PER_BYTE_NS,
    SIGN_COST_NS,
    RsaKeyPair,
    derived_keypair,
)
from repro.attest.pcs import IntelPcs
from repro.errors import AttestationError
from repro.guestos.context import ExecContext
from repro.sim.rng import SimRng
from repro.tee.tdx import TdReport, TdxModule

#: Fixed QE processing overhead per quote (enclave transitions,
#: report-MAC verification, serialization) — quote generation is the
#: slow attestation step on TDX (hundreds of ms in practice).
QE_PROCESSING_NS = 410_000_000.0


@dataclass(frozen=True)
class TdxQuote:
    """A signed TDX quote."""

    version: int
    tee_type: str
    mrtd_hex: str
    rtmr_hex: tuple[str, ...]
    report_data_hex: str
    tee_tcb_svn: str
    qe_mrsigner: str
    qe_isv_svn: int
    signature: bytes
    cert_chain: tuple[Certificate, ...]    # attestation key cert, PCK, PCK CA

    def body_bytes(self) -> bytes:
        """The signed portion of the quote."""
        return json.dumps(
            {
                "version": self.version,
                "tee_type": self.tee_type,
                "mrtd": self.mrtd_hex,
                "rtmr": list(self.rtmr_hex),
                "report_data": self.report_data_hex,
                "tee_tcb_svn": self.tee_tcb_svn,
                "qe_mrsigner": self.qe_mrsigner,
                "qe_isv_svn": self.qe_isv_svn,
            },
            sort_keys=True,
        ).encode()


class QuotingEnclave:
    """The host-side QE holding a PCK-certified attestation key."""

    MRSIGNER = "intel-qe-signer"
    ISV_SVN = 2

    def __init__(self, pcs: IntelPcs, rng: SimRng, platform_id: str = "tdx-host-0") -> None:
        self.platform_id = platform_id
        self._pck_key: RsaKeyPair = derived_keypair(rng, "pck-key")
        self.pck_cert = pcs.provision_pck(platform_id, self._pck_key.public)
        self._attestation_key: RsaKeyPair = derived_keypair(rng, "ak")
        # The PCK key certifies the attestation key (QE report binding
        # in real DCAP; modelled as a certificate here).
        self.ak_cert = Certificate(
            subject=f"QE AK {platform_id}",
            issuer=self.pck_cert.subject,
            serial=1,
            public_key=self._attestation_key.public,
            not_before=0.0,
            not_after=self.pck_cert.not_after,
            extensions={"role": "attestation-key"},
        )
        signature = self._pck_key.sign(self.ak_cert.tbs_bytes())
        self.ak_cert = Certificate(
            subject=self.ak_cert.subject,
            issuer=self.ak_cert.issuer,
            serial=self.ak_cert.serial,
            public_key=self.ak_cert.public_key,
            not_before=self.ak_cert.not_before,
            not_after=self.ak_cert.not_after,
            extensions=self.ak_cert.extensions,
            signature=signature,
        )
        self.quotes_generated = 0

    def quote(self, report: TdReport, ctx: ExecContext,
              pck_ca_cert: Certificate) -> TdxQuote:
        """Turn a TDREPORT into a signed quote (charges QE time)."""
        if len(report.report_data) != 64:
            raise AttestationError(
                f"TDREPORT report_data must be 64 bytes, got {len(report.report_data)}"
            )
        self.quotes_generated += 1
        unsigned = TdxQuote(
            version=4,
            tee_type="TDX",
            mrtd_hex=report.mrtd.hex(),
            rtmr_hex=tuple(r.hex() for r in report.rtmr),
            report_data_hex=report.report_data.hex(),
            tee_tcb_svn=report.tee_tcb_svn,
            qe_mrsigner=self.MRSIGNER,
            qe_isv_svn=self.ISV_SVN,
            signature=b"",
            cert_chain=(),
        )
        body = unsigned.body_bytes()
        ctx.crypto(QE_PROCESSING_NS)
        ctx.crypto(SIGN_COST_NS + len(body) * DIGEST_COST_PER_BYTE_NS)
        return TdxQuote(
            version=unsigned.version,
            tee_type=unsigned.tee_type,
            mrtd_hex=unsigned.mrtd_hex,
            rtmr_hex=unsigned.rtmr_hex,
            report_data_hex=unsigned.report_data_hex,
            tee_tcb_svn=unsigned.tee_tcb_svn,
            qe_mrsigner=unsigned.qe_mrsigner,
            qe_isv_svn=unsigned.qe_isv_svn,
            signature=self._attestation_key.sign(body),
            cert_chain=(self.ak_cert, self.pck_cert, pck_ca_cert),
        )


def generate_tdx_quote(
    module: TdxModule,
    qe: QuotingEnclave,
    pcs: IntelPcs,
    ctx: ExecContext,
    report_data: bytes,
    td_identity: str = "td-guest",
) -> TdxQuote:
    """The full in-guest "attest" step the paper times in Fig. 5.

    TDCALL for the TDREPORT, then QE processing and signing.  All
    costs land on ``ctx``; the returned quote is ready to send to a
    verifier.
    """
    report = module.generate_tdreport(report_data, td_identity)
    ctx.vm_transition(module.transition_cost_ns)          # the TDCALL
    ctx.crypto(len(report_data) * DIGEST_COST_PER_BYTE_NS)
    return qe.quote(report, ctx, pcs.pck_ca.certificate)
