"""Certificates, authorities, chains and revocation lists.

A deliberately small X.509 analogue: certificates are canonical-JSON
documents signed with the RSA implementation in
:mod:`repro.attest.crypto`.  Chain verification walks leaf → root,
checking signatures, validity windows and revocation — everything the
TDX/SNP verifiers need.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.attest.crypto import RsaKeyPair, RsaPublicKey, derived_keypair
from repro.errors import CertificateError, CrlError
from repro.sim.rng import SimRng


def _canonical(payload: dict) -> bytes:
    """Canonical JSON bytes (sorted keys) for signing."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()


@dataclass(frozen=True)
class Certificate:
    """A signed binding of a subject name to a public key."""

    subject: str
    issuer: str
    serial: int
    public_key: RsaPublicKey
    not_before: float            # virtual ns
    not_after: float             # virtual ns
    extensions: dict = field(default_factory=dict)
    signature: bytes = b""

    def tbs_payload(self) -> dict:
        """The to-be-signed content."""
        return {
            "subject": self.subject,
            "issuer": self.issuer,
            "serial": self.serial,
            "key_n": f"{self.public_key.n:x}",
            "key_e": self.public_key.e,
            "not_before": self.not_before,
            "not_after": self.not_after,
            "extensions": {k: str(v) for k, v in sorted(self.extensions.items())},
        }

    def tbs_bytes(self) -> bytes:
        return _canonical(self.tbs_payload())

    def is_self_signed(self) -> bool:
        return self.subject == self.issuer

    def verify_signature(self, issuer_key: RsaPublicKey) -> bool:
        """True iff the issuer's key signed this certificate."""
        return issuer_key.verify(self.tbs_bytes(), self.signature)


@dataclass(frozen=True)
class CertificateRevocationList:
    """A signed list of revoked serial numbers from one issuer."""

    issuer: str
    revoked_serials: frozenset[int]
    this_update: float
    next_update: float
    signature: bytes = b""

    def tbs_bytes(self) -> bytes:
        return _canonical(
            {
                "issuer": self.issuer,
                "revoked": sorted(self.revoked_serials),
                "this_update": self.this_update,
                "next_update": self.next_update,
            }
        )

    def is_revoked(self, serial: int) -> bool:
        return serial in self.revoked_serials

    def is_stale(self, now_ns: float) -> bool:
        """Whether the CRL is no longer fresh at ``now_ns``.

        Freshness requires ``now_ns`` *strictly less than*
        ``next_update``: a CRL whose ``next_update`` equals the
        current clock reading is already stale.  Every consumer
        (chain verification, the PCS cache, the verifier service's
        freshness policy) uses this one predicate so serial and
        parallel runs cannot disagree on the boundary.
        """
        return not now_ns < self.next_update

    def freshness_remaining_ns(self, now_ns: float) -> float:
        """Virtual time until this CRL goes stale (0 when already stale)."""
        return max(0.0, self.next_update - now_ns)


class CertificateAuthority:
    """A CA that issues certificates and CRLs.

    Roots are self-signed (``issuer_ca=None``); intermediates carry a
    chain back to their root.
    """

    #: Default validity window: ~10 virtual years.
    DEFAULT_VALIDITY_NS = 10 * 365 * 24 * 3600 * 1e9

    def __init__(
        self,
        name: str,
        rng: SimRng,
        issuer_ca: "CertificateAuthority | None" = None,
        key_bits: int = 1024,
    ) -> None:
        self.name = name
        self.keypair: RsaKeyPair = derived_keypair(rng, f"ca/{name}", key_bits)
        self.issuer_ca = issuer_ca
        self._next_serial = 1
        self._revoked: set[int] = set()
        if issuer_ca is None:
            self.certificate = self._make_cert(
                subject=name, issuer=name, key=self.keypair.public,
                signer=self.keypair, serial=0,
            )
        else:
            self.certificate = issuer_ca.issue(name, self.keypair.public)

    def _make_cert(
        self,
        subject: str,
        issuer: str,
        key: RsaPublicKey,
        signer: RsaKeyPair,
        serial: int,
        extensions: dict | None = None,
    ) -> Certificate:
        unsigned = Certificate(
            subject=subject,
            issuer=issuer,
            serial=serial,
            public_key=key,
            not_before=0.0,
            not_after=self.DEFAULT_VALIDITY_NS,
            extensions=extensions if extensions is not None else {},
        )
        signature = signer.sign(unsigned.tbs_bytes())
        return Certificate(
            subject=unsigned.subject,
            issuer=unsigned.issuer,
            serial=unsigned.serial,
            public_key=unsigned.public_key,
            not_before=unsigned.not_before,
            not_after=unsigned.not_after,
            extensions=unsigned.extensions,
            signature=signature,
        )

    def issue(
        self,
        subject: str,
        key: RsaPublicKey,
        extensions: dict | None = None,
    ) -> Certificate:
        """Issue a certificate for ``subject`` binding ``key``."""
        serial = self._next_serial
        self._next_serial += 1
        return self._make_cert(
            subject=subject,
            issuer=self.name,
            key=key,
            signer=self.keypair,
            serial=serial,
            extensions=extensions,
        )

    def revoke(self, serial: int) -> None:
        """Add a serial to this CA's revocation set."""
        self._revoked.add(serial)

    def crl(self, now_ns: float = 0.0,
            validity_ns: float = 7 * 24 * 3600 * 1e9) -> CertificateRevocationList:
        """A freshly signed CRL."""
        unsigned = CertificateRevocationList(
            issuer=self.name,
            revoked_serials=frozenset(self._revoked),
            this_update=now_ns,
            next_update=now_ns + validity_ns,
        )
        return CertificateRevocationList(
            issuer=unsigned.issuer,
            revoked_serials=unsigned.revoked_serials,
            this_update=unsigned.this_update,
            next_update=unsigned.next_update,
            signature=self.keypair.sign(unsigned.tbs_bytes()),
        )


def verify_chain(
    chain: list[Certificate],
    trusted_root: Certificate,
    now_ns: float = 1.0,
    crls: dict[str, CertificateRevocationList] | None = None,
) -> None:
    """Verify ``chain`` (leaf first) up to ``trusted_root``.

    Checks, for every certificate: issuer linkage, signature by the
    issuer's key, validity window, and revocation against the issuer's
    CRL when one is supplied.  CRLs themselves must be signed by the
    issuer and fresh.

    Raises
    ------
    CertificateError / CrlError
        On the first failed check; returns None on success.
    """
    if not chain:
        raise CertificateError("empty certificate chain")

    crls = crls if crls is not None else {}
    path = list(chain) + [trusted_root]

    for cert, issuer_cert in zip(path[:-1], path[1:]):
        if cert.issuer != issuer_cert.subject:
            raise CertificateError(
                f"chain break: {cert.subject!r} names issuer {cert.issuer!r}, "
                f"next cert is {issuer_cert.subject!r}"
            )
        if not cert.verify_signature(issuer_cert.public_key):
            raise CertificateError(f"bad signature on {cert.subject!r}")
        if not (cert.not_before <= now_ns <= cert.not_after):
            raise CertificateError(f"certificate {cert.subject!r} outside validity")
        issuer_crl = crls.get(cert.issuer)
        if issuer_crl is not None:
            if not issuer_crl.signature or not issuer_cert.public_key.verify(
                issuer_crl.tbs_bytes(), issuer_crl.signature
            ):
                raise CrlError(f"CRL from {cert.issuer!r} has a bad signature")
            if issuer_crl.is_stale(now_ns):
                raise CrlError(f"CRL from {cert.issuer!r} is stale")
            if issuer_crl.is_revoked(cert.serial):
                raise CrlError(
                    f"certificate {cert.subject!r} (serial {cert.serial}) revoked"
                )

    root = path[-1]
    if not root.is_self_signed():
        raise CertificateError(f"trusted root {root.subject!r} is not self-signed")
    if not root.verify_signature(root.public_key):
        raise CertificateError(f"trusted root {root.subject!r} self-signature invalid")
