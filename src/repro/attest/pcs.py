"""Simulated Intel Provisioning Certification Service (PCS).

The TDX verification flow (go-tdx-guest over DCAP's Quote Verification
Library) retrieves collateral from Intel's online PCS: the PCK
certificate CRLs, TCB info for the platform, and the QE identity.
Those are real HTTPS round-trips in the paper's setup — the reason the
TDX "check" phase is the slow bar in Fig. 5.

The simulated PCS owns the Intel key hierarchy (Intel SGX/TDX Root CA
→ PCK Platform CA → per-platform PCK leaf) and serves collateral
documents; every ``fetch_*`` charges a WAN round-trip on the caller's
execution context.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass

from repro.attest.certs import (
    Certificate,
    CertificateAuthority,
    CertificateRevocationList,
)
from repro.attest.crypto import RsaKeyPair, derived_keypair
from repro.errors import AttestationError, CollateralTimeoutError
from repro.guestos.context import ExecContext
from repro.hw.nic import NicModel, wan_path
from repro.sim.faults import CircuitBreaker, FaultKind
from repro.sim.rng import SimRng

#: Virtual time a timed-out collateral fetch burns before the client
#: gives up (a WAN timeout is far costlier than a healthy round-trip).
_TIMEOUT_BUDGET_NS = 150_000_000.0


class Staleness(enum.Enum):
    """Verdict on a cached collateral document's age."""

    FRESH = "fresh"
    STALE_ACCEPTABLE = "stale-but-acceptable"
    REJECT = "reject"


@dataclass(frozen=True)
class FreshnessPolicy:
    """Per-document staleness rules for cached collateral.

    Two document families exist:

    - **TTL documents** (TCB info, QE identity): fresh while their age
      is strictly below ``ttl_ns``.
    - **CRLs**: fresh while ``now < next_update`` — the signed expiry
      the document itself carries, checked with the same strict
      less-than every CRL consumer uses (no clock-skew divergence on
      the boundary).

    Beyond freshness, a grace window of ``max_stale_ns`` yields
    :attr:`Staleness.STALE_ACCEPTABLE` — a degraded host may keep
    serving such documents (explicitly marked) instead of failing —
    after which the verdict is :attr:`Staleness.REJECT`: the document
    may hide revocations and must not be used.
    """

    #: Age bound for TTL documents (~24 virtual hours by default).
    ttl_ns: float = 24 * 3600 * 1e9
    #: Grace window past expiry before a document is rejected
    #: (~6 virtual hours by default).
    max_stale_ns: float = 6 * 3600 * 1e9

    def __post_init__(self) -> None:
        if self.ttl_ns <= 0:
            raise AttestationError(f"ttl must be > 0, got {self.ttl_ns}")
        if self.max_stale_ns < 0:
            raise AttestationError(
                f"stale grace window must be >= 0, got {self.max_stale_ns}")

    def classify(self, document: object, stored_at_ns: float,
                 now_ns: float) -> Staleness:
        """Verdict for ``document`` cached at ``stored_at_ns``.

        A clock that regressed below the store time (a fresh trial
        context reusing long-lived infrastructure) clamps the age to
        zero — the document cannot be older than its own fetch.
        """
        if isinstance(document, CertificateRevocationList):
            if not document.is_stale(now_ns):
                return Staleness.FRESH
            if now_ns < document.next_update + self.max_stale_ns:
                return Staleness.STALE_ACCEPTABLE
            return Staleness.REJECT
        age_ns = max(0.0, now_ns - stored_at_ns)
        if age_ns < self.ttl_ns:
            return Staleness.FRESH
        if age_ns < self.ttl_ns + self.max_stale_ns:
            return Staleness.STALE_ACCEPTABLE
        return Staleness.REJECT


DEFAULT_FRESHNESS = FreshnessPolicy()


class RequestLog:
    """A bounded request log: ring buffer plus a dropped-entry count.

    Behaves like the plain list it replaces for every consumer pattern
    (append, ``len``, indexing and slicing, iteration, equality with a
    list) but caps memory: once ``capacity`` entries are held, each
    append evicts the oldest entry and bumps :attr:`dropped`, so
    million-launch sweeps cannot grow the log without bound while the
    *recent* window — the part tests and operators inspect — is exact.
    """

    __slots__ = ("capacity", "dropped", "_entries")

    def __init__(self, capacity: int = 8192) -> None:
        if capacity < 1:
            raise AttestationError(
                f"request log capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.dropped = 0
        self._entries: list[str] = []

    def append(self, entry: str) -> None:
        if len(self._entries) >= self.capacity:
            del self._entries[0]
            self.dropped += 1
        self._entries.append(entry)

    def __len__(self) -> int:
        return len(self._entries)

    def __getitem__(self, index):
        return self._entries[index]

    def __iter__(self):
        return iter(self._entries)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, RequestLog):
            return self._entries == other._entries
        if isinstance(other, list):
            return self._entries == other
        return NotImplemented

    def __repr__(self) -> str:
        return (f"RequestLog({self._entries!r}, "
                f"capacity={self.capacity}, dropped={self.dropped})")


@dataclass(frozen=True)
class TcbInfo:
    """Signed TCB (trusted computing base) status for a platform."""

    fmspc: str                  # platform family-model-stepping id
    tcb_svn: str                # minimum acceptable security version
    status: str                 # "UpToDate" | "OutOfDate" | ...
    signature: bytes

    def payload(self) -> bytes:
        return json.dumps(
            {"fmspc": self.fmspc, "tcb_svn": self.tcb_svn, "status": self.status},
            sort_keys=True,
        ).encode()


@dataclass(frozen=True)
class QeIdentity:
    """Signed identity (measurement) of the Quoting Enclave."""

    mrsigner: str
    isv_svn: int
    signature: bytes

    def payload(self) -> bytes:
        return json.dumps(
            {"mrsigner": self.mrsigner, "isv_svn": self.isv_svn}, sort_keys=True
        ).encode()


class IntelPcs:
    """The PCS endpoint plus the Intel CA hierarchy behind it.

    With a :class:`~repro.sim.faults.CircuitBreaker` attached, repeated
    collateral timeouts trip the circuit: further fetches short-circuit
    to the last good document for the endpoint (logged as
    ``<endpoint>!cached``) instead of burning the full client-side
    timeout budget, or fail immediately (``<endpoint>!open``) when no
    collateral was ever cached.  Without a breaker the behaviour — and
    the request log, cost accounting, and returned documents — is
    byte-identical to the pre-breaker PCS.
    """

    def __init__(
        self,
        rng: SimRng,
        fmspc: str = "50806F000000",
        tcb_svn: str = "TDX_1.5.05.46.698",
        network: NicModel | None = None,
        breaker: CircuitBreaker | None = None,
        freshness: FreshnessPolicy | None = None,
        log_capacity: int = 8192,
    ) -> None:
        self.rng = rng.child("intel-pcs")
        self.network = network if network is not None else wan_path()
        self.root_ca = CertificateAuthority("Intel SGX Root CA", self.rng)
        self.pck_ca = CertificateAuthority(
            "Intel PCK Platform CA", self.rng, issuer_ca=self.root_ca
        )
        self.fmspc = fmspc
        self.tcb_svn = tcb_svn
        self._tcb_signing_key: RsaKeyPair = derived_keypair(
            self.rng, "tcb-signing"
        )
        self.tcb_signing_cert = self.root_ca.issue(
            "Intel TCB Signing", self._tcb_signing_key.public
        )
        self.request_log = RequestLog(capacity=log_capacity)
        self.breaker = breaker
        self.freshness = (freshness if freshness is not None
                          else DEFAULT_FRESHNESS)
        #: endpoint -> last successfully fetched document (served when
        #: the circuit is open, so degraded trials keep attesting —
        #: subject to :attr:`freshness`)
        self.collateral_cache: dict[str, object] = {}
        #: endpoint -> virtual fetch time of the cached document
        self.collateral_fetched_at: dict[str, float] = {}

    # -- provisioning (no network: happens at manufacturing time) -------

    def provision_pck(self, platform_id: str, key) -> Certificate:
        """Issue the per-platform PCK certificate."""
        return self.pck_ca.issue(
            f"PCK {platform_id}", key, extensions={"fmspc": self.fmspc}
        )

    # -- collateral endpoints (each costs a WAN round-trip) --------------

    def _round_trip(self, ctx: ExecContext, endpoint: str, payload_bytes: int) -> None:
        faults = getattr(ctx, "faults", None)
        if faults is not None and faults.triggers(FaultKind.PCS_TIMEOUT, endpoint):
            # the fetch hangs until the client-side timeout fires; the
            # wasted wait is still network time on the caller's ledger
            self.request_log.append(endpoint + "!timeout")
            ctx.charge_network(_TIMEOUT_BUDGET_NS)
            raise CollateralTimeoutError(
                f"PCS {endpoint}: collateral fetch timed out"
            )
        self.request_log.append(endpoint)
        cost = self.network.round_trip(payload_bytes, self.rng)
        ctx.charge_network(cost)

    def _fetch(self, ctx: ExecContext, endpoint: str, payload_bytes: int,
               build):
        """One collateral GET, supervised by the optional breaker.

        An open circuit short-circuits without any network charge —
        but never serves arbitrarily old documents: the cached
        fallback is classified by :attr:`freshness` first.  A fresh
        document is served as before (``!cached``); one inside the
        grace window is served *marked* (``!stale``) so degraded
        operation is visible in the log; one past the grace window is
        evicted and the fetch fails (``!open``) — a revoked or rotated
        document must not keep attesting forever.  Successes refresh
        the cache and close the circuit; timeouts feed the breaker's
        failure count.
        """
        if self.breaker is not None and not self.breaker.allow(
                ctx.clock.now()):
            cached = self.collateral_cache.get(endpoint)
            if cached is not None:
                verdict = self.freshness.classify(
                    cached, self.collateral_fetched_at.get(endpoint, 0.0),
                    ctx.clock.now())
                if verdict is Staleness.FRESH:
                    self.request_log.append(endpoint + "!cached")
                    return cached
                if verdict is Staleness.STALE_ACCEPTABLE:
                    self.request_log.append(endpoint + "!stale")
                    return cached
                # REJECT: too old to trust — drop it and fail the fetch
                del self.collateral_cache[endpoint]
                self.collateral_fetched_at.pop(endpoint, None)
            self.request_log.append(endpoint + "!open")
            raise CollateralTimeoutError(
                f"PCS {endpoint}: circuit open and no acceptable "
                "cached collateral")
        try:
            self._round_trip(ctx, endpoint, payload_bytes)
        except CollateralTimeoutError:
            if self.breaker is not None:
                self.breaker.record_failure(ctx.clock.now())
            raise
        document = build()
        if self.breaker is not None:
            self.breaker.record_success(ctx.clock.now())
        self.collateral_cache[endpoint] = document
        self.collateral_fetched_at[endpoint] = ctx.clock.now()
        return document

    def evict_expired(self, now_ns: float) -> int:
        """Drop every cached document the freshness policy rejects.

        Long sweeps call this (the verifier service does on collateral
        rotation) so the cache holds at most one live document per
        endpoint instead of growing a graveyard of unusable ones.
        Returns the number of evicted entries.
        """
        rejected = [
            endpoint for endpoint, document in self.collateral_cache.items()
            if self.freshness.classify(
                document, self.collateral_fetched_at.get(endpoint, 0.0),
                now_ns) is Staleness.REJECT
        ]
        for endpoint in rejected:
            del self.collateral_cache[endpoint]
            self.collateral_fetched_at.pop(endpoint, None)
        return len(rejected)

    def fetch_tcb_info(self, ctx: ExecContext) -> TcbInfo:
        """GET /tcb — signed TCB status for the platform."""

        def build() -> TcbInfo:
            unsigned = TcbInfo(fmspc=self.fmspc, tcb_svn=self.tcb_svn,
                               status="UpToDate", signature=b"")
            return TcbInfo(
                fmspc=unsigned.fmspc,
                tcb_svn=unsigned.tcb_svn,
                status=unsigned.status,
                signature=self._tcb_signing_key.sign(unsigned.payload()),
            )

        return self._fetch(ctx, "/sgx/certification/v4/tcb", 6_000, build)

    def fetch_qe_identity(self, ctx: ExecContext) -> QeIdentity:
        """GET /qe/identity — signed QE identity."""

        def build() -> QeIdentity:
            unsigned = QeIdentity(mrsigner="intel-qe-signer", isv_svn=2,
                                  signature=b"")
            return QeIdentity(
                mrsigner=unsigned.mrsigner,
                isv_svn=unsigned.isv_svn,
                signature=self._tcb_signing_key.sign(unsigned.payload()),
            )

        return self._fetch(ctx, "/sgx/certification/v4/qe/identity", 3_000,
                           build)

    def fetch_root_crl(self, ctx: ExecContext) -> CertificateRevocationList:
        """GET /rootcacrl — the root CA's CRL."""
        return self._fetch(ctx, "/sgx/certification/v4/rootcacrl", 1_500,
                           lambda: self.root_ca.crl(now_ns=ctx.clock.now()))

    def fetch_pck_crl(self, ctx: ExecContext) -> CertificateRevocationList:
        """GET /pckcrl — the PCK platform CA's CRL."""
        return self._fetch(ctx, "/sgx/certification/v4/pckcrl", 2_500,
                           lambda: self.pck_ca.crl(now_ns=ctx.clock.now()))

    def verify_tcb_signature(self, tcb: TcbInfo) -> bool:
        """Check a TCB document against the TCB signing certificate."""
        return self.tcb_signing_cert.public_key.verify(tcb.payload(), tcb.signature)

    def verify_qe_identity_signature(self, identity: QeIdentity) -> bool:
        """Check a QE identity document's signature."""
        return self.tcb_signing_cert.public_key.verify(
            identity.payload(), identity.signature
        )


def require_fresh_status(tcb: TcbInfo) -> None:
    """Reject platforms whose TCB is not up to date."""
    if tcb.status != "UpToDate":
        raise AttestationError(f"platform TCB status is {tcb.status!r}")
