"""Pure-Python RSA with SHA-384 signatures.

This is a *functional* implementation — keys are generated with
Miller–Rabin primality testing, signatures really are modular
exponentiations, and verification fails on tampered messages — sized
for simulation use (default 1024-bit keys keep tests fast; the
infrastructure supports larger).  It is **not** hardened production
cryptography (no constant-time arithmetic, no blinding); the point is
to exercise real signing/verification code paths in the attestation
protocols.

The signature scheme follows the PKCS#1 v1.5 shape: the SHA-384
digest is wrapped in a DER-like prefix, padded with ``0x01 0xFF..FF
0x00``, and exponentiated with the private key.
"""

from __future__ import annotations

from dataclasses import dataclass
import hashlib

from repro.errors import AttestationError
from repro.sim.rng import SimRng

# DigestInfo-style prefix identifying SHA-384 (simplified DER header).
_SHA384_PREFIX = bytes.fromhex("3041300d060960864801650304020205000430")

_SMALL_PRIMES = (
    3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61,
    67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113,
)


def _is_probable_prime(n: int, rng: SimRng, rounds: int = 24) -> bool:
    """Miller–Rabin primality test."""
    if n < 2:
        return False
    if n == 2:
        return True
    if n % 2 == 0:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    # write n - 1 = d * 2^r with d odd
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = rng.randint(2, n - 2)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def _generate_prime(bits: int, rng: SimRng) -> int:
    """A random probable prime with exactly ``bits`` bits."""
    if bits < 8:
        raise AttestationError(f"prime size too small: {bits} bits")
    while True:
        candidate = rng.getrandbits(bits)
        candidate |= (1 << (bits - 1)) | 1   # top bit + odd
        if _is_probable_prime(candidate, rng):
            return candidate


@dataclass(frozen=True)
class RsaPublicKey:
    """An RSA public key ``(n, e)``."""

    n: int
    e: int

    @property
    def bits(self) -> int:
        return self.n.bit_length()

    @property
    def byte_length(self) -> int:
        return (self.bits + 7) // 8

    def fingerprint(self) -> str:
        """Stable hex identifier of this key."""
        material = f"{self.n:x}:{self.e:x}".encode()
        return hashlib.sha256(material).hexdigest()[:24]

    def verify(self, message: bytes, signature: bytes) -> bool:
        """True iff ``signature`` is a valid signature of ``message``."""
        if len(signature) != self.byte_length:
            return False
        sig_int = int.from_bytes(signature, "big")
        if sig_int >= self.n:
            return False
        recovered = pow(sig_int, self.e, self.n)
        expected = int.from_bytes(_pad_digest(message, self.byte_length), "big")
        return recovered == expected


@dataclass(frozen=True, repr=False)
class RsaKeyPair:
    """An RSA key pair; keep the private exponent private."""

    public: RsaPublicKey
    d: int

    def __repr__(self) -> str:
        # never include d: a stray repr in a log line, exception
        # message, or journal record must not leak the private half
        return (f"RsaKeyPair(fingerprint={self.public.fingerprint()}, "
                f"bits={self.public.bits})")

    def sign(self, message: bytes) -> bytes:
        """PKCS#1 v1.5-style SHA-384 signature of ``message``."""
        k = self.public.byte_length
        padded = int.from_bytes(_pad_digest(message, k), "big")
        signature = pow(padded, self.d, self.public.n)
        return signature.to_bytes(k, "big")


def _pad_digest(message: bytes, k: int) -> bytes:
    """EMSA-PKCS1-v1_5 encoding of the SHA-384 digest of ``message``."""
    digest = hashlib.sha384(message).digest()
    t = _SHA384_PREFIX + digest
    if k < len(t) + 11:
        raise AttestationError(
            f"modulus too small ({k} bytes) for SHA-384 signatures"
        )
    padding = b"\xff" * (k - len(t) - 3)
    return b"\x00\x01" + padding + b"\x00" + t


def generate_keypair(rng: SimRng, bits: int = 1024, e: int = 65537) -> RsaKeyPair:
    """Generate an RSA key pair from a deterministic stream.

    Parameters
    ----------
    rng:
        Seeded stream; the same stream state yields the same key.
    bits:
        Modulus size.  1024 keeps simulation tests fast; use 2048+
        where realism matters more than speed.
    e:
        Public exponent.
    """
    if bits < 768:
        # SHA-384 PKCS#1 v1.5 padding needs >= 78 modulus bytes
        raise AttestationError(f"refusing to generate {bits}-bit RSA keys (< 768)")
    half = bits // 2
    while True:
        p = _generate_prime(half, rng)
        q = _generate_prime(bits - half, rng)
        if p == q:
            continue
        n = p * q
        if n.bit_length() != bits:
            continue
        phi = (p - 1) * (q - 1)
        try:
            d = pow(e, -1, phi)
        except ValueError:
            continue   # e not invertible mod phi; rare, retry
        return RsaKeyPair(public=RsaPublicKey(n=n, e=e), d=d)


#: Process-level cache for :func:`derived_keypair`.  Keyed by the
#: parent stream's (seed, label) plus the child label and key size —
#: which fully determine the generated key, because child streams are
#: label-derived (fresh state) rather than split off the parent's
#: consumed state.
_KEYPAIR_CACHE: dict[tuple[int, str, str, int], RsaKeyPair] = {}


def derived_keypair(parent: SimRng, label: str,
                    bits: int = 1024) -> RsaKeyPair:
    """``generate_keypair(parent.child(label), bits)``, memoized.

    Miller-Rabin prime generation in pure Python is the wall-clock
    hot spot of attestation infrastructure bring-up; since the result
    is a pure function of ``(parent.seed, parent.label, label, bits)``
    it is cached per process, so per-trial infrastructure rebuilds
    (the runner pipeline's purity requirement) stop paying for keygen.
    """
    key = (parent.seed, parent.label, label, bits)
    cached = _KEYPAIR_CACHE.get(key)
    if cached is None:
        cached = generate_keypair(parent.child(label), bits)
        # Pure-function memo: the key fully determines the value, so
        # hitting the cache never couples one trial to another.
        _KEYPAIR_CACHE[key] = cached  # confbench: allow[purity]
    return cached


# Virtual-time cost constants for the attestation experiment.  Real
# hardware does RSA/ECDSA far faster than pure Python, so the bench
# charges these calibrated figures instead of wall-clock time.
SIGN_COST_NS = 1_350_000.0      # one signature (~1.35 ms, SW crypto)
VERIFY_COST_NS = 110_000.0      # one verification (~0.11 ms, e = 65537)
DIGEST_COST_PER_BYTE_NS = 3.1   # hashing throughput
