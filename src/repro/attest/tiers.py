"""One collateral-tier abstraction for every cache in the tree.

Two collateral caches grew independently: PR 8's
:class:`~repro.attest.service.TieredCollateral` (per-host → cluster
CDN → PCS origin, freshness-classified documents) and PR 9's
``repro.core.cluster`` per-zone tiers (fixed tier costs, outage
windows, stale-serving).  They model the same economics, so this
module unifies them behind one protocol:

- :class:`CollateralTier` — the ABC.  One ``fetch(doc, now_ns)``
  surface returning a :class:`TierHit` (which tier answered, what it
  cost, optionally the document itself) or ``None`` when no tier can
  answer; a shared ``hits`` counter dict with one standard key per
  tier label; a shared ``serve_stale`` policy knob (the PR 8 stance:
  a copy inside the grace window is served *marked* rather than
  failing the caller); and one ``emit(sink, prefix)`` folding the
  counters into any duck-typed metrics sink.
- :class:`TierStore` — the dumb per-tier document store both
  implementations build on (endpoint → (document, stored-at ns)).
- :class:`ZonedCollateral` — THE zone-scale implementation (moved
  here from ``repro.core.cluster.collateral``, which is now a
  warn-once deprecation shim).  Host warmth is keyed by the caller's
  ``doc.host`` identity string, so the tier works for any orchestrator
  that can name its hosts — it no longer mutates cluster-node state.

``repro.attest.service.TieredCollateral`` subclasses the ABC too: its
charged ``fetch_*(ctx)`` provider methods remain (they price network
time on a live execution context), while the uniform ``fetch(doc,
now_ns)`` surface resolves against the already-cached tiers — the
peek the KBS and the cluster admission path share.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

#: virtual cost of resolving collateral per tier (ns) — the fixed
#: per-tier economics the cluster sweep attributes its collateral tax
#: with (the service-side TieredCollateral prices CDN hops on a live
#: NIC model instead)
HOST_TIER_NS = 200_000.0
CDN_TIER_NS = 1_200_000.0
ORIGIN_TIER_NS = 25_000_000.0

#: platforms with networked collateral; others (CCA's FVP setup) have
#: nothing to fetch and resolve as a free ``local`` hit
NETWORKED_PLATFORMS = ("tdx", "sev-snp")


@dataclass(frozen=True)
class CollateralDoc:
    """What a caller wants resolved, and on whose behalf.

    ``name`` selects the document (an endpoint key like ``"root_crl"``
    for the service tiers, or the whole ``"bundle"`` for the
    zone-scale tiers that price collateral as one unit).  ``host`` and
    ``zone`` identify the requester — they key host-tier warmth and
    zone-replica selection; an empty ``host`` means "no host tier for
    this caller".
    """

    name: str = "bundle"
    platform: str = "tdx"
    host: str = ""
    zone: str = ""


@dataclass(frozen=True)
class TierHit:
    """One resolved fetch: the answering tier label and its price.

    ``tier`` is one of the standard labels (``host`` / ``cdn`` /
    ``origin`` / ``stale`` / ``local``); ``document`` rides along when
    the tier holds real documents (the service tiers) and is ``None``
    for cost-only models (the zone tiers).
    """

    tier: str
    cost_ns: float
    document: object | None = None


class CollateralTier(abc.ABC):
    """The one collateral-tier protocol both call sites share.

    Subclasses implement :meth:`fetch`; the base class owns the
    standard counter dict (one key per tier label, plus
    ``outage_failures`` for resolutions that failed outright), the
    stale-serving policy knob, and the sink-folding ``emit``.
    """

    #: the standard counter keys, in the order ``emit`` folds them
    HIT_KEYS = ("host", "cdn", "origin", "stale", "outage_failures",
                "local")

    def __init__(self, serve_stale: bool = True) -> None:
        #: stale-serving policy: serve grace-window copies (marked as
        #: the ``stale`` pseudo-tier) instead of failing the caller
        self.serve_stale = serve_stale
        #: tier label -> resolutions answered by that tier
        self.hits: dict[str, int] = {key: 0 for key in self.HIT_KEYS}

    @abc.abstractmethod
    def fetch(self, doc: CollateralDoc, now_ns: float) -> TierHit | None:
        """Resolve ``doc`` through the cheapest warm tier.

        Returns the :class:`TierHit` that answered, or ``None`` when
        no tier can (cold caches behind an unreachable origin) — the
        caller decides whether that fails the launch or re-places it.
        Implementations count every outcome in :attr:`hits`.
        """

    def origin_blacked_out(self, zone: str, now_ns: float) -> bool:
        """Whether the origin is unreachable for ``zone`` at ``now_ns``.

        The base implementation knows no outages; subclasses with an
        outage model (fault windows, open breakers) override this.
        """
        return False

    def emit(self, sink, prefix: str = "collateral") -> None:
        """Fold the standard tier counters into a metrics sink."""
        for name in self.HIT_KEYS:
            sink.count(f"{prefix}.{name}", self.hits[name])


class TierStore:
    """One cache tier: endpoint → (document, stored-at virtual ns)."""

    __slots__ = ("name", "entries")

    def __init__(self, name: str) -> None:
        self.name = name
        self.entries: dict[str, tuple[object, float]] = {}

    def get(self, endpoint: str) -> "tuple[object, float] | None":
        return self.entries.get(endpoint)

    def put(self, endpoint: str, document: object, now_ns: float) -> None:
        self.entries[endpoint] = (document, now_ns)

    def evict(self, endpoint: str) -> None:
        self.entries.pop(endpoint, None)

    def __len__(self) -> int:
        return len(self.entries)


class ZonedCollateral(CollateralTier):
    """Zone-replicated collateral caches plus an origin with outages.

    The zone-scale economics from PR 9: every zone runs its own CDN
    replica, each host keeps a host-side cache (keyed by the caller's
    ``doc.host`` identity), and the origin sits across the WAN.  A
    fetch resolves through the cheapest warm tier:

    - ``host``   — cached for the requesting host: one IPC hop;
    - ``cdn``    — the zone replica is warm: a LAN hop, and the fetch
      warms the host tier on the way through;
    - ``origin`` — cold everywhere: the WAN round-trip, warming both
      the zone CDN and the host;
    - ``stale``  — the origin is blacked out (a ``collateral-outage``
      window in :attr:`outages`) but the zone replica holds a copy it
      cannot refresh: serve it stale (when :attr:`serve_stale`),
      attributed to the ``stale`` pseudo-tier at the CDN price;
    - a blackout with a cold CDN returns ``None`` — the caller
      re-places in another zone (or degrades with a record).

    Costs are fixed per tier so a sweep's collateral tax is exactly
    attributable to its hit pattern.
    """

    def __init__(self, zones: tuple[str, ...] = (),
                 serve_stale: bool = True) -> None:
        super().__init__(serve_stale=serve_stale)
        self.zones = tuple(zones)
        #: zone -> (start_ns, end_ns) origin blackout window
        self.outages: dict[str, tuple[float, float]] = {}
        #: (zone, platform) -> True once a fetch warmed the replica
        self.cdn_warm: dict[tuple[str, str], bool] = {}
        #: (host, platform) -> True once a fetch warmed the host cache
        self.host_warm: dict[tuple[str, str], bool] = {}

    def origin_blacked_out(self, zone: str, now_ns: float) -> bool:
        window = self.outages.get(zone)
        return window is not None and window[0] <= now_ns < window[1]

    def fetch(self, doc: CollateralDoc, now_ns: float) -> TierHit | None:
        if doc.platform not in NETWORKED_PLATFORMS:
            self.hits["local"] += 1
            return TierHit(tier="local", cost_ns=0.0)
        if doc.host and self.host_warm.get((doc.host, doc.platform)):
            self.hits["host"] += 1
            return TierHit(tier="host", cost_ns=HOST_TIER_NS)
        key = (doc.zone, doc.platform)
        if self.cdn_warm.get(key):
            if self.origin_blacked_out(doc.zone, now_ns):
                if not self.serve_stale:
                    self.hits["outage_failures"] += 1
                    return None
                # the replica holds a copy it cannot refresh: serve it
                # stale — marked, never silently
                self.hits["stale"] += 1
                tier = "stale"
            else:
                self.hits["cdn"] += 1
                tier = "cdn"
            if doc.host:
                self.host_warm[(doc.host, doc.platform)] = True
            return TierHit(tier=tier, cost_ns=CDN_TIER_NS)
        if self.origin_blacked_out(doc.zone, now_ns):
            self.hits["outage_failures"] += 1
            return None
        self.hits["origin"] += 1
        self.cdn_warm[key] = True
        if doc.host:
            self.host_warm[(doc.host, doc.platform)] = True
        return TierHit(tier="origin", cost_ns=ORIGIN_TIER_NS)
