"""Attestation stack.

Reimplements, from scratch, the two attestation flows the paper
measures in Fig. 5:

- **Intel TDX**: the TD obtains a TDREPORT via TDCALL, the Quoting
  Enclave (DCAP) turns it into a signed *quote*, and the verifier
  checks it against collateral (TCB info, QE identity, CRLs) fetched
  over the network from the Intel Provisioning Certification Service
  (PCS) — the network round-trips are why TDX's "check" step is the
  slow one in the paper.
- **AMD SEV-SNP**: the guest requests a report from the AMD-SP
  firmware, signed with the chip-unique VCEK; the verifier obtains
  the ARK→ASK→VCEK chain *from the hardware/host* (no network) and
  validates report signature and fields in three steps, which is why
  both SNP phases are fast.

Cryptography is real: pure-Python RSA (Miller–Rabin key generation,
PKCS#1 v1.5-style SHA-384 signatures), JSON-canonical certificates,
chains and CRLs.  Virtual time for crypto operations is charged
through the execution context so the Fig. 5 bench can measure it.
"""

from repro.attest.crypto import RsaKeyPair, RsaPublicKey, generate_keypair
from repro.attest.certs import (
    Certificate,
    CertificateAuthority,
    CertificateRevocationList,
    verify_chain,
)
from repro.attest.pcs import (
    DEFAULT_FRESHNESS,
    FreshnessPolicy,
    IntelPcs,
    RequestLog,
    Staleness,
)
from repro.attest.tiers import (
    CollateralDoc,
    CollateralTier,
    TierHit,
    TierStore,
    ZonedCollateral,
)
from repro.attest.service import (
    Admission,
    AttestationSession,
    LaunchAttestor,
    LaunchVerdict,
    SessionCache,
    TieredCollateral,
    VerificationJob,
    VerifierService,
)
from repro.attest.tdx_quote import QuotingEnclave, TdxQuote, generate_tdx_quote
from repro.attest.snp_report import (
    AmdKeyInfrastructure,
    SnpAttestationReport,
    generate_snp_report,
)
from repro.attest.verifier import (
    SnpVerifier,
    TdxVerifier,
    VerificationResult,
)
from repro.attest.cca_token import (
    RealmToken,
    RealmTokenVerifier,
    request_realm_token,
)

__all__ = [
    "RsaKeyPair",
    "RsaPublicKey",
    "generate_keypair",
    "Certificate",
    "CertificateAuthority",
    "CertificateRevocationList",
    "verify_chain",
    "IntelPcs",
    "Staleness",
    "FreshnessPolicy",
    "DEFAULT_FRESHNESS",
    "RequestLog",
    "CollateralDoc",
    "CollateralTier",
    "TierHit",
    "TierStore",
    "ZonedCollateral",
    "TieredCollateral",
    "AttestationSession",
    "SessionCache",
    "VerificationJob",
    "LaunchVerdict",
    "VerifierService",
    "Admission",
    "LaunchAttestor",
    "QuotingEnclave",
    "TdxQuote",
    "generate_tdx_quote",
    "AmdKeyInfrastructure",
    "SnpAttestationReport",
    "generate_snp_report",
    "TdxVerifier",
    "SnpVerifier",
    "VerificationResult",
    "RealmToken",
    "RealmTokenVerifier",
    "request_realm_token",
]
