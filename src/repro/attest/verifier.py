"""Verifier-side attestation flows (the "check" step of Fig. 5).

Two verifiers with deliberately asymmetric I/O profiles:

- :class:`TdxVerifier` mirrors go-tdx-guest: it must *fetch
  collateral over the network* — TCB info, QE identity and two CRLs
  from the Intel PCS — before walking the PCK chain and checking the
  quote signature.  Four WAN round-trips dominate its latency.
- :class:`SnpVerifier` mirrors snpguest's three-step process: (1)
  obtain the ARK→ASK→VCEK chain from the device, (2) verify the
  chain against the pinned ARK, (3) verify the report signature and
  fields.  Everything is local, so it is fast.

Both verifiers retry *transient* failures (injected transient
verification errors and PCS collateral timeouts) under a bounded
:class:`~repro.sim.faults.RetryPolicy`; each backoff is charged to
the caller's cost ledger so resilience shows up as latency, exactly
as it would against the real Intel PCS.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.attest.certs import Certificate, verify_chain
from repro.attest.crypto import DIGEST_COST_PER_BYTE_NS, VERIFY_COST_NS
from repro.attest.pcs import IntelPcs, require_fresh_status
from repro.attest.snp_report import (
    DEVICE_CERT_FETCH_NS,
    AmdKeyInfrastructure,
    SnpAttestationReport,
)
from repro.attest.tdx_quote import QuotingEnclave, TdxQuote
from repro.errors import (
    CollateralTimeoutError,
    QuoteVerificationError,
    TransientAttestationError,
)
from repro.guestos.context import ExecContext
from repro.sim.faults import (
    CircuitBreaker,
    FaultContext,
    FaultKind,
    RetryPolicy,
)


@dataclass
class VerificationResult:
    """Outcome of a verification run."""

    accepted: bool
    platform: str
    steps: list[str] = field(default_factory=list)
    elapsed_ns: float = 0.0

    def record(self, step: str) -> None:
        self.steps.append(step)


def _verify_with_retry(
    verify_once: Callable[[FaultContext | None], VerificationResult],
    ctx: ExecContext,
    policy: RetryPolicy,
    backoff_charge: Callable[[float], float],
    breaker: CircuitBreaker | None = None,
) -> VerificationResult:
    """Run ``verify_once`` under the retry policy, charging backoffs.

    Each attempt gets its own scoped :class:`FaultContext` (derived
    from ``ctx.faults`` when present) so a retried collateral fetch
    re-rolls its fault decision instead of deterministically failing
    again.  ``ctx.faults`` is temporarily swapped to the scoped child
    for the attempt's duration so the PCS sees the same stream.

    With a ``breaker``, attempt outcomes feed its state machine, and
    an open circuit *fails fast*: the attempt (and its backoff) is
    skipped entirely, surfacing the last-resort
    :class:`CollateralTimeoutError` immediately — which the trial
    runner then degrades instead of retrying — so fault storms stop
    costing a full retry ladder per trial.
    """
    base = getattr(ctx, "faults", None)
    attempt = 0
    spent = 0.0
    while True:
        if breaker is not None and not breaker.allow(ctx.clock.now()):
            raise CollateralTimeoutError(
                "verification circuit open: failing fast without retries")
        scoped = base.scoped(f"verify/a{attempt}") if base is not None else None
        if base is not None:
            ctx.faults = scoped
        try:
            result = verify_once(scoped)
        except (TransientAttestationError, CollateralTimeoutError):
            if breaker is not None:
                breaker.record_failure(ctx.clock.now())
            if not policy.allows(attempt + 1, spent):
                raise
            backoff = policy.backoff_ns(attempt)
            trace = getattr(ctx, "trace", None)
            if trace is not None:
                with trace.span("retry", ctx):
                    backoff_charge(backoff)
            else:
                backoff_charge(backoff)
            spent += backoff
            attempt += 1
        else:
            if breaker is not None:
                breaker.record_success(ctx.clock.now())
            return result
        finally:
            if base is not None:
                ctx.faults = base


class TdxVerifier:
    """Remote verifier for TDX quotes (collateral from the PCS)."""

    def __init__(self, pcs: IntelPcs, trusted_root: Certificate | None = None,
                 retry_policy: RetryPolicy | None = None,
                 breaker: CircuitBreaker | None = None,
                 collateral=None) -> None:
        self.pcs = pcs
        self.trusted_root = (
            trusted_root if trusted_root is not None else pcs.root_ca.certificate
        )
        self.retry_policy = (
            retry_policy if retry_policy is not None else RetryPolicy()
        )
        # Attach the breaker to either the PCS (per-fetch granularity,
        # cached-collateral fallback) or the verifier (per-attempt
        # fail-fast) — not the same instance to both, or each timeout
        # would be counted twice.
        self.breaker = breaker
        #: where collateral documents come from.  Defaults to the PCS
        #: itself (every fetch is a WAN round-trip); the verifier
        #: service swaps in a
        #: :class:`~repro.attest.service.TieredCollateral` so warm
        #: host/CDN tiers answer instead.  Duck-typed on the four
        #: ``fetch_*`` methods.
        self.collateral = collateral if collateral is not None else pcs

    def verify(self, quote: TdxQuote, ctx: ExecContext,
               expected_report_data: bytes | None = None) -> VerificationResult:
        """Full quote verification; charges network + crypto to ``ctx``.

        Transient failures (injected transients, PCS timeouts) retry
        under the verifier's policy with backoff charged as network
        time.  Raises :class:`QuoteVerificationError` on any failed
        check, or the last transient error once retries are exhausted.
        """
        return _verify_with_retry(
            lambda faults: self._verify_once(
                quote, ctx, expected_report_data, faults),
            ctx,
            self.retry_policy,
            ctx.charge_network,
            breaker=self.breaker,
        )

    def _verify_once(self, quote: TdxQuote, ctx: ExecContext,
                     expected_report_data: bytes | None,
                     faults: FaultContext | None) -> VerificationResult:
        start = ctx.ledger.total()
        result = VerificationResult(accepted=False, platform="tdx")
        if faults is not None and faults.triggers(
                FaultKind.ATTEST_TRANSIENT, "transient"):
            raise TransientAttestationError(
                "tdx: injected transient verification failure")

        # 1. collateral retrieval — the expensive, networked part
        # (or a warm cache tier, when the verifier service wires one)
        tcb = self.collateral.fetch_tcb_info(ctx)
        result.record("fetch_tcb_info")
        qe_identity = self.collateral.fetch_qe_identity(ctx)
        result.record("fetch_qe_identity")
        root_crl = self.collateral.fetch_root_crl(ctx)
        result.record("fetch_root_crl")
        pck_crl = self.collateral.fetch_pck_crl(ctx)
        result.record("fetch_pck_crl")

        # 2. collateral signature checks
        ctx.crypto(2 * VERIFY_COST_NS)
        if not self.pcs.verify_tcb_signature(tcb):
            raise QuoteVerificationError("TCB info signature invalid")
        if not self.pcs.verify_qe_identity_signature(qe_identity):
            raise QuoteVerificationError("QE identity signature invalid")
        require_fresh_status(tcb)
        result.record("collateral_verified")

        # 3. TCB level of the quote vs collateral
        if quote.tee_tcb_svn != tcb.tcb_svn:
            raise QuoteVerificationError(
                f"quote TCB {quote.tee_tcb_svn!r} does not match "
                f"collateral TCB {tcb.tcb_svn!r}"
            )
        result.record("tcb_matched")

        # 4. QE identity of the quote vs collateral
        if (quote.qe_mrsigner != qe_identity.mrsigner
                or quote.qe_isv_svn < qe_identity.isv_svn):
            raise QuoteVerificationError("quoting enclave identity mismatch")
        result.record("qe_identity_matched")

        # 5. PCK chain walk with CRLs
        if len(quote.cert_chain) != 3:
            raise QuoteVerificationError(
                f"expected 3-certificate chain, got {len(quote.cert_chain)}"
            )
        ctx.crypto(len(quote.cert_chain) * VERIFY_COST_NS)
        verify_chain(
            list(quote.cert_chain),
            self.trusted_root,
            now_ns=1.0,
            crls={
                self.pcs.root_ca.name: root_crl,
                self.pcs.pck_ca.name: pck_crl,
            },
        )
        result.record("chain_verified")

        # 6. quote signature under the attestation key
        body = quote.body_bytes()
        ctx.crypto(VERIFY_COST_NS + len(body) * DIGEST_COST_PER_BYTE_NS)
        ak_cert = quote.cert_chain[0]
        if not ak_cert.public_key.verify(body, quote.signature):
            raise QuoteVerificationError("quote signature invalid")
        result.record("signature_verified")

        # 7. optional freshness binding
        if expected_report_data is not None:
            expected_hex = expected_report_data.ljust(64, b"\0").hex()
            if quote.report_data_hex != expected_hex:
                raise QuoteVerificationError("report_data mismatch (stale quote?)")
            result.record("report_data_matched")

        result.accepted = True
        result.elapsed_ns = ctx.ledger.total() - start
        return result

    @staticmethod
    def expected_qe(qe: QuotingEnclave) -> tuple[str, int]:
        """The identity a quote from ``qe`` should carry (test helper)."""
        return qe.MRSIGNER, qe.ISV_SVN


class SnpVerifier:
    """Verifier for SNP reports (three local steps, no network)."""

    def __init__(self, keys: AmdKeyInfrastructure,
                 retry_policy: RetryPolicy | None = None,
                 breaker: CircuitBreaker | None = None) -> None:
        self.keys = keys
        self.trusted_ark = keys.ark.certificate
        self.retry_policy = (
            retry_policy if retry_policy is not None else RetryPolicy()
        )
        #: supervises the VCEK/device-cert path: repeated transient
        #: failures trip it, and further verifies fail fast
        self.breaker = breaker

    def verify(self, report: SnpAttestationReport, ctx: ExecContext,
               expected_report_data: bytes | None = None) -> VerificationResult:
        """snpguest-style verification; charges local costs to ``ctx``.

        Transient failures retry under the verifier's policy; backoff
        is charged as crypto time (the flow is entirely local).
        """
        return _verify_with_retry(
            lambda faults: self._verify_once(
                report, ctx, expected_report_data, faults),
            ctx,
            self.retry_policy,
            ctx.crypto,
            breaker=self.breaker,
        )

    def _verify_once(self, report: SnpAttestationReport, ctx: ExecContext,
                     expected_report_data: bytes | None,
                     faults: FaultContext | None) -> VerificationResult:
        start = ctx.ledger.total()
        result = VerificationResult(accepted=False, platform="sev-snp")
        if faults is not None and faults.triggers(
                FaultKind.ATTEST_TRANSIENT, "transient"):
            raise TransientAttestationError(
                "sev-snp: injected transient verification failure")

        # step 1: obtain the cert chain from the device (local)
        ctx.crypto(DEVICE_CERT_FETCH_NS)
        vcek_cert, ask_cert = self.keys.device_cert_chain()
        result.record("device_certs_fetched")

        # step 2: verify the chain up to the pinned ARK
        ctx.crypto(2 * VERIFY_COST_NS)
        verify_chain([vcek_cert, ask_cert], self.trusted_ark, now_ns=1.0)
        result.record("chain_verified")

        # step 3: verify report signature and fields
        if vcek_cert.extensions.get("chip_id") != report.chip_id:
            raise QuoteVerificationError(
                f"report chip {report.chip_id!r} does not match VCEK "
                f"{vcek_cert.extensions.get('chip_id')!r}"
            )
        body = report.body_bytes()
        ctx.crypto(VERIFY_COST_NS + len(body) * DIGEST_COST_PER_BYTE_NS)
        if not vcek_cert.public_key.verify(body, report.signature):
            raise QuoteVerificationError("report signature invalid")
        result.record("signature_verified")

        if expected_report_data is not None:
            expected_hex = expected_report_data.ljust(64, b"\0").hex()
            if report.report_data_hex != expected_hex:
                raise QuoteVerificationError("report_data mismatch (stale report?)")
            result.record("report_data_matched")

        result.accepted = True
        result.elapsed_ns = ctx.ledger.total() - start
        return result
