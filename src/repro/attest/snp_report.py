"""SEV-SNP attestation reports (the snpguest path).

The guest asks the AMD Secure Processor firmware for an attestation
report; the AMD-SP signs it with the chip-unique **VCEK** (Versioned
Chip Endorsement Key).  The endorsement chain is

    ARK (AMD Root Key, self-signed)
      └─ ASK (AMD SEV intermediate)
           └─ VCEK (per chip, per TCB)

and — unlike Intel's PCS flow — the chain is retrievable *from the
hardware/host itself* (certificates are cached next to the firmware),
so verification needs no network.  That asymmetry is exactly what
Fig. 5 shows: both SNP phases beat their TDX counterparts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.attest.certs import Certificate, CertificateAuthority
from repro.attest.crypto import (
    DIGEST_COST_PER_BYTE_NS,
    SIGN_COST_NS,
    RsaKeyPair,
    derived_keypair,
)
from repro.errors import AttestationError
from repro.guestos.context import ExecContext
from repro.sim.rng import SimRng
from repro.tee.sevsnp import AmdSecureProcessor, SnpReportRequest, Vmpl


@dataclass(frozen=True)
class SnpAttestationReport:
    """A VCEK-signed SNP attestation report."""

    version: int
    guest_svn: int
    vmpl: int
    measurement_hex: str
    report_data_hex: str
    chip_id: str
    signature: bytes

    def body_bytes(self) -> bytes:
        """The signed portion of the report."""
        return json.dumps(
            {
                "version": self.version,
                "guest_svn": self.guest_svn,
                "vmpl": self.vmpl,
                "measurement": self.measurement_hex,
                "report_data": self.report_data_hex,
                "chip_id": self.chip_id,
            },
            sort_keys=True,
        ).encode()


class AmdKeyInfrastructure:
    """ARK → ASK → VCEK hierarchy for one chip."""

    def __init__(self, rng: SimRng, chip_id: str = "epyc-9124-chip-0") -> None:
        self.chip_id = chip_id
        self.ark = CertificateAuthority("AMD Root Key (ARK)", rng)
        self.ask = CertificateAuthority(
            "AMD SEV Key (ASK)", rng, issuer_ca=self.ark
        )
        self._vcek_key: RsaKeyPair = derived_keypair(rng, f"vcek/{chip_id}")
        self.vcek_cert: Certificate = self.ask.issue(
            f"VCEK {chip_id}", self._vcek_key.public, extensions={"chip_id": chip_id}
        )

    @property
    def vcek_key(self) -> RsaKeyPair:
        """The chip-private VCEK (only the AMD-SP may sign with it)."""
        return self._vcek_key

    def device_cert_chain(self) -> tuple[Certificate, Certificate]:
        """The (VCEK, ASK) chain as exported by the host — no network.

        The ARK is the verifier's pinned trust anchor, so it is not
        part of the transmitted chain.
        """
        return (self.vcek_cert, self.ask.certificate)


#: Reading the cached cert chain from the host (sysfs/extended guest
#: request) — microseconds-to-milliseconds, not a WAN fetch.
DEVICE_CERT_FETCH_NS = 900_000.0


def generate_snp_report(
    amd_sp: AmdSecureProcessor,
    keys: AmdKeyInfrastructure,
    ctx: ExecContext,
    report_data: bytes,
    guest_identity: str = "snp-guest",
    vmpl: Vmpl = Vmpl.VMPL0,
) -> SnpAttestationReport:
    """The SNP "attest" step: firmware mailbox + VCEK signature.

    Charges the AMD-SP mailbox round-trip and the signing cost to
    ``ctx`` and returns the signed report.
    """
    if keys.chip_id != amd_sp.chip_id:
        raise AttestationError(
            f"key infrastructure is for chip {keys.chip_id!r}, "
            f"AMD-SP reports chip {amd_sp.chip_id!r}"
        )
    body = amd_sp.request_report(
        SnpReportRequest(report_data=report_data, vmpl=vmpl), guest_identity
    )
    ctx.crypto(amd_sp.MAILBOX_COST_NS)
    unsigned = SnpAttestationReport(
        version=2,
        guest_svn=1,
        vmpl=int(body["vmpl"]),
        measurement_hex=bytes(body["measurement"]).hex(),
        report_data_hex=bytes(body["report_data"]).hex(),
        chip_id=str(body["chip_id"]),
        signature=b"",
    )
    payload = unsigned.body_bytes()
    ctx.crypto(SIGN_COST_NS + len(payload) * DIGEST_COST_PER_BYTE_NS)
    return SnpAttestationReport(
        version=unsigned.version,
        guest_svn=unsigned.guest_svn,
        vmpl=unsigned.vmpl,
        measurement_hex=unsigned.measurement_hex,
        report_data_hex=unsigned.report_data_hex,
        chip_id=unsigned.chip_id,
        signature=keys.vcek_key.sign(payload),
    )
