"""The verifier service: attestation at production scale.

On a single launch, attestation cost is a curiosity; on a fleet it is
the critical path.  The paper's Fig. 5 shows the TDX "check" phase is
dominated by WAN round-trips to the Intel PCS — which means a cluster
launching thousands of confidential VMs re-fetches the *same* TCB
info, QE identity and CRLs over and over.  This module models the
production answer, three mechanisms deep:

- **Three-tier collateral cache** (:class:`TieredCollateral`):
  ``per-host → cluster CDN → PCS/KDS origin``.  A host-local hit
  costs an IPC lookup, a CDN hit one LAN round-trip, and only a miss
  everywhere pays the WAN fetch.  Every cached document is classified
  by the :class:`~repro.attest.pcs.FreshnessPolicy` — per-document
  TTL for TCB/QE identity, the signed ``next_update`` (strict
  less-than) for CRLs — with three verdicts: ``fresh`` is served,
  ``stale-but-acceptable`` is served only as an *explicit* fallback
  when the origin is failing, and ``reject`` is evicted.
- **Batch verification queues** (:class:`VerifierService`): quote
  verifications are processed with bounded concurrency in virtual
  time.  The queue model is deterministic — slot assignment is a pure
  fold over the jobs in submission order — so serial and parallel
  sweeps stay byte-identical, like everything else in the runner.
- **Session resumption** (:class:`SessionCache`): a tenant
  re-invoking a warm VM does not re-verify from scratch.  A session
  is keyed on (measurement, TCB level) and pinned to the earliest
  CRL expiry seen at verification time; TCB rotation or a passed
  ``next_update`` invalidates it, so resumption can never outlive
  the evidence it was minted from.

Layering: this module sits in ``attest`` (below ``obs``), so metrics
flow through the duck-typed sink protocol (``count`` / ``set_gauge``
/ ``observe``) — the gateway wires its registry in, the experiment
harness folds the counters in afterwards.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass
from typing import Any, Callable

from repro.attest.pcs import (
    DEFAULT_FRESHNESS,
    FreshnessPolicy,
    IntelPcs,
    Staleness,
)
# the protocol is imported under a private alias so the public
# ``CollateralTier`` name stays free for the module-level
# ``__getattr__`` deprecation shim below (the legacy name must keep
# resolving to the per-tier document store, now TierStore)
from repro.attest.tiers import (
    CollateralDoc,
    TierHit,
    TierStore,
)
from repro.attest.tiers import CollateralTier as _CollateralTierProtocol
from repro.errors import AttestationError, CollateralTimeoutError
from repro.guestos.context import ExecContext
from repro.hw.nic import NicModel, lan_path
from repro.sim.rng import SimRng

#: Cost of a host-local collateral lookup (shared-memory/IPC, no NIC).
HOST_HIT_NS = 30_000.0

#: Nominal cost a context-free CDN peek reports (the charged path
#: prices the hop on a live NIC model instead).
CDN_HIT_NS = 250_000.0

#: Cost of resuming a cached attestation session (one keyed lookup
#: plus a MAC over the session token — no collateral, no signatures).
RESUME_COST_NS = 120_000.0

#: Default lifetime of an attestation session (~1 virtual hour);
#: CRL expiry and TCB rotation can end it earlier.
DEFAULT_SESSION_TTL_NS = 3600 * 1e9

#: Ranking used to attribute a launch to the slowest tier it touched.
_TIER_PRIORITY = ("origin", "stale", "cdn", "host", "warm")


class TieredCollateral(_CollateralTierProtocol):
    """``per-host → cluster CDN → origin`` collateral resolution.

    Implements the same four ``fetch_*`` methods as
    :class:`~repro.attest.pcs.IntelPcs`, so it drops into
    :class:`~repro.attest.verifier.TdxVerifier` as its ``collateral``
    provider.  Pass a shared :class:`TierStore` as ``cdn`` to model
    several hosts behind one cluster cache — the first host's origin
    fetch warms the CDN for everyone else.

    When the origin itself fails (timeout, open circuit), the tiers
    are consulted once more with relaxed standards: the freshest
    ``stale-but-acceptable`` copy is served — counted and attributed
    to the ``stale`` pseudo-tier — while ``reject``-grade copies are
    evicted and the failure propagates.

    As a :class:`~repro.attest.tiers.CollateralTier`, the uniform
    ``fetch(doc, now_ns)`` surface resolves ``doc.name`` (an endpoint
    key) against the cached tiers without a live execution context —
    the peek the KBS admission path uses — while the charged
    ``fetch_*(ctx)`` provider methods remain the authority for origin
    refreshes.  Both paths feed the same standard ``hits`` counters;
    the finer-grained legacy ``stats`` dict is kept alongside.
    """

    _ENDPOINTS = {
        "tcb": ("/sgx/certification/v4/tcb", 6_000),
        "qe_identity": ("/sgx/certification/v4/qe/identity", 3_000),
        "root_crl": ("/sgx/certification/v4/rootcacrl", 1_500),
        "pck_crl": ("/sgx/certification/v4/pckcrl", 2_500),
    }

    def __init__(self, pcs: IntelPcs,
                 cdn: TierStore | None = None,
                 freshness: FreshnessPolicy | None = None,
                 cdn_network: NicModel | None = None,
                 rng: SimRng | None = None) -> None:
        super().__init__(serve_stale=True)
        self.pcs = pcs
        self.host = TierStore("host")
        self.cdn = cdn if cdn is not None else TierStore("cdn")
        self.freshness = (freshness if freshness is not None
                          else DEFAULT_FRESHNESS)
        self.cdn_network = (cdn_network if cdn_network is not None
                            else lan_path())
        self.rng = (rng if rng is not None
                    else pcs.rng.child("tiered-collateral"))
        self.stats: dict[str, int] = {
            "host.hits": 0,
            "cdn.hits": 0,
            "origin.fetches": 0,
            "stale.served": 0,
            "evictions": 0,
        }

    # -- the uniform tier surface ---------------------------------------

    def fetch(self, doc: CollateralDoc, now_ns: float) -> TierHit | None:
        """Resolve a cached document without a live context.

        Walks host → CDN for a fresh copy (a CDN answer promotes into
        the host tier, as the charged path does); when neither tier is
        fresh, the freshest grace-window copy is served marked as the
        ``stale`` pseudo-tier (subject to :attr:`serve_stale`).
        ``None`` means only an origin fetch — the charged
        ``fetch_*(ctx)`` path — can answer.
        """
        try:
            endpoint, _payload = self._ENDPOINTS[doc.name]
        except KeyError:
            raise AttestationError(
                f"unknown collateral document {doc.name!r}; known: "
                f"{', '.join(sorted(self._ENDPOINTS))}") from None
        for store, tier, cost_ns in ((self.host, "host", HOST_HIT_NS),
                                     (self.cdn, "cdn", CDN_HIT_NS)):
            entry = store.get(endpoint)
            if entry is None:
                continue
            document, stored_at = entry
            if self.freshness.classify(document, stored_at,
                                       now_ns) is Staleness.FRESH:
                self.hits[tier] += 1
                if tier == "cdn":
                    self.host.put(endpoint, document, stored_at)
                return TierHit(tier=tier, cost_ns=cost_ns,
                               document=document)
        if self.serve_stale:
            fallback = self._stale_fallback(endpoint, now_ns)
            if fallback is not None:
                self.hits["stale"] += 1
                return TierHit(tier="stale", cost_ns=CDN_HIT_NS,
                               document=fallback)
        return None

    # -- the provider protocol ------------------------------------------

    def fetch_tcb_info(self, ctx: ExecContext):
        return self._resolve("tcb", ctx, self.pcs.fetch_tcb_info)

    def fetch_qe_identity(self, ctx: ExecContext):
        return self._resolve("qe_identity", ctx, self.pcs.fetch_qe_identity)

    def fetch_root_crl(self, ctx: ExecContext):
        return self._resolve("root_crl", ctx, self.pcs.fetch_root_crl)

    def fetch_pck_crl(self, ctx: ExecContext):
        return self._resolve("pck_crl", ctx, self.pcs.fetch_pck_crl)

    # -- resolution ------------------------------------------------------

    def _resolve(self, key: str, ctx: ExecContext, origin_fetch):
        endpoint, payload_bytes = self._ENDPOINTS[key]
        now = ctx.clock.now()
        # tier walk: host first, then the cluster CDN
        entry = self.host.get(endpoint)
        if entry is not None:
            document, stored_at = entry
            if self.freshness.classify(document, stored_at,
                                       now) is Staleness.FRESH:
                ctx.charge_network(HOST_HIT_NS)
                self.stats["host.hits"] += 1
                self.hits["host"] += 1
                return document
        entry = self.cdn.get(endpoint)
        if entry is not None:
            document, stored_at = entry
            if self.freshness.classify(document, stored_at,
                                       now) is Staleness.FRESH:
                ctx.charge_network(
                    self.cdn_network.round_trip(payload_bytes, self.rng))
                self.stats["cdn.hits"] += 1
                self.hits["cdn"] += 1
                # promote into the host tier so the next lookup is local
                self.host.put(endpoint, document, stored_at)
                return document
        try:
            document = origin_fetch(ctx)
        except CollateralTimeoutError:
            fallback = self._stale_fallback(endpoint, ctx.clock.now())
            if fallback is not None:
                self.stats["stale.served"] += 1
                self.hits["stale"] += 1
                return fallback
            self.hits["outage_failures"] += 1
            raise
        fetched_at = ctx.clock.now()
        self.host.put(endpoint, document, fetched_at)
        self.cdn.put(endpoint, document, fetched_at)
        self.stats["origin.fetches"] += 1
        self.hits["origin"] += 1
        return document

    def _stale_fallback(self, endpoint: str, now_ns: float):
        """The freshest acceptable copy across tiers, or None.

        ``reject``-grade copies found on the way are evicted — a
        failing origin must not leave unusable documents pinned in
        the tiers forever.
        """
        best: "tuple[object, float] | None" = None
        for tier in (self.host, self.cdn):
            entry = tier.get(endpoint)
            if entry is None:
                continue
            document, stored_at = entry
            verdict = self.freshness.classify(document, stored_at, now_ns)
            if verdict is Staleness.REJECT:
                tier.evict(endpoint)
                self.stats["evictions"] += 1
                continue
            if best is None or stored_at > best[1]:
                best = (document, stored_at)
        return best[0] if best is not None else None

    # -- session-pinning inputs (no charge: in-memory peeks) -------------

    def current_tcb_svn(self) -> str | None:
        """The TCB level of the cached TCB info, if any tier holds it."""
        for tier in (self.host, self.cdn):
            entry = tier.get(self._ENDPOINTS["tcb"][0])
            if entry is not None:
                return entry[0].tcb_svn
        return None

    def earliest_crl_expiry_ns(self) -> float:
        """The soonest ``next_update`` across cached CRLs (inf if none)."""
        expiry = math.inf
        for key in ("root_crl", "pck_crl"):
            for tier in (self.host, self.cdn):
                entry = tier.get(self._ENDPOINTS[key][0])
                if entry is not None:
                    expiry = min(expiry, entry[0].next_update)
        return expiry

    def purge(self) -> None:
        """Drop every tiered copy (collateral rotation): next fetches
        go back to the origin."""
        self.stats["evictions"] += len(self.host) + len(self.cdn)
        self.host.entries.clear()
        self.cdn.entries.clear()

    def emit(self, sink, prefix: str = "attest.collateral") -> None:
        """Fold the tier counters into a metrics sink."""
        for name, value in sorted(self.stats.items()):
            sink.count(f"{prefix}.{name}", value)


@dataclass
class AttestationSession:
    """One resumable attestation: measurement pinned to its evidence."""

    measurement: str
    tcb_svn: str | None          # TCB level at full-verification time
    crl_expiry_ns: float         # earliest next_update seen; inf = none
    created_ns: float
    resumed: int = 0


class SessionCache:
    """Measurement-keyed attestation sessions with strict invalidation.

    A session resumes only while *all* of the following hold, every
    comparison strict-less-than so serial and parallel runs agree on
    boundaries:

    - the current TCB level equals the one the session was minted
      under (TCB rotation, including recovery to a newer SVN, ends
      the session);
    - virtual now is strictly before the pinned earliest CRL
      ``next_update`` (CRL rotation ends the session);
    - the session is younger than ``ttl_ns``.

    The cache is bounded: past ``capacity`` live sessions the oldest
    is evicted, so million-launch fleets cannot grow it without bound.
    """

    def __init__(self, ttl_ns: float = DEFAULT_SESSION_TTL_NS,
                 capacity: int = 4096) -> None:
        if ttl_ns <= 0:
            raise AttestationError(f"session ttl must be > 0, got {ttl_ns}")
        if capacity < 1:
            raise AttestationError(
                f"session capacity must be >= 1, got {capacity}")
        self.ttl_ns = ttl_ns
        self.capacity = capacity
        self._sessions: dict[str, AttestationSession] = {}
        self.stats: dict[str, int] = {
            "resumed": 0,
            "established": 0,
            "invalidated.tcb": 0,
            "invalidated.crl": 0,
            "invalidated.expired": 0,
            "invalidated.explicit": 0,
            "evicted": 0,
        }

    def __len__(self) -> int:
        return len(self._sessions)

    def lookup(self, measurement: str, tcb_svn: str | None,
               now_ns: float) -> AttestationSession | None:
        """The live session for ``measurement``, or None.

        Invalid sessions are removed on the spot (and counted by
        cause), so the cache never holds a session that could not
        resume.
        """
        session = self._sessions.get(measurement)
        if session is None:
            return None
        if session.tcb_svn != tcb_svn:
            self._invalidate(measurement, "tcb")
            return None
        if not now_ns < session.crl_expiry_ns:
            self._invalidate(measurement, "crl")
            return None
        if max(0.0, now_ns - session.created_ns) >= self.ttl_ns:
            self._invalidate(measurement, "expired")
            return None
        session.resumed += 1
        self.stats["resumed"] += 1
        return session

    def store(self, measurement: str, tcb_svn: str | None,
              crl_expiry_ns: float, now_ns: float) -> AttestationSession:
        session = AttestationSession(
            measurement=measurement, tcb_svn=tcb_svn,
            crl_expiry_ns=crl_expiry_ns, created_ns=now_ns)
        if measurement not in self._sessions \
                and len(self._sessions) >= self.capacity:
            oldest = next(iter(self._sessions))
            del self._sessions[oldest]
            self.stats["evicted"] += 1
        self._sessions[measurement] = session
        self.stats["established"] += 1
        return session

    def invalidate_all(self) -> int:
        """Explicitly end every session (operator-driven rotation)."""
        count = len(self._sessions)
        self._sessions.clear()
        self.stats["invalidated.explicit"] += count
        return count

    def _invalidate(self, measurement: str, cause: str) -> None:
        del self._sessions[measurement]
        self.stats[f"invalidated.{cause}"] += 1

    def emit(self, sink, prefix: str = "attest.sessions") -> None:
        for name, value in sorted(self.stats.items()):
            sink.count(f"{prefix}.{name}", value)
        sink.set_gauge(f"{prefix}.live", len(self._sessions))


@dataclass
class VerificationJob:
    """One launch's verification request, evidence built lazily.

    ``build_evidence`` runs (and is charged) only when the launch
    cannot resume a session — skipping quote generation is exactly the
    saving session resumption exists for.
    """

    measurement: str
    nonce: bytes
    build_evidence: Callable[[ExecContext], Any]
    arrival_ns: float = 0.0


@dataclass
class LaunchVerdict:
    """What the service decided for one launch, and what it cost."""

    measurement: str
    accepted: bool
    resumed: bool
    tier: str                   # session | host | cdn | origin | stale | ...
    queue_wait_ns: float
    verify_ns: float

    @property
    def latency_ns(self) -> float:
        """Queue wait plus verification — the launch's attestation tax."""
        return self.queue_wait_ns + self.verify_ns


class VerifierService:
    """Batch quote verification with bounded concurrency and sessions.

    One service fronts one platform verifier
    (:class:`~repro.attest.verifier.TdxVerifier` or
    :class:`~repro.attest.verifier.SnpVerifier`).  ``collateral`` is
    the service's :class:`TieredCollateral` when the platform fetches
    networked collateral (TDX); SNP verification is local, so SNP
    services run without one.

    Determinism contract: a batch's verdicts are a pure fold over the
    jobs in submission order — slot assignment, session decisions and
    cost charges derive only from the jobs, the service state, and the
    caller's context.  No wall clock, no shared mutable globals.
    """

    def __init__(self, name: str, verifier,
                 collateral: TieredCollateral | None = None,
                 concurrency: int = 4,
                 sessions: SessionCache | None = None,
                 resume_cost_ns: float = RESUME_COST_NS,
                 metrics=None) -> None:
        if concurrency < 1:
            raise AttestationError(
                f"concurrency must be >= 1, got {concurrency}")
        self.name = name
        self.verifier = verifier
        self.collateral = collateral
        self.concurrency = concurrency
        self.sessions = sessions if sessions is not None else SessionCache()
        self.resume_cost_ns = resume_cost_ns
        #: optional duck-typed metrics sink (``count`` / ``set_gauge``
        #: / ``observe``); the gateway wires its registry here so
        #: service activity shows in ``GET /v1/metrics`` live
        self.metrics = metrics
        self.stats: dict[str, int] = {
            "launches": 0,
            "verified": 0,
            "resumed": 0,
            "rotations": 0,
        }
        self.queue_depth_peak = 0

    # -- single launches -------------------------------------------------

    def verify_launch(self, job: VerificationJob, ctx: ExecContext,
                      queue_wait_ns: float = 0.0) -> LaunchVerdict:
        """Verify one launch, resuming its session when possible.

        All costs are charged to ``ctx``; ``verify_ns`` is measured as
        the ledger delta so retries, backoff, and collateral-tier
        charges are all attributed to the launch that caused them.
        """
        tcb_svn = (self.collateral.current_tcb_svn()
                   if self.collateral is not None else None)
        before = ctx.ledger.total()
        session = self.sessions.lookup(job.measurement, tcb_svn,
                                       ctx.clock.now())
        if session is not None:
            ctx.crypto(self.resume_cost_ns)
            verdict = LaunchVerdict(
                measurement=job.measurement, accepted=True, resumed=True,
                tier="session", queue_wait_ns=queue_wait_ns,
                verify_ns=ctx.ledger.total() - before)
            self._account(verdict)
            return verdict
        tier_before = (dict(self.collateral.stats)
                       if self.collateral is not None else None)
        evidence = job.build_evidence(ctx)
        result = self.verifier.verify(
            evidence, ctx, expected_report_data=job.nonce)
        if result.accepted:
            self.sessions.store(
                job.measurement,
                tcb_svn=(self.collateral.current_tcb_svn()
                         if self.collateral is not None else None),
                crl_expiry_ns=(self.collateral.earliest_crl_expiry_ns()
                               if self.collateral is not None else math.inf),
                now_ns=ctx.clock.now())
        verdict = LaunchVerdict(
            measurement=job.measurement, accepted=result.accepted,
            resumed=False, tier=self._attribute_tier(tier_before),
            queue_wait_ns=queue_wait_ns,
            verify_ns=ctx.ledger.total() - before)
        self._account(verdict)
        return verdict

    def _attribute_tier(self, before: "dict[str, int] | None") -> str:
        """The slowest collateral tier a full verification touched."""
        if before is None:
            return "local"
        delta = {key: self.collateral.stats[key] - before[key]
                 for key in before}
        for tier in _TIER_PRIORITY:
            if tier == "origin" and delta["origin.fetches"]:
                return "origin"
            if tier == "stale" and delta["stale.served"]:
                return "stale"
            if tier == "cdn" and delta["cdn.hits"]:
                return "cdn"
            if tier == "host" and delta["host.hits"]:
                return "host"
        return "warm"

    # -- batches ---------------------------------------------------------

    def process_batch(self, jobs: "list[VerificationJob]",
                      ctx: ExecContext) -> list[LaunchVerdict]:
        """Verify a batch under the bounded-concurrency queue model.

        Jobs must arrive in non-decreasing ``arrival_ns`` order.  Each
        job starts at ``max(arrival, earliest free slot)``; the wait is
        reported as ``queue_wait_ns`` and the backlog at each arrival
        (jobs admitted earlier but not yet complete) feeds the
        queue-depth peak gauge.
        """
        slots = [0.0] * self.concurrency
        completions: list[float] = []
        verdicts: list[LaunchVerdict] = []
        last_arrival = -math.inf
        for job in jobs:
            if job.arrival_ns < last_arrival:
                raise AttestationError(
                    "batch jobs must be sorted by arrival time")
            last_arrival = job.arrival_ns
            backlog = sum(1 for done in completions if done > job.arrival_ns)
            self.queue_depth_peak = max(self.queue_depth_peak, backlog)
            slot = min(range(self.concurrency), key=slots.__getitem__)
            start = max(job.arrival_ns, slots[slot])
            verdict = self.verify_launch(
                job, ctx, queue_wait_ns=start - job.arrival_ns)
            completion = start + verdict.verify_ns
            slots[slot] = completion
            completions.append(completion)
            verdicts.append(verdict)
        if self.metrics is not None:
            self.metrics.set_gauge(
                f"attest.service.{self.name}.queue_depth_peak",
                self.queue_depth_peak)
        return verdicts

    # -- rotation --------------------------------------------------------

    def rotate_collateral(self) -> None:
        """Collateral rotated at the source (new TCB level, new CRL).

        Purges the cache tiers, sweeps rejected PCS cache entries, and
        ends every session — the next launches re-fetch and re-verify
        against the new world.
        """
        self.stats["rotations"] += 1
        if self.collateral is not None:
            self.collateral.purge()
        self.sessions.invalidate_all()

    # -- accounting ------------------------------------------------------

    def _account(self, verdict: LaunchVerdict) -> None:
        self.stats["launches"] += 1
        self.stats["resumed" if verdict.resumed else "verified"] += 1
        if self.metrics is not None:
            prefix = f"attest.service.{self.name}"
            self.metrics.count(f"{prefix}.launches", 1)
            self.metrics.count(f"{prefix}.tier.{verdict.tier}", 1)
            self.metrics.observe(f"{prefix}.verify_latency_ns",
                                 verdict.latency_ns)

    def emit(self, sink, prefix: str = "attest.service") -> None:
        """Fold service + session + tier counters into a sink.

        Used by harnesses that run the service inside worker processes
        (where no live sink can be attached) and fold the returned
        stats in afterwards, in spec order.
        """
        base = f"{prefix}.{self.name}"
        for name, value in sorted(self.stats.items()):
            sink.count(f"{base}.{name}", value)
        sink.set_gauge(f"{base}.queue_depth_peak", self.queue_depth_peak)
        self.sessions.emit(sink, prefix=f"{base}.sessions")
        if self.collateral is not None:
            self.collateral.emit(sink, prefix=f"{base}.collateral")


# ---------------------------------------------------------------------------
# Launch admission for the gateway's TEE pools
# ---------------------------------------------------------------------------

@dataclass
class Admission:
    """A pool-level launch admission: the verdict plus its full cost.

    ``latency_ns`` covers evidence generation (the guest-side "attest"
    phase) *and* verification — the whole attestation tax a launch
    pays before dispatch.  The pool charges it to the result's STARTUP
    bucket, so the paper's ``elapsed_ns`` metric stays untouched while
    ``total_ns`` carries the true cost.
    """

    verdict: LaunchVerdict
    latency_ns: float


class LaunchAttestor:
    """Per-platform attestation infrastructure for pool admission.

    Owns the signing infrastructure (Intel PCS + QE + TDX module, or
    the AMD key hierarchy + AMD-SP), a :class:`VerifierService`, and a
    machine model to price admission work on.  ``admit`` attests one
    worker VM: the first admission of a measurement pays the full
    attest + check path (warming the collateral tiers), later
    admissions of the same measurement resume their session.

    Platforms without a modelled attestation flow (``cca``, ``novm``)
    are not supported — construct only for :data:`SUPPORTED`.
    """

    SUPPORTED = ("tdx", "sev-snp")

    def __init__(self, platform: str, seed: int = 0, concurrency: int = 4,
                 cdn: TierStore | None = None, metrics=None) -> None:
        if platform not in self.SUPPORTED:
            raise AttestationError(
                f"no attestation flow for platform {platform!r}; "
                f"supported: {', '.join(self.SUPPORTED)}")
        from repro.hw.machine import epyc_9124, xeon_gold_5515

        self.platform = platform
        self.rng = SimRng(seed, f"launch-attestor/{platform}")
        self._admissions = 0
        if platform == "tdx":
            from repro.attest.tdx_quote import QuotingEnclave
            from repro.attest.verifier import TdxVerifier
            from repro.tee.tdx import TdxModule

            self._machine_factory = xeon_gold_5515
            self.pcs = IntelPcs(self.rng)
            self._qe = QuotingEnclave(self.pcs, self.rng)
            self._module = TdxModule()
            self.collateral = TieredCollateral(self.pcs, cdn=cdn)
            verifier = TdxVerifier(self.pcs, collateral=self.collateral)
        else:
            from repro.attest.snp_report import AmdKeyInfrastructure
            from repro.attest.verifier import SnpVerifier
            from repro.tee.sevsnp import AmdSecureProcessor

            self._machine_factory = epyc_9124
            self.pcs = None
            self.collateral = None
            self._keys = AmdKeyInfrastructure(self.rng)
            self._amd_sp = AmdSecureProcessor()
            verifier = SnpVerifier(self._keys)
        self.service = VerifierService(
            platform, verifier, collateral=self.collateral,
            concurrency=concurrency, metrics=metrics)

    def admission_context(self, vm_id: str) -> ExecContext:
        """A private context for one admission of ``vm_id``.

        The attestation plane, not the workload's VM — seeded from the
        admission index so repeated admissions draw independent
        nonces.  Consumes one admission slot per call.
        """
        ctx = ExecContext(
            machine=self._machine_factory(),
            rng=self.rng.child(f"admit/{vm_id}/{self._admissions}"))
        self._admissions += 1
        return ctx

    def make_job(self, vm_id: str, ctx: ExecContext) -> VerificationJob:
        """The verification job one admission of ``vm_id`` submits.

        Exposed separately from :meth:`admit` so admission-adjacent
        services (the supply-chain Key Broker Service gates layer keys
        on the same evidence) can route the job through their own
        policy before or instead of the plain admit path.
        """
        nonce = ctx.rng.child("nonce").bytes(16)
        return VerificationJob(
            measurement=vm_id, nonce=nonce,
            build_evidence=self._evidence_builder(vm_id, nonce))

    def admit(self, vm_id: str) -> Admission:
        """Attest one launch of the VM identified by ``vm_id``."""
        ctx = self.admission_context(vm_id)
        job = self.make_job(vm_id, ctx)
        verdict = self.service.verify_launch(job, ctx)
        if not verdict.accepted:
            raise AttestationError(
                f"{self.platform}: launch attestation rejected for {vm_id}")
        return Admission(verdict=verdict, latency_ns=ctx.ledger.total())

    def _evidence_builder(self, vm_id: str, nonce: bytes):
        if self.platform == "tdx":
            from repro.attest.tdx_quote import generate_tdx_quote

            def build(ctx: ExecContext):
                return generate_tdx_quote(self._module, self._qe, self.pcs,
                                          ctx, nonce, td_identity=vm_id)
        else:
            from repro.attest.snp_report import generate_snp_report

            def build(ctx: ExecContext):
                return generate_snp_report(self._amd_sp, self._keys, ctx,
                                           nonce, guest_identity=vm_id)
        return build


#: deprecation messages already issued from this module (warn once)
_WARNED: set[str] = set()


def __getattr__(name: str):
    """Deprecated import-path shims.

    ``CollateralTier`` used to name the per-tier document store
    defined here; the API redesign moved that class to
    :class:`repro.attest.tiers.TierStore` and gave the
    ``CollateralTier`` name to the unified tier protocol.  The old
    import path keeps working (returning the store, as before) with a
    one-time :class:`DeprecationWarning`.
    """
    if name == "CollateralTier":
        message = ("repro.attest.service.CollateralTier is deprecated; "
                   "import TierStore (the per-tier document store) or "
                   "the CollateralTier protocol from repro.attest.tiers")
        if message not in _WARNED:
            _WARNED.add(message)
            warnings.warn(message, DeprecationWarning, stacklevel=2)
        return TierStore
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")
