"""Deterministic metrics: counters, gauges, log-bucket histograms.

One :class:`MetricsRegistry` aggregates everything a run observes —
trial counts, journal replays, pool evictions, per-category ledger
nanoseconds, perf-counter totals, and virtual-time distributions.

Determinism contract
--------------------
Snapshots must be *byte-identical* between serial and parallel runs of
the same plan, so:

- histogram bucket boundaries are fixed at import time (log-scale,
  :data:`BUCKETS_PER_DECADE` per decade from 1 ns to 1e12 ns) rather
  than adapted to the data;
- instrumented call sites observe values in **spec order** (the
  runner folds results in after execution, not from completion-order
  callbacks), so floating-point sums accumulate in one fixed order;
- :meth:`MetricsRegistry.snapshot` sorts metric names and
  :meth:`MetricsRegistry.to_json` serialises with sorted keys and
  fixed separators.

Sink protocol
-------------
Lower layers (``hw``, ``sim``, ``tee``) must not import this package
(it sits above them in the layer DAG), so their ``emit`` hooks are
duck-typed against three methods any sink — usually a registry —
provides::

    sink.count(name, value)       # add to a monotonic counter
    sink.set_gauge(name, value)   # set a last-value gauge
    sink.observe(name, value)     # record one histogram sample
"""

from __future__ import annotations

import json
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.errors import ConfBenchError

#: Histogram resolution: bucket boundaries per decade of nanoseconds.
BUCKETS_PER_DECADE = 3

#: Decades covered: 1 ns .. 1e12 ns (~16.7 virtual minutes).
_DECADES = 12

#: The fixed, shared bucket upper bounds (ns), plus +inf overflow.
BUCKET_BOUNDS_NS: tuple[float, ...] = tuple(
    10.0 ** (k / BUCKETS_PER_DECADE)
    for k in range(_DECADES * BUCKETS_PER_DECADE + 1)
) + (float("inf"),)


def _bound_label(bound: float) -> str:
    """A stable, compact label for one bucket upper bound."""
    if bound == float("inf"):
        return "+inf"
    return f"{bound:.6g}"


_BOUND_LABELS: tuple[str, ...] = tuple(
    _bound_label(bound) for bound in BUCKET_BOUNDS_NS
)


@dataclass
class Counter:
    """A monotonically increasing sum (int or float)."""

    name: str
    value: float = 0

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (must be >= 0: counters only go up)."""
        if not amount >= 0:
            raise ConfBenchError(
                f"counter {self.name!r}: cannot add {amount!r}")
        self.value += amount


@dataclass
class Gauge:
    """A last-value-wins measurement."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


@dataclass
class Histogram:
    """Sample distribution over the fixed log-scale buckets.

    Bucket boundaries are shared by every histogram
    (:data:`BUCKET_BOUNDS_NS`), so two runs observing the same samples
    in the same order produce identical counts and sums — the property
    the serial-vs-parallel byte-identity check rests on.
    """

    name: str
    count: int = 0
    sum: float = 0.0
    bucket_counts: list[int] = field(
        default_factory=lambda: [0] * len(BUCKET_BOUNDS_NS))

    def observe(self, value: float) -> None:
        """Record one sample (negative samples are a modelling bug)."""
        if not value >= 0:
            raise ConfBenchError(
                f"histogram {self.name!r}: cannot observe {value!r}")
        self.count += 1
        self.sum += float(value)
        self.bucket_counts[bisect_left(BUCKET_BOUNDS_NS, value)] += 1

    def to_dict(self) -> dict[str, Any]:
        """JSON-able form; only non-empty buckets are serialised."""
        return {
            "count": self.count,
            "sum": self.sum,
            "buckets": {
                _BOUND_LABELS[index]: bucket
                for index, bucket in enumerate(self.bucket_counts)
                if bucket
            },
        }


class MetricsRegistry:
    """The aggregation point for every measurement stream.

    Implements the sink protocol (:meth:`count` / :meth:`set_gauge` /
    :meth:`observe`) the substrate ``emit`` hooks are duck-typed
    against, plus get-or-create accessors and deterministic
    serialisation.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- get-or-create accessors ---------------------------------------

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(name)
        return metric

    # -- the sink protocol ---------------------------------------------

    def count(self, name: str, amount: float = 1) -> None:
        """Add to the named counter (creating it at 0)."""
        self.counter(name).inc(amount)

    def count_many(self, pairs: "Iterable[tuple[str, float]]") -> None:
        """Add to many counters in one call (coalesced emission).

        Equivalent to calling :meth:`count` per pair — same counters,
        same totals, same snapshot bytes — but a batched result's
        ledger/perf emission pays one dispatch instead of one per
        metric.  Sinks advertise it by simply having the method; the
        substrate ``emit`` hooks fall back to :meth:`count` loops when
        a custom sink lacks it.
        """
        counters = self._counters
        for name, amount in pairs:
            metric = counters.get(name)
            if metric is None:
                metric = counters[name] = Counter(name)
            metric.inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        """Set the named gauge."""
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        """Record one sample in the named histogram."""
        self.histogram(name).observe(value)

    # -- serialisation -------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """All metrics as one JSON-able dict, names sorted.

        This is what ``GET /v1/metrics`` returns and what every
        experiment harness attaches to its result.
        """
        return {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value
                for name in sorted(self._gauges)
            },
            "histograms": {
                name: self._histograms[name].to_dict()
                for name in sorted(self._histograms)
            },
        }

    def to_json(self) -> str:
        """Canonical JSON encoding of :meth:`snapshot`.

        Sorted keys and fixed separators: two registries holding the
        same metrics serialise to identical bytes, which is what the
        CI determinism job compares.
        """
        return json.dumps(self.snapshot(), sort_keys=True,
                          separators=(",", ":")) + "\n"

    def render_text(self) -> str:
        """A human-readable dump (the ``confbench`` CLI's format)."""
        snap = self.snapshot()
        lines: list[str] = []
        for name, value in snap["counters"].items():
            lines.append(f"counter   {name} = {value:g}")
        for name, value in snap["gauges"].items():
            lines.append(f"gauge     {name} = {value:g}")
        for name, histogram in snap["histograms"].items():
            lines.append(f"histogram {name}: count={histogram['count']} "
                         f"sum={histogram['sum']:g}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return (len(self._counters) + len(self._gauges)
                + len(self._histograms))

    def __repr__(self) -> str:
        return (f"MetricsRegistry(counters={len(self._counters)}, "
                f"gauges={len(self._gauges)}, "
                f"histograms={len(self._histograms)})")
