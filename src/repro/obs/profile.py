"""Virtual-time profiler: span trees → collapsed stacks + attribution.

Two views over the same trace data:

- **Collapsed stacks** (``root;child;grandchild <ns>``) — the
  flamegraph input format (Brendan Gregg's ``flamegraph.pl``,
  speedscope, inferno).  The value per stack is *self* ledger time:
  the nanoseconds charged while that span was the innermost open one,
  so stack values sum exactly to the run's ledger total.
- **Per-CostCategory attribution** — where each platform's overhead
  goes (the paper's bounce-buffer / TDVMCALL analysis, automated):
  nanoseconds per :class:`~repro.sim.ledger.CostCategory`, summed over
  *root* spans only.  Root spans partition a run, so the attribution
  total equals the run ledger's total — the invariant the runner tests
  pin, carried through to the profile.

Like everything in :mod:`repro.obs`, output is deterministic: traces
are folded in spec order and every serialisation sorts its keys.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterable


def _resolve_parents(spans: list) -> list[int | None]:
    """Parent *instance* for each span in a trace.

    Spans name their parent by string (see
    :class:`~repro.sim.trace.Span`), which is ambiguous when a name
    repeats (``retry`` spans, per-trial ``failure`` replays).  The
    tightest enclosing span with the parent's name wins — children are
    contained in their parent's virtual-time interval by construction.
    A parent name with no enclosing instance falls back to the first
    span of that name; a span whose parent cannot be found is treated
    as a root.
    """
    by_name: dict[str, list[int]] = {}
    for index, span in enumerate(spans):
        by_name.setdefault(span.name, []).append(index)
    parents: list[int | None] = [None] * len(spans)
    for index, span in enumerate(spans):
        if span.parent is None:
            continue
        candidates = [
            other for other in by_name.get(span.parent, ())
            if other != index
            and spans[other].start_ns <= span.start_ns
            and spans[other].end_ns >= span.end_ns
        ]
        if candidates:
            parents[index] = max(
                candidates,
                key=lambda other: (spans[other].start_ns,
                                   -spans[other].end_ns))
        else:
            named = [other for other in by_name.get(span.parent, ())
                     if other != index]
            parents[index] = named[0] if named else None
    return parents


def fold_stacks(trace) -> dict[str, float]:
    """Fold one trace into collapsed-stack → self-ledger-ns.

    Self time is the span's ledger delta minus its direct children's —
    a parent's breakdown covers its whole open window, children
    included, so subtracting the children leaves exactly the charges
    made at this stack depth.  Summed over all stacks this telescopes
    back to the root spans' total, i.e. the run ledger total.
    """
    spans = list(trace)
    parents = _resolve_parents(spans)

    paths: dict[int, str] = {}

    def path_of(index: int) -> str:
        known = paths.get(index)
        if known is not None:
            return known
        # walk to the root iteratively; a name-collision cycle (parent
        # resolving back through a descendant) degrades to a root path
        chain: list[int] = []
        seen: set[int] = set()
        cursor: int | None = index
        while cursor is not None and cursor not in seen and cursor not in paths:
            seen.add(cursor)
            chain.append(cursor)
            cursor = parents[cursor]
        prefix = paths.get(cursor, "") if cursor is not None else ""
        for member in reversed(chain):
            prefix = (f"{prefix};{spans[member].name}" if prefix
                      else spans[member].name)
            paths[member] = prefix
        return paths[index]

    child_ledger = [0.0] * len(spans)
    for index, parent in enumerate(parents):
        if parent is not None:
            child_ledger[parent] += spans[index].ledger_ns

    stacks: dict[str, float] = {}
    for index, span in enumerate(spans):
        self_ns = span.ledger_ns - child_ledger[index]
        key = path_of(index)
        stacks[key] = stacks.get(key, 0.0) + self_ns
    return stacks


@dataclass
class Profile:
    """An aggregated virtual-time profile over one or more trials."""

    #: cost-category name -> total ns, over root spans (first-seen order)
    categories: dict[str, float] = field(default_factory=dict)
    #: sum of root-span ledger deltas == sum of run ledger totals
    total_ns: float = 0.0
    #: collapsed stack -> self ledger ns, aggregated across trials
    stacks: dict[str, float] = field(default_factory=dict)
    #: how many trial traces were folded in
    trials: int = 0

    # -- constructors --------------------------------------------------

    @classmethod
    def from_runs(cls, results: Iterable) -> "Profile":
        """Fold a flat list of :class:`RunResult`-like objects."""
        profile = cls()
        for result in results:
            profile.add(result.trace)
        return profile

    @classmethod
    def from_history(cls, history: Iterable) -> "Profile":
        """Fold every trial in a runner's ``(plan, results)`` history."""
        profile = cls()
        for _, results in history:
            for result in results:
                profile.add(result.trace)
        return profile

    def add(self, trace) -> None:
        """Fold one more trace into the profile."""
        self.trials += 1
        for span in trace.roots():
            for category, nanos in span.breakdown.items():
                self.categories[category] = (
                    self.categories.get(category, 0.0) + nanos)
        self.total_ns += trace.ledger_total_ns()
        for path, nanos in fold_stacks(trace).items():
            self.stacks[path] = self.stacks.get(path, 0.0) + nanos

    # -- output --------------------------------------------------------

    def render_table(self, title: str | None = None) -> str:
        """The per-CostCategory attribution table.

        The TOTAL row equals the profiled runs' summed ledger total
        (the acceptance invariant ``confbench profile`` prints).
        """
        header = title or (
            f"Virtual-time attribution over {self.trials} trial(s)")
        rows = sorted(self.categories.items(), key=lambda item: -item[1])
        name_width = max([len("category"), len("TOTAL"),
                          *(len(name) for name, _ in rows)]) + 2
        lines = [header, ""]
        lines.append(f"{'category'.ljust(name_width)}"
                     f"{'ns':>16}  {'ms':>12}  {'share':>7}")
        lines.append(f"{'-' * (name_width - 2)}  "
                     f"{'-' * 16}  {'-' * 12}  {'-' * 7}")
        for name, nanos in rows:
            share = (nanos / self.total_ns * 100.0) if self.total_ns else 0.0
            lines.append(f"{name.ljust(name_width)}"
                         f"{nanos:16.0f}  {nanos / 1e6:12.3f}  "
                         f"{share:6.1f}%")
        lines.append(f"{'TOTAL'.ljust(name_width)}"
                     f"{self.total_ns:16.0f}  {self.total_ns / 1e6:12.3f}  "
                     f"{100.0 if self.total_ns else 0.0:6.1f}%")
        return "\n".join(lines)

    def render_collapsed(self) -> str:
        """Flamegraph collapsed-stack lines (``path ns``), sorted.

        Zero-valued stacks (pure structural spans such as marks) are
        skipped — flamegraph tooling ignores them anyway.
        """
        return "\n".join(
            f"{path} {nanos:.0f}"
            for path, nanos in sorted(self.stacks.items())
            if nanos > 0
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-able form with sorted keys."""
        return {
            "trials": self.trials,
            "total_ns": self.total_ns,
            "categories": {name: self.categories[name]
                           for name in sorted(self.categories)},
            "stacks": {path: self.stacks[path]
                       for path in sorted(self.stacks)},
        }

    def to_json(self) -> str:
        """Canonical JSON encoding of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":")) + "\n"
