"""Observability: metrics, trace export, and virtual-time profiling.

The paper makes measurement a first-class concern (§III-B: ``perf
stat`` counters piggybacked onto every result, custom metric scripts
inside CCA realms), and this package is where the reproduction's four
measurement streams meet:

- :mod:`repro.obs.metrics` — a deterministic :class:`MetricsRegistry`
  (counters, gauges, virtual-time histograms on fixed log-scale
  buckets).  The substrate layers (``hw``/``sim``/``tee``) feed it
  through a duck-typed *sink* protocol so they never import upward;
  ``core`` wires it in directly (gateway, pool, runner, journal).
- :mod:`repro.obs.export` — a :class:`TraceExporter` rendering
  :mod:`repro.sim.trace` span trees to Chrome trace-event JSON
  (loadable in ``chrome://tracing`` / Perfetto) and JSONL.
- :mod:`repro.obs.profile` — a virtual-time profiler folding span
  trees into flamegraph-style collapsed stacks and a per-CostCategory
  attribution table (the paper's bounce-buffer / TDVMCALL overhead
  analysis, automated).

Everything here is deterministic: given the same specs, serial and
parallel runs produce byte-identical snapshots, traces, and profiles.
"""

from repro.obs.export import TraceExporter
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.profile import Profile, fold_stacks

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TraceExporter",
    "Profile",
    "fold_stacks",
]
