"""Trace export: span trees → Chrome trace-event JSON and JSONL.

Every trial records a :class:`~repro.sim.trace.Trace` (ordered
:class:`~repro.sim.trace.Span` records on the virtual clock).  The
:class:`TraceExporter` renders those traces to:

- **Chrome trace-event JSON** — the ``{"traceEvents": [...]}`` format
  ``chrome://tracing`` and Perfetto load.  Each trial becomes one
  virtual thread (``tid``), each plan one virtual process (``pid``),
  each span one complete ("X") event with its cost-category breakdown
  in ``args``.  Timestamps are the spans' *virtual* nanoseconds
  converted to trace-event microseconds.
- **JSONL** — one span record per line, each carrying the trial label
  it belongs to, for ad-hoc ``jq``-style analysis.

Exports are deterministic: trials are walked in spec order and JSON is
serialised with sorted keys and fixed separators, so a ``--jobs N``
run exports byte-identical bytes to a serial run of the same plan.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Iterable

#: Chrome trace-event timestamps are microseconds.
_NS_PER_US = 1000.0


def run_label(result) -> str:
    """The display label for one trial's thread.

    Derived from the result alone (workload, platform, secure flag,
    trial index) so gateway-collected runs — which have no TrialSpec —
    label identically to runner-collected ones.
    """
    side = "secure" if result.secure else "normal"
    return f"{result.workload}@{result.platform}/{side}#{result.trial}"


@dataclass(frozen=True)
class TraceRecord:
    """One trial's trace plus its identifying label."""

    pid: int            # virtual process: the plan (or collection) index
    tid: int            # virtual thread: the trial index within the pid
    label: str
    trace: Any          # repro.sim.trace.Trace (duck-typed)


class TraceExporter:
    """Renders a set of trial traces to standard tooling formats."""

    def __init__(self, records: list[TraceRecord]) -> None:
        self.records = records

    # -- constructors --------------------------------------------------

    @classmethod
    def from_history(cls, history: Iterable) -> "TraceExporter":
        """Build from :attr:`repro.core.runner.TrialRunner.history`.

        ``history`` is a list of ``(plan, results)`` pairs; results are
        in spec order, which fixes the export order regardless of how
        the trials were scheduled.
        """
        records: list[TraceRecord] = []
        for pid, (_, results) in enumerate(history):
            for tid, result in enumerate(results, start=1):
                records.append(TraceRecord(
                    pid=pid, tid=tid, label=run_label(result),
                    trace=result.trace))
        return cls(records)

    @classmethod
    def from_runs(cls, results: Iterable) -> "TraceExporter":
        """Build from a flat list of :class:`RunResult`-like objects
        (e.g. the gateway's run log)."""
        records = [
            TraceRecord(pid=0, tid=tid, label=run_label(result),
                        trace=result.trace)
            for tid, result in enumerate(results, start=1)
        ]
        return cls(records)

    # -- chrome trace-event format -------------------------------------

    def chrome_events(self) -> list[dict[str, Any]]:
        """The trace-event list: thread metadata + one "X" per span."""
        events: list[dict[str, Any]] = []
        for record in self.records:
            events.append({
                "ph": "M",
                "name": "thread_name",
                "pid": record.pid,
                "tid": record.tid,
                "args": {"name": record.label},
            })
        for record in self.records:
            for span in record.trace:
                events.append({
                    "ph": "X",
                    "name": span.name,
                    "cat": "phase",
                    "ts": span.start_ns / _NS_PER_US,
                    "dur": span.duration_ns / _NS_PER_US,
                    "pid": record.pid,
                    "tid": record.tid,
                    "args": {
                        "parent": span.parent,
                        "ledger_ns": span.ledger_ns,
                        "breakdown": dict(span.breakdown),
                    },
                })
        return events

    def to_chrome_json(self) -> str:
        """Canonical Chrome trace JSON (Perfetto-loadable).

        Sorted keys + fixed separators make equal traces serialise to
        equal bytes — the CI determinism job byte-compares this output
        between a serial and a ``--jobs N`` run.
        """
        payload = {
            "displayTimeUnit": "ns",
            "traceEvents": self.chrome_events(),
        }
        return json.dumps(payload, sort_keys=True,
                          separators=(",", ":")) + "\n"

    # -- span records (JSON / JSONL) -----------------------------------

    def span_records(self) -> list[dict[str, Any]]:
        """One flat dict per span, labelled with its trial."""
        records: list[dict[str, Any]] = []
        for record in self.records:
            for span in record.trace:
                records.append({
                    "trial": record.label,
                    **span.to_dict(),
                })
        return records

    def to_json(self) -> str:
        """Canonical JSON array of :meth:`span_records`."""
        return json.dumps(self.span_records(), sort_keys=True,
                          separators=(",", ":")) + "\n"

    def to_jsonl(self) -> str:
        """One canonical JSON document per span, newline-separated."""
        return "".join(
            json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
            for record in self.span_records()
        )

    # -- files ---------------------------------------------------------

    def write_chrome(self, path) -> int:
        """Write :meth:`to_chrome_json` to ``path``; returns the event
        count (metadata events included)."""
        text = self.to_chrome_json()
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
        return len(self.chrome_events())

    def write_jsonl(self, path) -> int:
        """Write :meth:`to_jsonl` to ``path``; returns the line count."""
        records = self.span_records()
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_jsonl())
        return len(records)

    def __len__(self) -> int:
        return len(self.records)
