"""Confidential-taint pass: key material and guest data must not cross
the simulated trust boundary.

The paper's premise is that a confidential VM keeps guest data inside
a trust boundary; this pass makes that property machine-checked.  It
is a forward interprocedural taint analysis over the call graph built
by :mod:`repro.analysis.dataflow`:

- **sources** introduce taint: RSA key generation in
  ``repro.attest.crypto`` (field-sensitive — ``pair.public`` is clean
  while ``pair.d`` stays tainted), guest filesystem/pipe payload
  reads in ``repro.guestos``, and platform measurement capture in the
  ``repro.tee`` backends;
- **sinks** are everything that crosses the simulated boundary:
  relay/socket sends, REST response bodies, telemetry emission,
  journal/result-store serialization, ``warnings``/``print`` logging,
  exception messages, and ``__repr__``/``__str__`` return values;
- **sanitizers** cut flows: digesting (``hashlib``), key
  fingerprints, signing/verification, and seal/encrypt operations.

Per function the engine runs a flow-sensitive abstract interpretation
over an environment of :class:`TaintValue` lattice elements (a label
set plus a per-field map, so dataclass construction and attribute
access stay field-sensitive).  Interprocedural flow uses **function
summaries** — "returns its Nth argument's taint", "passes its Nth
argument to a journal sink via these calls" — computed to a fixpoint
in reverse topological call-graph order, so a tainted value threaded
through pipeline-style helpers is still caught at the original call
site with the full source → sink path.

Findings are ``taint/<sink-kind>`` (``taint/exception``,
``taint/journal``, ...), suppressible with
``# confbench: allow[taint]`` or the specific id, and their
fingerprints are line-number independent like every other pass.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from repro.analysis.core import (
    Finding,
    ImportTable,
    Project,
    Rule,
    Severity,
)
from repro.analysis.dataflow import (
    CallGraph,
    FunctionUnit,
    SymbolIndex,
    build_index,
)

#: Cap on taint-lattice recursion (field maps of field maps ...).
_MAX_DEPTH = 2
#: Cap on summary fixpoint rounds (monotone joins converge well before).
_MAX_ROUNDS = 10
_MAX_FIELDS = 12   # field-map breadth cap; wider collapses to flat labels
_MAX_PATH = 6      # summary sink-path length cap (bounds cyclic growth)


# ---------------------------------------------------------------------------
# labels and lattice values


@dataclass(frozen=True)
class TaintLabel:
    """One unit of taint: what kind of secret, introduced where."""

    kind: str      # "key-material", "guest-data", "measurement", ...
    source: str    # human origin, e.g. "repro.attest.crypto.derived_keypair()"


@dataclass(frozen=True)
class ParamLabel:
    """Placeholder taint of a function's Nth parameter (summary mode)."""

    index: int


_EMPTY: frozenset = frozenset()


class TaintValue:
    """A lattice element: labels on the value + known per-field taint."""

    __slots__ = ("labels", "fields")

    def __init__(self, labels: frozenset = _EMPTY,
                 fields: dict[str, "TaintValue"] | None = None) -> None:
        self.labels = labels
        self.fields = fields or {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TaintValue(labels={set(self.labels)}, fields={self.fields})"

    def deep_labels(self, depth: int = _MAX_DEPTH) -> frozenset:
        """Labels of the value and (recursively) all known fields —
        what escapes when the whole object is serialized/formatted."""
        if not self.fields or depth <= 0:
            return self.labels
        out = set(self.labels)
        for value in self.fields.values():
            out |= value.deep_labels(depth - 1)
        return frozenset(out)

    @staticmethod
    def make(labels: frozenset,
             fields: dict[str, "TaintValue"] | None = None) -> "TaintValue":
        """Normalizing constructor: drops field entries that carry no
        information (clean fields only mask a labeled container) and
        collapses over-wide field maps to their flat labels, so values
        stay small under repeated joins/substitutions."""
        if not fields:
            return TaintValue(labels) if labels else CLEAN
        if labels:
            # explicitly-clean fields mask a labeled container
            # (pair.public stays clean while pair itself is secret)
            kept = dict(fields)
        else:
            kept = {name: value for name, value in fields.items()
                    if value.labels or value.fields}
        if not kept:
            return TaintValue(labels) if labels else CLEAN
        if len(kept) > _MAX_FIELDS:
            flat = set(labels)
            for value in kept.values():
                flat |= value.deep_labels()
            return TaintValue(frozenset(flat))
        return TaintValue(labels, kept)

    def attr(self, name: str) -> "TaintValue":
        """Field-sensitive attribute access: a known field overrides
        the container's own taint; unknown fields inherit it."""
        known = self.fields.get(name)
        if known is not None:
            return known
        return TaintValue(self.labels)

    def with_field(self, name: str, value: "TaintValue") -> "TaintValue":
        fields = dict(self.fields)
        fields[name] = value
        return TaintValue.make(self.labels, fields)

    def join(self, other: "TaintValue",
             depth: int = _MAX_DEPTH) -> "TaintValue":
        if other is self or other.is_clean:
            return self
        if self.is_clean:
            return other
        if depth <= 0:
            return TaintValue(self.deep_labels() | other.deep_labels())
        fields = dict(self.fields)
        for name, value in other.fields.items():
            mine = fields.get(name)
            fields[name] = value if mine is None \
                else mine.join(value, depth - 1)
        return TaintValue.make(self.labels | other.labels, fields)

    @property
    def is_clean(self) -> bool:
        return not self.labels and not self.fields


CLEAN = TaintValue()


# ---------------------------------------------------------------------------
# specification: sources, sinks, sanitizers

# Matchers are ``"<form>:<pattern>"``:
#   qual:NAME    — the call resolves (via imports) to exactly NAME
#   prefix:NAME. — the resolved name starts with NAME.
#   attr:NAME    — any ``<expr>.NAME(...)`` method call
#   suffix:A.B   — the attribute chain of the call ends in ``A.B``


@dataclass(frozen=True)
class SourceSpec:
    """A call that introduces taint."""

    match: str
    kind: str
    #: per-field taint of the returned object; a ``None`` kind marks
    #: the field explicitly clean (``("public", None)``)
    fields: tuple[tuple[str, str | None], ...] = ()
    #: whether the bare value itself carries the label (False for
    #: containers whose secrecy lives in one field)
    container: bool = True


@dataclass(frozen=True)
class SinkSpec:
    """A call that crosses the trust boundary."""

    match: str
    kind: str           # finding sub-rule: taint/<kind>
    description: str    # human text for messages


@dataclass(frozen=True)
class TaintSpec:
    """The boundary model: sources, sinks, sanitizers, trusted code."""

    sources: tuple[SourceSpec, ...]
    sinks: tuple[SinkSpec, ...]
    sanitizers: tuple[str, ...]              # matchers; result is clean
    #: (class name, attribute) pairs that are taint sources when read
    #: off ``self`` inside that class (e.g. ("RsaKeyPair", "d"))
    class_fields: tuple[tuple[str, str, str], ...] = ()
    #: modules that ARE the crypto/TCB — never analyzed, never reported
    trusted_modules: frozenset = frozenset()


DEFAULT_TAINT_SPEC = TaintSpec(
    sources=(
        SourceSpec(match="qual:repro.attest.crypto.generate_keypair",
                   kind="key-material", container=False,
                   fields=(("d", "key-material"), ("public", None))),
        SourceSpec(match="qual:repro.attest.crypto.derived_keypair",
                   kind="key-material", container=False,
                   fields=(("d", "key-material"), ("public", None))),
        SourceSpec(match="attr:read_file", kind="guest-data"),
        SourceSpec(match="attr:read_all", kind="guest-data"),
        SourceSpec(match="attr:measurement_for", kind="measurement"),
    ),
    sinks=(
        SinkSpec(match="attr:sendall", kind="relay",
                 description="relay/socket send"),
        SinkSpec(match="attr:send_bytes", kind="relay",
                 description="relay/socket send"),
        SinkSpec(match="suffix:wfile.write", kind="response",
                 description="REST response body"),
        SinkSpec(match="attr:_send", kind="response",
                 description="REST response body"),
        SinkSpec(match="suffix:_handle.write", kind="journal",
                 description="journal serialization"),
        SinkSpec(match="attr:put", kind="journal",
                 description="journal/result-store record"),
        SinkSpec(match="attr:count", kind="telemetry",
                 description="metrics emission"),
        SinkSpec(match="attr:gauge", kind="telemetry",
                 description="metrics emission"),
        SinkSpec(match="attr:observe", kind="telemetry",
                 description="metrics emission"),
        SinkSpec(match="attr:emit", kind="telemetry",
                 description="telemetry emission"),
        SinkSpec(match="qual:warnings.warn", kind="log",
                 description="warning text"),
        SinkSpec(match="qual:print", kind="log",
                 description="stdout"),
        SinkSpec(match="prefix:logging.", kind="log",
                 description="log record"),
    ),
    sanitizers=(
        "prefix:hashlib.",
        "attr:fingerprint",
        "attr:hexdigest",
        "attr:digest",
        "attr:sign",
        "attr:verify",
        "attr:seal",
        "attr:encrypt",
        "qual:len",
        "qual:bool",
        "qual:isinstance",
        "qual:type",
        "qual:hash",
    ),
    class_fields=(
        ("RsaKeyPair", "d", "key-material"),
        ("QuotingEnclave", "_pck_key", "key-material"),
        ("QuotingEnclave", "_attestation_key", "key-material"),
        ("AmdKeyInfrastructure", "_vcek_key", "key-material"),
        ("IntelPcs", "_tcb_signing_key", "key-material"),
        ("CertificateAuthority", "keypair", "key-material"),
    ),
    trusted_modules=frozenset({"repro.attest.crypto"}),
)


def _call_matchers(node: ast.Call,
                   table: ImportTable) -> tuple[str | None, str | None, str]:
    """(resolved qualname, method attr, dotted attribute-chain text)."""
    func = node.func
    qual = table.resolve(func)
    attr = func.attr if isinstance(func, ast.Attribute) else None
    parts: list[str] = []
    probe = func
    while isinstance(probe, ast.Attribute):
        parts.insert(0, probe.attr)
        probe = probe.value
    if isinstance(probe, ast.Name):
        parts.insert(0, probe.id)
    return qual, attr, ".".join(parts)


def _matches(matcher: str, qual: str | None, attr: str | None,
             chain: str) -> bool:
    form, _, pattern = matcher.partition(":")
    if form == "qual":
        return qual == pattern
    if form == "prefix":
        return qual is not None and qual.startswith(pattern)
    if form == "attr":
        return attr == pattern
    if form == "suffix":
        return chain == pattern or chain.endswith("." + pattern)
    raise ValueError(f"unknown taint matcher form: {matcher!r}")


# ---------------------------------------------------------------------------
# function summaries


@dataclass(frozen=True)
class SinkHit:
    """A sink reached by a parameter, recorded in a summary."""

    kind: str                 # sub-rule, e.g. "journal"
    description: str          # sink's human text
    path: tuple[str, ...]     # call chain from the summarized function


@dataclass
class FunctionSummary:
    """What a call to this function does with its arguments."""

    returns: TaintValue = field(default_factory=lambda: CLEAN)
    param_sinks: dict[int, tuple[SinkHit, ...]] = field(default_factory=dict)

    def fingerprint(self) -> tuple:
        """Hashable state for fixpoint change detection."""
        def tv_state(tv: TaintValue, depth: int = _MAX_DEPTH) -> tuple:
            fields = () if depth <= 0 else tuple(sorted(
                (name, tv_state(value, depth - 1))
                for name, value in tv.fields.items()))
            return (tuple(sorted(map(repr, tv.labels))), fields)
        return (tv_state(self.returns),
                tuple(sorted((i, hits)
                             for i, hits in self.param_sinks.items())))


# ---------------------------------------------------------------------------
# the engine


class TaintEngine:
    """Runs the interprocedural analysis over one project."""

    def __init__(self, project: Project, spec: TaintSpec,
                 index: SymbolIndex | None = None,
                 callgraph: CallGraph | None = None) -> None:
        self.project = project
        self.spec = spec
        self.index = index if index is not None else build_index(project)
        self.callgraph = callgraph if callgraph is not None \
            else CallGraph.build(project, self.index)
        self.summaries: dict[str, FunctionSummary] = {}

    def run(self) -> list[Finding]:
        order = [name for name in self.callgraph.topological()
                 if not self._trusted(self.index.functions[name].module.name)]
        # Worklist fixpoint: analyze once in callee-before-caller order,
        # then re-analyze only the callers of functions whose summaries
        # changed.  Joins are monotone; the round cap bounds cycles.
        rounds = {name: 0 for name in order}
        pending = list(order)
        in_pending = set(order)
        while pending:
            qualname = pending.pop(0)
            in_pending.discard(qualname)
            if rounds[qualname] >= _MAX_ROUNDS:
                continue
            rounds[qualname] += 1
            unit = self.index.functions[qualname]
            summary, _ = _FunctionAnalysis(self, unit).run()
            previous = self.summaries.get(qualname)
            if previous is not None and \
                    previous.fingerprint() == summary.fingerprint():
                continue
            self.summaries[qualname] = summary
            for caller in self.callgraph.callers(qualname):
                if caller in rounds and caller not in in_pending:
                    pending.append(caller)
                    in_pending.add(caller)
        findings: dict[tuple, Finding] = {}
        for qualname in order:
            unit = self.index.functions[qualname]
            _, unit_findings = _FunctionAnalysis(self, unit).run()
            for finding in unit_findings:
                key = (finding.path, finding.line, finding.col,
                       finding.rule, finding.message)
                findings.setdefault(key, finding)
        return [findings[key] for key in sorted(findings)]

    def _trusted(self, module_name: str) -> bool:
        return module_name in self.spec.trusted_modules


class _FunctionAnalysis:
    """One flow-sensitive pass over one function body."""

    def __init__(self, engine: TaintEngine, unit: FunctionUnit) -> None:
        self.engine = engine
        self.spec = engine.spec
        self.unit = unit
        self.table = engine.index.import_tables[unit.module.name]
        self.env: dict[str, TaintValue] = {}
        self.returns = CLEAN
        self.param_sinks: dict[int, list[SinkHit]] = {}
        self.findings: list[Finding] = []
        self._params = unit.param_names

    def run(self) -> tuple[FunctionSummary, list[Finding]]:
        for position, name in enumerate(self._params):
            self.env[name] = TaintValue(frozenset({ParamLabel(position)}))
        self._block(self.unit.node.body)
        if self.unit.node.name in ("__repr__", "__str__"):
            self._check_sink_value(
                self.returns, "repr",
                f"{self.unit.node.name} return value", self.unit.node,
                path=())
        summary = FunctionSummary(
            returns=self.returns,
            param_sinks={i: tuple(hits)
                         for i, hits in sorted(self.param_sinks.items())})
        return summary, self.findings

    # -- statements ---------------------------------------------------

    def _block(self, statements: list[ast.stmt]) -> None:
        for statement in statements:
            self._statement(statement)

    def _statement(self, node: ast.stmt) -> None:
        if isinstance(node, ast.Assign):
            value = self._eval(node.value)
            for target in node.targets:
                self._bind(target, value)
        elif isinstance(node, ast.AnnAssign):
            if node.value is not None:
                self._bind(node.target, self._eval(node.value))
        elif isinstance(node, ast.AugAssign):
            value = self._eval(node.value)
            if isinstance(node.target, ast.Name):
                current = self.env.get(node.target.id, CLEAN)
                self._bind(node.target, current.join(value))
            else:
                self._bind(node.target, value)
        elif isinstance(node, ast.Expr):
            self._eval(node.value)
        elif isinstance(node, ast.Return):
            if node.value is not None:
                self.returns = self.returns.join(self._eval(node.value))
        elif isinstance(node, ast.Raise):
            self._raise(node)
        elif isinstance(node, ast.If):
            self._eval(node.test)
            self._branch([node.body, node.orelse])
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            iterated = self._eval(node.iter)
            self._bind(node.target, TaintValue(iterated.deep_labels()))
            # two passes: loop-carried taint stabilizes for the common
            # accumulate-in-loop patterns
            self._branch([node.body + node.body + node.orelse, []])
        elif isinstance(node, ast.While):
            self._eval(node.test)
            self._branch([node.body + node.body + node.orelse, []])
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                value = self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, value)
            self._block(node.body)
        elif isinstance(node, ast.Try):
            branches = [node.body]
            for handler in node.handlers:
                branches.append(list(handler.body))
            branches.append(list(node.orelse))
            self._branch(branches)
            self._block(node.finalbody)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            pass   # nested scopes are separate units
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.env.pop(target.id, None)
        elif isinstance(node, (ast.Assert,)):
            self._eval(node.test)
        # Import/Global/Nonlocal/Pass/Break/Continue: no taint flow

    def _branch(self, bodies: list[list[ast.stmt]]) -> None:
        """Analyze alternative bodies on env copies and join."""
        base = dict(self.env)
        merged: dict[str, TaintValue] = dict(base)
        for body in bodies:
            self.env = dict(base)
            self._block(body)
            for name, value in self.env.items():
                current = merged.get(name)
                merged[name] = value if current is None \
                    or current is value else current.join(value)
        self.env = merged

    def _bind(self, target: ast.expr, value: TaintValue) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = value
        elif isinstance(target, ast.Attribute):
            base = target.value
            if isinstance(base, ast.Name):
                container = self.env.get(base.id, CLEAN)
                self.env[base.id] = container.with_field(target.attr, value)
        elif isinstance(target, (ast.Tuple, ast.List)):
            element = TaintValue(value.deep_labels())
            for item in target.elts:
                inner = item.value if isinstance(item, ast.Starred) else item
                self._bind(inner, element)
        elif isinstance(target, ast.Subscript):
            base = target.value
            if isinstance(base, ast.Name):
                container = self.env.get(base.id, CLEAN)
                self.env[base.id] = container.join(
                    TaintValue(value.deep_labels()))
        elif isinstance(target, ast.Starred):
            self._bind(target.value, value)

    def _raise(self, node: ast.Raise) -> None:
        if node.exc is None:
            return
        exc = node.exc
        if isinstance(exc, ast.Call):
            for arg in exc.args:
                self._check_sink_value(
                    self._eval(arg), "exception", "exception message",
                    arg, path=())
            for keyword in exc.keywords:
                self._check_sink_value(
                    self._eval(keyword.value), "exception",
                    "exception message", keyword.value, path=())
        else:
            self._check_sink_value(self._eval(exc), "exception",
                                   "exception message", exc, path=())

    # -- expressions --------------------------------------------------

    def _eval(self, node: ast.expr) -> TaintValue:
        if isinstance(node, ast.Name):
            return self.env.get(node.id, CLEAN)
        if isinstance(node, ast.Constant):
            return CLEAN
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node)
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.JoinedStr):
            labels: set = set()
            for part in node.values:
                if isinstance(part, ast.FormattedValue):
                    labels |= self._eval(part.value).deep_labels()
            return TaintValue(frozenset(labels))
        if isinstance(node, ast.FormattedValue):
            return TaintValue(self._eval(node.value).deep_labels())
        if isinstance(node, ast.BinOp):
            return self._eval(node.left).join(self._eval(node.right))
        if isinstance(node, ast.BoolOp):
            out = CLEAN
            for value in node.values:
                out = out.join(self._eval(value))
            return out
        if isinstance(node, ast.UnaryOp):
            return self._eval(node.operand)
        if isinstance(node, ast.Compare):
            self._eval(node.left)
            for comparator in node.comparators:
                self._eval(comparator)
            return CLEAN   # a bool; equality oracles are out of scope
        if isinstance(node, ast.IfExp):
            self._eval(node.test)
            return self._eval(node.body).join(self._eval(node.orelse))
        if isinstance(node, ast.Dict):
            fields: dict[str, TaintValue] = {}
            labels: set = set()
            for key, value in zip(node.keys, node.values):
                value_tv = self._eval(value)
                if (isinstance(key, ast.Constant)
                        and isinstance(key.value, str)):
                    fields[key.value] = value_tv
                else:
                    if key is not None:
                        labels |= self._eval(key).deep_labels()
                    labels |= value_tv.deep_labels()
            return TaintValue.make(frozenset(labels), fields)
        if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
            labels = set()
            for item in node.elts:
                inner = item.value if isinstance(item, ast.Starred) else item
                labels |= self._eval(inner).deep_labels()
            return TaintValue(frozenset(labels))
        if isinstance(node, ast.Subscript):
            self._eval(node.slice)
            return TaintValue(self._eval(node.value).deep_labels())
        if isinstance(node, ast.Starred):
            return self._eval(node.value)
        if isinstance(node, ast.Await):
            return self._eval(node.value)
        if isinstance(node, ast.NamedExpr):
            value = self._eval(node.value)
            if isinstance(node.target, ast.Name):
                self.env[node.target.id] = value
            return value
        if isinstance(node, ast.Lambda):
            return CLEAN
        # comprehensions and anything else: join every child expression
        out = CLEAN
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                out = out.join(TaintValue(self._eval(child).deep_labels()))
            elif isinstance(child, ast.comprehension):
                out = out.join(
                    TaintValue(self._eval(child.iter).deep_labels()))
        return out

    def _eval_attribute(self, node: ast.Attribute) -> TaintValue:
        base = self._eval(node.value)
        value = base.attr(node.attr)
        owner = self.unit.owner_class
        if (isinstance(node.value, ast.Name) and node.value.id == "self"
                and owner is not None and node.attr not in base.fields):
            owner_name = owner.rsplit(".", 1)[-1]
            for class_name, attr, kind in self.spec.class_fields:
                if class_name == owner_name and attr == node.attr:
                    label = TaintLabel(
                        kind=kind, source=f"{owner_name}.{attr}")
                    # keypair-shaped: the public half stays clean
                    return TaintValue.make(
                        value.labels | frozenset({label}),
                        {"public": CLEAN})
        return value

    # -- calls --------------------------------------------------------

    def _eval_call(self, node: ast.Call) -> TaintValue:
        qual, attr, chain = _call_matchers(node, self.table)
        positional = [self._eval(arg) for arg in node.args]
        keywords = {kw.arg: self._eval(kw.value) for kw in node.keywords}
        arg_values = positional + list(keywords.values())

        for sanitizer in self.spec.sanitizers:
            if _matches(sanitizer, qual, attr, chain):
                return CLEAN

        for source in self.spec.sources:
            if _matches(source.match, qual, attr, chain):
                return self._source_value(source, qual, attr)

        for sink in self.spec.sinks:
            if _matches(sink.match, qual, attr, chain):
                sink_name = qual or chain or attr or "call"
                checked = list(arg_values)
                func = node.func
                # a tainted receiver is data too (``run.emit(registry)``)
                # — but not bare ``self``, whose methods' own arguments
                # are what carry taint into the sink
                if isinstance(func, ast.Attribute) and not (
                        isinstance(func.value, ast.Name)
                        and func.value.id == "self"):
                    checked.append(self._eval(func.value))
                for value in checked:
                    self._check_sink_value(
                        value, sink.kind,
                        f"{sink.description} ({sink_name})", node, path=())
                return CLEAN

        target = self._resolve_target(node, qual)
        if target is not None:
            return self._apply_target(node, target, positional, keywords)

        # Unknown call: taint flows args (and a tainted receiver)
        # through to the result — str/repr/json.dumps/format and
        # arbitrary methods on secret-bearing objects stay tainted.
        labels: set = set()
        for value in arg_values:
            labels |= value.deep_labels()
        if isinstance(node.func, ast.Attribute):
            labels |= self._eval(node.func.value).deep_labels()
        return TaintValue(frozenset(labels))

    def _source_value(self, source: SourceSpec, qual: str | None,
                      attr: str | None) -> TaintValue:
        origin = f"{qual or attr}()"
        label = TaintLabel(kind=source.kind, source=origin)
        fields = {}
        for name, kind in source.fields:
            if kind is None:
                fields[name] = CLEAN
            else:
                fields[name] = TaintValue(frozenset(
                    {TaintLabel(kind=kind, source=origin)}))
        labels = frozenset({label}) if source.container else _EMPTY
        return TaintValue(labels, fields)

    def _resolve_target(self, node: ast.Call,
                        qual: str | None) -> str | None:
        """A project function/class qualname for this call, if known."""
        index = self.engine.index
        func = node.func
        candidates: list[str] = []
        if qual is not None:
            candidates.append(qual)
        if isinstance(func, ast.Name) and func.id not in self.unit.locals:
            candidates.append(f"{self.unit.module.name}.{func.id}")
        if isinstance(func, ast.Attribute):
            base = func.value
            if (isinstance(base, ast.Name) and base.id == "self"
                    and self.unit.owner_class is not None):
                candidates.append(f"{self.unit.owner_class}.{func.attr}")
            if isinstance(base, ast.Name) and base.id not in self.unit.locals:
                candidates.append(
                    f"{self.unit.module.name}.{base.id}.{func.attr}")
        for candidate in candidates:
            canonical = index.canonical(candidate)
            if canonical in index.functions or canonical in index.classes:
                return canonical
        return None

    def _apply_target(self, node: ast.Call, target: str,
                      positional: list[TaintValue],
                      keywords: dict[str | None, TaintValue]) -> TaintValue:
        index = self.engine.index
        if target in index.classes:
            # Constructor: keyword args become fields (field-sensitive
            # dataclass construction); positional taint lands on the
            # container.
            labels: set = set()
            for value in positional:
                labels |= value.deep_labels()
            fields = {name: value for name, value in keywords.items()
                      if name is not None}
            for name, value in keywords.items():
                if name is None:
                    labels |= value.deep_labels()
            return TaintValue.make(frozenset(labels), fields)

        unit = index.functions[target]
        summary = self.engine.summaries.get(target)
        if summary is None:
            summary = FunctionSummary()

        argmap = self._argument_map(node, unit, positional, keywords)

        # param -> sink flows recorded in the callee's summary fire at
        # this call site when the argument is really tainted, or extend
        # this function's own summary when it is a parameter.
        for position, hits in summary.param_sinks.items():
            value = argmap.get(position)
            if value is None:
                continue
            deep = value.deep_labels()
            for hit in hits:
                if len(hit.path) >= _MAX_PATH:
                    continue   # deep cyclic chain; already reported shorter
                extended = SinkHit(kind=hit.kind,
                                   description=hit.description,
                                   path=(target, *hit.path))
                self._check_sink_labels(deep, extended, node)

        return self._substitute(summary.returns, argmap)

    def _argument_map(self, node: ast.Call, unit: FunctionUnit,
                      positional: list[TaintValue],
                      keywords: dict[str | None, TaintValue],
                      ) -> dict[int, TaintValue]:
        """Caller argument taints keyed by callee parameter position."""
        params = unit.param_names
        argmap: dict[int, TaintValue] = {}
        offset = 0
        func = node.func
        if unit.owner_class is not None and isinstance(func, ast.Attribute):
            base = func.value
            class_short = unit.owner_class.rsplit(".", 1)[-1]
            unbound = (isinstance(base, ast.Name)
                       and base.id == class_short
                       and base.id not in self.unit.locals)
            if not unbound:
                # bound method call: parameter 0 is the receiver
                offset = 1
                argmap[0] = self._eval(base)
        for position, value in enumerate(positional):
            argmap[position + offset] = value
        for name, value in keywords.items():
            if name is None:
                continue
            if name in params:
                argmap[params.index(name)] = value
        return argmap

    def _substitute(self, tv: TaintValue, argmap: dict[int, TaintValue],
                    depth: int = _MAX_DEPTH) -> TaintValue:
        labels: set = set()
        for label in tv.labels:
            if isinstance(label, ParamLabel):
                value = argmap.get(label.index)
                if value is not None:
                    labels |= value.deep_labels()
            else:
                labels.add(label)
        fields = {}
        if depth > 0:
            fields = {name: self._substitute(value, argmap, depth - 1)
                      for name, value in tv.fields.items()}
        return TaintValue.make(frozenset(labels), fields)

    # -- sink reporting -----------------------------------------------

    def _check_sink_value(self, value: TaintValue, kind: str,
                          description: str, node: ast.AST,
                          path: tuple[str, ...]) -> None:
        hit = SinkHit(kind=kind, description=description, path=path)
        self._check_sink_labels(value.deep_labels(), hit, node)

    def _check_sink_labels(self, labels: frozenset, hit: SinkHit,
                           node: ast.AST) -> None:
        real = sorted((label for label in labels
                       if isinstance(label, TaintLabel)),
                      key=lambda label: (label.kind, label.source))
        params = [label for label in labels if isinstance(label, ParamLabel)]
        for label in real:
            self.findings.append(self._finding(label, hit, node))
        for label in params:
            self.param_sinks.setdefault(label.index, [])
            if hit not in self.param_sinks[label.index]:
                self.param_sinks[label.index].append(hit)

    def _finding(self, label: TaintLabel, hit: SinkHit,
                 node: ast.AST) -> Finding:
        flow = " -> ".join((label.source, *hit.path, hit.description))
        article = "an" if hit.kind[:1] in "aeiou" else "a"
        return Finding(
            rule=f"taint/{hit.kind}",
            severity=Severity.ERROR,
            path=str(self.unit.module.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=(f"{label.kind} reaches {article} {hit.kind} sink: "
                     f"{flow}; "
                     "digest, seal, or redact it before it crosses the "
                     "trust boundary"),
            symbol=self.unit.relname,
            module=self.unit.module.name,
        )


class ConfidentialTaintRule(Rule):
    """Forward taint: key material/guest data must not cross the boundary."""

    id = "taint"
    severity = Severity.ERROR

    def __init__(self, spec: TaintSpec = DEFAULT_TAINT_SPEC) -> None:
        self.spec = spec

    def check_project(self, project: Project) -> Iterator[Finding]:
        yield from TaintEngine(project, self.spec).run()
