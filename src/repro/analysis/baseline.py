"""Committed baselines for grandfathered findings.

A baseline is a JSON file listing finding fingerprints that are
accepted for now: ``confbench lint --baseline FILE`` subtracts them and
fails only on *new* findings, so the linter can land with teeth even
before every legacy finding is fixed.  Fingerprints are line-number
independent (see :meth:`repro.analysis.core.Finding.fingerprint`), so
unrelated edits don't churn the file; fixing a baselined finding simply
leaves a stale entry, which ``--write-baseline`` prunes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.core import AnalysisError, Finding

BASELINE_VERSION = 2

#: Older formats still accepted by :meth:`Baseline.load`.  v1 lacked
#: the ``passes`` schema map; its fingerprints are compatible.
_COMPAT_VERSIONS = frozenset({1, BASELINE_VERSION})


def _fingerprints(findings: list[Finding]) -> list[tuple[Finding, str]]:
    """Pair findings with occurrence-disambiguated fingerprints."""
    counts: dict[tuple[str, str, str, str], int] = {}
    pairs: list[tuple[Finding, str]] = []
    for finding in findings:
        key = (finding.rule, finding.module or finding.path,
               finding.symbol, finding.message)
        occurrence = counts.get(key, 0)
        counts[key] = occurrence + 1
        pairs.append((finding, finding.fingerprint(occurrence)))
    return pairs


@dataclass
class Baseline:
    """The set of accepted finding fingerprints."""

    fingerprints: frozenset[str] = frozenset()
    entries: list[dict] = field(default_factory=list)
    #: pass schema versions the baseline was generated against
    #: (:data:`repro.analysis.engine.PASS_SCHEMA` at write time)
    passes: dict[str, int] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except OSError as exc:
            raise AnalysisError(f"cannot read baseline {path}: {exc}") \
                from exc
        except json.JSONDecodeError as exc:
            raise AnalysisError(f"malformed baseline {path}: {exc}") from exc
        if payload.get("version") not in _COMPAT_VERSIONS:
            raise AnalysisError(
                f"baseline {path} has version {payload.get('version')!r}, "
                f"expected one of {sorted(_COMPAT_VERSIONS)}")
        entries = payload.get("findings", [])
        return cls(fingerprints=frozenset(e["fingerprint"] for e in entries),
                   entries=entries,
                   passes=dict(payload.get("passes", {})))

    @classmethod
    def from_findings(cls, findings: list[Finding],
                      passes: dict[str, int] | None = None) -> "Baseline":
        entries = [
            {
                "fingerprint": fingerprint,
                "rule": finding.rule,
                "module": finding.module,
                "path": finding.path,
                "symbol": finding.symbol,
                "message": finding.message,
            }
            for finding, fingerprint in _fingerprints(findings)
        ]
        return cls(fingerprints=frozenset(e["fingerprint"] for e in entries),
                   entries=entries,
                   passes=dict(passes or {}))

    def save(self, path: Path) -> None:
        payload = {
            "version": BASELINE_VERSION,
            "comment": "Grandfathered `confbench lint` findings; "
                       "regenerate with --write-baseline.",
            "passes": dict(sorted(self.passes.items())),
            "findings": sorted(self.entries,
                               key=lambda e: (e["path"], e["rule"],
                                              e["fingerprint"])),
        }
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")

    def split(self, findings: list[Finding]
              ) -> tuple[list[Finding], list[Finding]]:
        """Partition into (new, grandfathered) against this baseline."""
        new: list[Finding] = []
        old: list[Finding] = []
        for finding, fingerprint in _fingerprints(findings):
            (old if fingerprint in self.fingerprints else new).append(finding)
        return new, old
