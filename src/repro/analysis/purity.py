"""Trial-purity pass: no module-state mutation on the trial path.

``execute_trial`` must be a pure function of its spec — that is the
property that makes serial and parallel runs bit-identical and lets
results be cached by spec content hash (DESIGN.md "Run pipeline").
A function on that path that writes module-level state (a global
counter, a cache keyed on something spec-independent, a registry
mutated at call time) couples one trial's result to how many trials
ran before it, which exactly breaks the guarantee.

The pass walks the project call graph built by
:mod:`repro.analysis.dataflow`:

- entry points are ``execute_trial``/``build_body`` plus every
  function decorated with ``@body_factory(...)``;
- calls are resolved syntactically through import aliases (including
  package ``__init__`` re-exports) and same-module names;
- instantiating a project class marks all its methods reachable
  (coarse, no inheritance resolution);
- a nested ``def`` (the workload-body closures the factories return)
  is reachable whenever its enclosing function is.

Inside reachable functions it reports:

- ``purity/global-write`` (error) — a ``global`` declaration, which
  exists only to rebind module state;
- ``purity/module-state-mutation`` (error) — subscript/attribute
  assignment or a mutating method call (``append``/``update``/...)
  whose base is a module-level name rather than a local;
- ``purity/nonspec-global`` (warning) — reading a module-level
  *variable* (lowercase, rebindable) that isn't a function, class,
  import, or ALL_CAPS constant: state the spec doesn't determine;
- ``purity/memoized`` (warning) — an ``functools.lru_cache``/``cache``
  decorator on a reachable function: process-level memoization is
  only sound when the key fully determines the value, which the
  analyzer cannot prove — review and baseline, or restructure.

Intentional pure-function memo caches (e.g. the RSA keygen cache in
``repro.attest.crypto``) carry ``# confbench: allow[purity]`` pragmas
with a justification; anything else is a bug.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, Project, Rule, Severity
from repro.analysis.dataflow import (
    FunctionUnit,
    SymbolIndex,
    build_index,
    call_targets,
    decorator_names,
    scope_nodes,
)

#: Call-graph roots: the runner's trial function and body resolver.
DEFAULT_ENTRY_POINTS = (
    "repro.core.runner.execute_trial",
    "repro.core.runner.build_body",
)

#: Decorator names that mark a function as a call-graph root.
ENTRY_DECORATORS = frozenset({
    "body_factory",
    "repro.core.runner.body_factory",
})

#: Decorators that introduce process-level memoization.
MEMO_DECORATORS = frozenset({
    "functools.lru_cache", "functools.cache", "lru_cache", "cache",
})

#: Method names that mutate their receiver in place.
MUTATING_METHODS = frozenset({
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "add", "discard", "update", "setdefault", "appendleft", "popleft",
    "sort", "reverse", "write",
})


class TrialPurityRule(Rule):
    """Checks functions reachable from the trial pipeline for purity."""

    id = "purity"
    severity = Severity.ERROR

    def __init__(self, entry_points: tuple[str, ...] = DEFAULT_ENTRY_POINTS,
                 entry_decorators: frozenset[str] = ENTRY_DECORATORS) -> None:
        self.entry_points = tuple(entry_points)
        self.entry_decorators = frozenset(entry_decorators)

    def check_project(self, project: Project) -> Iterator[Finding]:
        index = build_index(project)
        reachable = self._reachable_units(index)
        for qualname in sorted(reachable):
            unit = index.functions.get(qualname)
            if unit is not None:
                yield from self._check_unit(unit, index)

    # -- reachability -------------------------------------------------

    def _entry_units(self, index: SymbolIndex) -> list[str]:
        entries = [e for e in self.entry_points if e in index.functions]
        for qualname, unit in index.functions.items():
            table = index.import_tables[unit.module.name]
            if decorator_names(unit.node, table) & self.entry_decorators:
                entries.append(qualname)
        return entries

    def _reachable_units(self, index: SymbolIndex) -> set[str]:
        seen: set[str] = set()
        todo = self._entry_units(index)
        while todo:
            qualname = todo.pop()
            if qualname in seen:
                continue
            seen.add(qualname)
            unit = index.functions.get(qualname)
            if unit is None:
                continue
            todo.extend(unit.nested)
            todo.extend(call_targets(unit, index))
        return seen

    # -- purity checks ------------------------------------------------

    def _check_unit(self, unit: FunctionUnit,
                    index: SymbolIndex) -> Iterator[Finding]:
        module = unit.module
        table = index.import_tables[module.name]
        globals_kinds = index.module_globals[module.name]
        local = unit.locals

        def is_module_state(name: str) -> bool:
            return name not in local and name in globals_kinds

        def finding(subrule: str, node: ast.AST, message: str,
                    severity: Severity = Severity.ERROR) -> Finding:
            return Finding(
                rule=f"purity/{subrule}", severity=severity,
                path=str(module.path), line=node.lineno,
                col=node.col_offset, message=message,
                symbol=unit.relname,
                module=module.name)

        if decorator_names(unit.node, table) & MEMO_DECORATORS:
            yield finding(
                "memoized", unit.node,
                "lru_cache on the trial path: process-level memoization "
                "is only sound if the key fully determines the value",
                severity=Severity.WARNING)

        for node in scope_nodes(unit.node):
            if isinstance(node, ast.Global):
                yield finding(
                    "global-write", node,
                    f"'global {', '.join(node.names)}' on the trial path: "
                    "rebinding module state makes the trial depend on "
                    "execution history")
            elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = node.targets if isinstance(node, ast.Assign) \
                    else [node.target]
                for target in targets:
                    base = _subscript_or_attribute_base(target)
                    if base is None:
                        continue
                    if isinstance(base, ast.Name) and is_module_state(
                            base.id):
                        yield finding(
                            "module-state-mutation", node,
                            f"writes module-level '{base.id}' from the "
                            "trial path; results must be a pure function "
                            "of the spec")
                    else:
                        resolved = table.resolve(base) if not isinstance(
                            base, ast.Name) or base.id not in local else None
                        if resolved and resolved.startswith("repro."):
                            yield finding(
                                "module-state-mutation", node,
                                f"writes attribute of module "
                                f"'{resolved}' from the trial path")
            elif isinstance(node, ast.Call):
                func = node.func
                if (isinstance(func, ast.Attribute)
                        and func.attr in MUTATING_METHODS
                        and isinstance(func.value, ast.Name)
                        and is_module_state(func.value.id)):
                    yield finding(
                        "module-state-mutation", node,
                        f"calls {func.value.id}.{func.attr}() on "
                        "module-level state from the trial path")
            elif (isinstance(node, ast.Name)
                  and isinstance(node.ctx, ast.Load)
                  and is_module_state(node.id)
                  and globals_kinds.get(node.id) == "var"):
                yield finding(
                    "nonspec-global", node,
                    f"reads module-level variable '{node.id}', state the "
                    "trial spec does not determine",
                    severity=Severity.WARNING)


def _subscript_or_attribute_base(target: ast.expr) -> ast.expr | None:
    """Innermost base of a subscript/attribute store target, else None."""
    node = target
    seen_container = False
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        seen_container = True
        node = node.value
    if isinstance(target, ast.Name) or not seen_container:
        return None
    return node
