"""Trial-purity pass: no module-state mutation on the trial path.

``execute_trial`` must be a pure function of its spec — that is the
property that makes serial and parallel runs bit-identical and lets
results be cached by spec content hash (DESIGN.md "Run pipeline").
A function on that path that writes module-level state (a global
counter, a cache keyed on something spec-independent, a registry
mutated at call time) couples one trial's result to how many trials
ran before it, which exactly breaks the guarantee.

The pass builds a best-effort static call graph over the project:

- entry points are ``execute_trial``/``build_body`` plus every
  function decorated with ``@body_factory(...)``;
- calls are resolved syntactically through import aliases (including
  package ``__init__`` re-exports) and same-module names;
- instantiating a project class marks all its methods reachable
  (coarse, no inheritance resolution);
- a nested ``def`` (the workload-body closures the factories return)
  is reachable whenever its enclosing function is.

Inside reachable functions it reports:

- ``purity/global-write`` (error) — a ``global`` declaration, which
  exists only to rebind module state;
- ``purity/module-state-mutation`` (error) — subscript/attribute
  assignment or a mutating method call (``append``/``update``/...)
  whose base is a module-level name rather than a local;
- ``purity/nonspec-global`` (warning) — reading a module-level
  *variable* (lowercase, rebindable) that isn't a function, class,
  import, or ALL_CAPS constant: state the spec doesn't determine;
- ``purity/memoized`` (warning) — an ``functools.lru_cache``/``cache``
  decorator on a reachable function: process-level memoization is
  only sound when the key fully determines the value, which the
  analyzer cannot prove — review and baseline, or restructure.

Intentional pure-function memo caches (e.g. the RSA keygen cache in
``repro.attest.crypto``) carry ``# confbench: allow[purity]`` pragmas
with a justification; anything else is a bug.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from repro.analysis.core import (
    Finding,
    ImportTable,
    Project,
    Rule,
    Severity,
    SourceModule,
)

#: Call-graph roots: the runner's trial function and body resolver.
DEFAULT_ENTRY_POINTS = (
    "repro.core.runner.execute_trial",
    "repro.core.runner.build_body",
)

#: Decorator names that mark a function as a call-graph root.
ENTRY_DECORATORS = frozenset({
    "body_factory",
    "repro.core.runner.body_factory",
})

#: Decorators that introduce process-level memoization.
MEMO_DECORATORS = frozenset({
    "functools.lru_cache", "functools.cache", "lru_cache", "cache",
})

#: Method names that mutate their receiver in place.
MUTATING_METHODS = frozenset({
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "add", "discard", "update", "setdefault", "appendleft", "popleft",
    "sort", "reverse", "write",
})


def _scope_nodes(node: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested scopes.

    Starts from the *body* for function nodes: decorators, default
    values, and annotations evaluate at definition time, not when the
    trial path calls the function, so they don't belong to its scope.
    """
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        todo = list(node.body)
    else:
        todo = list(ast.iter_child_nodes(node))
    while todo:
        child = todo.pop()
        yield child
        if not isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef, ast.Lambda)):
            todo.extend(ast.iter_child_nodes(child))


def _local_names(fn: ast.AST) -> set[str]:
    """Names bound inside one function scope (params + assignments)."""
    names: set[str] = set()
    args = fn.args
    for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
        names.add(arg.arg)
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    declared_global: set[str] = set()
    for node in _scope_nodes(fn):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Name) and isinstance(
                node.ctx, (ast.Store, ast.Del)):
            names.add(node.id)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ExceptHandler) and node.name:
            names.add(node.name)
        elif isinstance(node, ast.NamedExpr) and isinstance(
                node.target, ast.Name):
            names.add(node.target.id)
    return names - declared_global


@dataclass
class FunctionUnit:
    """One analyzable function scope (module fn, method, or closure)."""

    qualname: str               # "repro.core.runner.execute_trial"
    module: SourceModule
    node: ast.AST               # FunctionDef / AsyncFunctionDef
    owner_class: str | None     # enclosing class qualname, if a method
    enclosing_locals: frozenset[str]   # closure-visible names
    nested: list[str] = field(default_factory=list)   # nested unit names

    @property
    def locals(self) -> frozenset[str]:
        return frozenset(_local_names(self.node)) | self.enclosing_locals


@dataclass
class _Index:
    """Project-wide symbol tables the reachability walk consults."""

    functions: dict[str, FunctionUnit] = field(default_factory=dict)
    classes: dict[str, list[str]] = field(default_factory=dict)
    aliases: dict[str, str] = field(default_factory=dict)
    module_globals: dict[str, dict[str, str]] = field(default_factory=dict)
    import_tables: dict[str, ImportTable] = field(default_factory=dict)

    def canonical(self, qualified: str) -> str:
        """Follow ``__init__`` re-export aliases to the defining module."""
        seen = set()
        while qualified in self.aliases and qualified not in seen:
            seen.add(qualified)
            qualified = self.aliases[qualified]
        return qualified


def _classify_module_globals(tree: ast.Module) -> dict[str, str]:
    """Module-level bindings → kind ("def", "class", "import", "const",
    "var").  Only "var" reads count as non-spec state."""
    kinds: dict[str, str] = {}

    def bind(name: str, kind: str) -> None:
        # A name both assigned and def'd keeps the strongest kind seen.
        if kinds.get(name) not in ("def", "class", "import"):
            kinds[name] = kind

    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            kinds[node.name] = "def"
        elif isinstance(node, ast.ClassDef):
            kinds[node.name] = "class"
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                if alias.name != "*":
                    kinds[alias.asname or alias.name.split(".")[0]] = "import"
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            for target in targets:
                if isinstance(target, ast.Name):
                    upper = target.id.lstrip("_")
                    kind = "const" if upper.isupper() or not upper else "var"
                    bind(target.id, kind)
    return kinds


def _decorator_names(fn: ast.AST, table: ImportTable) -> set[str]:
    names: set[str] = set()
    for dec in fn.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        resolved = table.resolve(target)
        if resolved:
            names.add(resolved)
        if isinstance(target, ast.Name):
            names.add(target.id)
    return names


def build_index(project: Project) -> _Index:
    """Symbol tables: functions, classes, re-export aliases, globals."""
    index = _Index()
    for module in project.modules:
        table = ImportTable().scan(
            module.tree, module.name,
            is_package_init=module.path.stem == "__init__")
        index.import_tables[module.name] = table
        index.module_globals[module.name] = _classify_module_globals(
            module.tree)
        for local, qualified in table.names.items():
            index.aliases[f"{module.name}.{local}"] = qualified
        _index_scope(index, module, module.tree, prefix=module.name,
                     owner_class=None, enclosing=frozenset())
    return index


def _index_scope(index: _Index, module: SourceModule, node: ast.AST,
                 prefix: str, owner_class: str | None,
                 enclosing: frozenset[str]) -> list[str]:
    """Register every function/class under ``node``; returns the unit
    names registered directly at this level."""
    registered: list[str] = []
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qualname = f"{prefix}.{child.name}"
            unit = FunctionUnit(qualname=qualname, module=module,
                                node=child, owner_class=owner_class,
                                enclosing_locals=enclosing)
            index.functions[qualname] = unit
            unit.nested = _index_scope(
                index, module, child, prefix=qualname,
                owner_class=owner_class,
                enclosing=enclosing | frozenset(_local_names(child)))
            registered.append(qualname)
        elif isinstance(child, ast.ClassDef):
            class_qual = f"{prefix}.{child.name}"
            methods = _index_scope(index, module, child, prefix=class_qual,
                                   owner_class=class_qual,
                                   enclosing=enclosing)
            index.classes[class_qual] = methods
            registered.append(class_qual)
        elif not isinstance(child, ast.Lambda):
            registered.extend(_index_scope(index, module, child, prefix,
                                           owner_class, enclosing))
    return registered


class TrialPurityRule(Rule):
    """Checks functions reachable from the trial pipeline for purity."""

    id = "purity"
    severity = Severity.ERROR

    def __init__(self, entry_points: tuple[str, ...] = DEFAULT_ENTRY_POINTS,
                 entry_decorators: frozenset[str] = ENTRY_DECORATORS) -> None:
        self.entry_points = tuple(entry_points)
        self.entry_decorators = frozenset(entry_decorators)

    def check_project(self, project: Project) -> Iterator[Finding]:
        index = build_index(project)
        reachable = self._reachable_units(index)
        for qualname in sorted(reachable):
            unit = index.functions.get(qualname)
            if unit is not None:
                yield from self._check_unit(unit, index)

    # -- reachability -------------------------------------------------

    def _entry_units(self, index: _Index) -> list[str]:
        entries = [e for e in self.entry_points if e in index.functions]
        for qualname, unit in index.functions.items():
            table = index.import_tables[unit.module.name]
            if _decorator_names(unit.node, table) & self.entry_decorators:
                entries.append(qualname)
        return entries

    def _reachable_units(self, index: _Index) -> set[str]:
        seen: set[str] = set()
        todo = self._entry_units(index)
        while todo:
            qualname = todo.pop()
            if qualname in seen:
                continue
            seen.add(qualname)
            unit = index.functions.get(qualname)
            if unit is None:
                continue
            todo.extend(unit.nested)
            todo.extend(self._callees(unit, index))
        return seen

    def _callees(self, unit: FunctionUnit, index: _Index) -> list[str]:
        table = index.import_tables[unit.module.name]
        local = unit.locals
        callees: list[str] = []

        def add_target(qualified: str) -> None:
            qualified = index.canonical(qualified)
            if qualified in index.functions:
                callees.append(qualified)
            elif qualified in index.classes:
                callees.extend(index.classes[qualified])

        for node in _scope_nodes(unit.node):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name):
                # Import bindings land in the import table AND in the
                # local-name set (function-level imports are locals),
                # so resolve through the table before the local check.
                resolved = table.resolve(func)
                if resolved and resolved != func.id:
                    add_target(resolved)
                elif func.id not in local:
                    add_target(f"{unit.module.name}.{func.id}")
            elif isinstance(func, ast.Attribute):
                base = func.value
                if (isinstance(base, ast.Name) and base.id == "self"
                        and unit.owner_class is not None):
                    add_target(f"{unit.owner_class}.{func.attr}")
                    continue
                resolved = table.resolve(func)
                if resolved:
                    add_target(resolved)
                # ClassName.method through a same-module class.
                if isinstance(base, ast.Name) and base.id not in local:
                    add_target(f"{unit.module.name}.{base.id}.{func.attr}")
        return callees

    # -- purity checks ------------------------------------------------

    def _check_unit(self, unit: FunctionUnit,
                    index: _Index) -> Iterator[Finding]:
        module = unit.module
        table = index.import_tables[module.name]
        globals_kinds = index.module_globals[module.name]
        local = unit.locals

        def is_module_state(name: str) -> bool:
            return name not in local and name in globals_kinds

        def finding(subrule: str, node: ast.AST, message: str,
                    severity: Severity = Severity.ERROR) -> Finding:
            return Finding(
                rule=f"purity/{subrule}", severity=severity,
                path=str(module.path), line=node.lineno,
                col=node.col_offset, message=message,
                symbol=unit.qualname[len(module.name) + 1:],
                module=module.name)

        if _decorator_names(unit.node, table) & MEMO_DECORATORS:
            yield finding(
                "memoized", unit.node,
                "lru_cache on the trial path: process-level memoization "
                "is only sound if the key fully determines the value",
                severity=Severity.WARNING)

        for node in _scope_nodes(unit.node):
            if isinstance(node, ast.Global):
                yield finding(
                    "global-write", node,
                    f"'global {', '.join(node.names)}' on the trial path: "
                    "rebinding module state makes the trial depend on "
                    "execution history")
            elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = node.targets if isinstance(node, ast.Assign) \
                    else [node.target]
                for target in targets:
                    base = _subscript_or_attribute_base(target)
                    if base is None:
                        continue
                    if isinstance(base, ast.Name) and is_module_state(
                            base.id):
                        yield finding(
                            "module-state-mutation", node,
                            f"writes module-level '{base.id}' from the "
                            "trial path; results must be a pure function "
                            "of the spec")
                    else:
                        resolved = table.resolve(base) if not isinstance(
                            base, ast.Name) or base.id not in local else None
                        if resolved and resolved.startswith("repro."):
                            yield finding(
                                "module-state-mutation", node,
                                f"writes attribute of module "
                                f"'{resolved}' from the trial path")
            elif isinstance(node, ast.Call):
                func = node.func
                if (isinstance(func, ast.Attribute)
                        and func.attr in MUTATING_METHODS
                        and isinstance(func.value, ast.Name)
                        and is_module_state(func.value.id)):
                    yield finding(
                        "module-state-mutation", node,
                        f"calls {func.value.id}.{func.attr}() on "
                        "module-level state from the trial path")
            elif (isinstance(node, ast.Name)
                  and isinstance(node.ctx, ast.Load)
                  and is_module_state(node.id)
                  and globals_kinds.get(node.id) == "var"):
                yield finding(
                    "nonspec-global", node,
                    f"reads module-level variable '{node.id}', state the "
                    "trial spec does not determine",
                    severity=Severity.WARNING)


def _subscript_or_attribute_base(target: ast.expr) -> ast.expr | None:
    """Innermost base of a subscript/attribute store target, else None."""
    node = target
    seen_container = False
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        seen_container = True
        node = node.value
    if isinstance(target, ast.Name) or not seen_container:
        return None
    return node
