"""Layering pass: enforce the DESIGN.md layer DAG on real imports.

DESIGN.md fixes the architecture as a strict stack::

    sim → hw → guestos → tee → attest/runtimes → workloads
        → obs → core → experiments → (cli / repro package root)

A module may import its own layer and anything *below* it; importing
upward couples a substrate to its orchestration (e.g. ``repro.hw``
reaching into ``repro.core``) and is rejected.  Extra edges beyond the
rank order:

- ``attest`` and ``runtimes`` share a rank but are independent
  siblings: neither may import the other.
- ``experiments`` must not reach into ``hw``/``guestos`` internals —
  harnesses talk to platforms through ``tee``/``core`` only.
- ``obs`` (telemetry) sits between ``workloads`` and ``core``:
  orchestration may import it, while substrates below it emit
  through the duck-typed sink protocol instead of importing it.
- ``analysis`` (this tooling) stays self-contained: it may import
  only ``errors``, so it can lint a tree it cannot import.
- ``errors`` and ``version`` are the shared leaves everyone may
  import.

The pass builds the module-level import graph (static ``import`` /
``from .. import`` statements, including function-local ones), checks
every ``repro``-internal edge, and also detects package-level import
cycles, reporting the full offending chain.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

from repro.analysis.core import Finding, Project, Rule, Severity, SourceModule

#: Rank of each top-level sub-package; imports may only point to equal
#: or lower rank (equal only within the same package).
LAYERS: dict[str, int] = {
    "errors": 0,
    "version": 0,
    "sim": 1,
    "hw": 2,
    "guestos": 3,
    "tee": 4,
    "attest": 5,
    "runtimes": 5,
    "workloads": 6,
    "supply": 6,
    "obs": 7,
    "core": 8,
    "experiments": 9,
    "analysis": 10,
    "cli": 11,
    "repro": 12,    # the package root (__init__) sits above everything
}

#: Edges forbidden even though the rank order would allow them.
FORBIDDEN_EDGES: frozenset[tuple[str, str]] = frozenset({
    # Harnesses must not bypass tee/core to poke substrate internals.
    ("experiments", "hw"),
    ("experiments", "guestos"),
})

#: Packages restricted to an explicit import set regardless of rank.
RESTRICTED_IMPORTS: dict[str, frozenset[str]] = {
    # The linter must be able to analyze a broken tree without
    # importing it, so it may depend only on the error hierarchy.
    "analysis": frozenset({"errors", "analysis"}),
}


@dataclass(frozen=True)
class ImportEdge:
    """One static import of a repro module from another."""

    source: str        # importing module ("repro.hw.cpu")
    target: str        # imported module ("repro.core.runner")
    line: int
    col: int


def _dotted_target(module: SourceModule, node: ast.ImportFrom) -> str | None:
    """Absolute dotted module for a ``from X import ...`` statement."""
    if node.level == 0:
        return node.module
    # Resolve relative imports against the module's own dotted name.
    base = module.name.split(".")
    # For a package __init__, the first level strips nothing extra.
    strip = node.level if module.path.stem != "__init__" else node.level - 1
    if strip >= len(base):
        return None
    prefix = base[:len(base) - strip]
    return ".".join(prefix + [node.module]) if node.module else \
        ".".join(prefix)


def _is_type_checking_test(test: ast.expr) -> bool:
    """True for ``if TYPE_CHECKING:`` / ``if typing.TYPE_CHECKING:``."""
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    return (isinstance(test, ast.Attribute)
            and test.attr == "TYPE_CHECKING"
            and isinstance(test.value, ast.Name)
            and test.value.id in ("typing", "t"))


def _runtime_nodes(tree: ast.Module) -> list[ast.AST]:
    """All nodes except those under ``if TYPE_CHECKING:`` guards.

    Type-only imports create no runtime coupling, so the layer DAG
    tolerates them (the standard escape hatch for annotations that
    would otherwise need an upward import).
    """
    nodes: list[ast.AST] = []
    todo: list[ast.AST] = [tree]
    while todo:
        node = todo.pop()
        nodes.append(node)
        if isinstance(node, ast.If) and _is_type_checking_test(node.test):
            todo.extend(node.orelse)
            continue
        todo.extend(ast.iter_child_nodes(node))
    return nodes


def module_imports(module: SourceModule,
                   known_modules: frozenset[str] = frozenset()
                   ) -> list[ImportEdge]:
    """Every runtime ``repro``-internal import edge in one module.

    ``known_modules`` disambiguates ``from X import y``: when ``X.y``
    is itself a module of the project (``from repro import
    experiments``), the edge targets the submodule, not the package
    ``__init__``.
    """
    edges: dict[ImportEdge, None] = {}   # ordered de-duplication
    for node in _runtime_nodes(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] == "repro":
                    edges.setdefault(ImportEdge(
                        module.name, alias.name,
                        node.lineno, node.col_offset))
        elif isinstance(node, ast.ImportFrom):
            target = _dotted_target(module, node)
            if not target or target.split(".")[0] != "repro":
                continue
            for alias in node.names:
                sub = f"{target}.{alias.name}"
                edges.setdefault(ImportEdge(
                    module.name,
                    sub if sub in known_modules else target,
                    node.lineno, node.col_offset))
    return list(edges)


def import_graph(project: Project) -> dict[str, list[ImportEdge]]:
    """Module name → outgoing repro-internal edges, whole project."""
    known = frozenset(m.name for m in project.modules)
    return {m.name: module_imports(m, known) for m in project.modules}


def package_of(dotted: str) -> str:
    """Layer key for a dotted repro module name."""
    parts = dotted.split(".")
    if parts[0] != "repro":
        return parts[0]
    if len(parts) == 1:
        return "repro"
    return parts[1]


class LayeringRule(Rule):
    """Checks every repro-internal import edge against the layer DAG."""

    id = "layering"
    severity = Severity.ERROR

    def __init__(self, layers: dict[str, int] | None = None,
                 forbidden: frozenset[tuple[str, str]] = FORBIDDEN_EDGES,
                 restricted: dict[str, frozenset[str]] | None = None) -> None:
        self.layers = dict(LAYERS if layers is None else layers)
        self.forbidden = frozenset(forbidden)
        self.restricted = dict(RESTRICTED_IMPORTS if restricted is None
                               else restricted)

    def check_project(self, project: Project) -> Iterator[Finding]:
        paths = {m.name: str(m.path) for m in project.modules}
        graph = import_graph(project)
        for source, edges in graph.items():
            for edge in edges:
                finding = self._check_edge(edge, paths)
                if finding is not None:
                    yield finding
        yield from self._check_cycles(graph, paths)

    # -- edge checks --------------------------------------------------

    def _check_edge(self, edge: ImportEdge,
                    paths: dict[str, str]) -> Finding | None:
        src_pkg = package_of(edge.source)
        dst_pkg = package_of(edge.target)
        if src_pkg == dst_pkg:
            return None
        path = paths.get(edge.source, edge.source)
        chain = f"{edge.source} → {edge.target}"
        restricted = self.restricted.get(src_pkg)
        if restricted is not None and dst_pkg not in restricted:
            return self._finding(
                "restricted-import", path, edge,
                f"package '{src_pkg}' may only import "
                f"{{{', '.join(sorted(restricted - {src_pkg}))}}}, "
                f"not '{dst_pkg}' ({chain})")
        if (src_pkg, dst_pkg) in self.forbidden:
            return self._finding(
                "forbidden-edge", path, edge,
                f"'{src_pkg}' must not reach into '{dst_pkg}' internals "
                f"({chain}); go through the public tee/core surface")
        src_rank = self.layers.get(src_pkg)
        dst_rank = self.layers.get(dst_pkg)
        if src_rank is None or dst_rank is None:
            unknown = src_pkg if src_rank is None else dst_pkg
            return self._finding(
                "unknown-layer", path, edge,
                f"package '{unknown}' is not ranked in the layer DAG; "
                f"add it to repro.analysis.layering.LAYERS ({chain})")
        if dst_rank > src_rank:
            return self._finding(
                "upward-import", path, edge,
                f"layer '{src_pkg}' (rank {src_rank}) imports higher "
                f"layer '{dst_pkg}' (rank {dst_rank}): {chain}")
        if dst_rank == src_rank:
            return self._finding(
                "sibling-import", path, edge,
                f"sibling layers '{src_pkg}' and '{dst_pkg}' are "
                f"independent; neither may import the other ({chain})")
        return None

    def _finding(self, subrule: str, path: str, edge: ImportEdge,
                 message: str) -> Finding:
        return Finding(rule=f"layering/{subrule}", severity=self.severity,
                       path=path, line=edge.line, col=edge.col,
                       message=message, symbol=edge.source,
                       module=edge.source)

    # -- cycles -------------------------------------------------------

    def _check_cycles(self, graph: dict[str, list[ImportEdge]],
                      paths: dict[str, str]) -> Iterator[Finding]:
        """Package-level cycle detection with full-chain reporting."""
        pkg_edges: dict[str, dict[str, ImportEdge]] = {}
        for edges in graph.values():
            for edge in edges:
                src, dst = package_of(edge.source), package_of(edge.target)
                if src != dst:
                    pkg_edges.setdefault(src, {}).setdefault(dst, edge)
        seen: set[str] = set()
        stack: list[str] = []
        on_stack: set[str] = set()
        reported: set[frozenset[str]] = set()

        def visit(pkg: str) -> Iterator[Finding]:
            seen.add(pkg)
            stack.append(pkg)
            on_stack.add(pkg)
            for dst, edge in sorted(pkg_edges.get(pkg, {}).items()):
                if dst in on_stack:
                    cycle = stack[stack.index(dst):] + [dst]
                    key = frozenset(cycle)
                    if key not in reported:
                        reported.add(key)
                        chain = " → ".join(cycle)
                        yield Finding(
                            rule="layering/cycle", severity=self.severity,
                            path=paths.get(edge.source, edge.source),
                            line=edge.line, col=edge.col,
                            message=f"package import cycle: {chain}",
                            symbol=edge.source, module=edge.source)
                elif dst not in seen:
                    yield from visit(dst)
            stack.pop()
            on_stack.discard(pkg)

        for pkg in sorted(pkg_edges):
            if pkg not in seen:
                yield from visit(pkg)
