"""Hot-path pass: flag per-op charge loops in the simulation core.

The batched op-stream kernel (:mod:`repro.sim.opstream`) exists so the
hot execution layers — ``repro.tee``, ``repro.guestos``,
``repro.runtimes`` — fold thousands of charges into one ledger merge.
A loop that charges the execution context one operation per iteration
quietly reverts that layer to the slow path: every iteration pays the
dispatch chain, an enum hash and a noise draw, and trials/second
regresses without any test failing.

This pass flags charge-primitive calls (``ctx.charge`` /
``cpu_execute`` / ``sys_*`` / ``session.compute`` and friends)
syntactically inside ``for``/``while`` bodies in those packages.  It
is a heuristic, not a proof — loops with data-dependent per-iteration
state (pipe ping-pong, the ``on_charge`` replay fallback, legacy
per-op engines kept for equivalence testing) are legitimate and carry
``# confbench: allow[hot-path-per-op]`` pragmas.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import (
    Finding,
    Rule,
    Severity,
    SourceModule,
    enclosing_symbol,
)

#: Packages whose loops this pass patrols — the layers between workload
#: emitters and the ledger, where per-op charging multiplies.
HOT_PACKAGES = ("repro.tee", "repro.guestos", "repro.runtimes")

#: Per-op charge primitives on the execution context.
CONTEXT_CHARGE_METHODS = frozenset({
    "charge", "cpu_execute", "mem_alloc", "mem_copy",
    "disk_read", "disk_write", "syscall_entry", "vm_transition",
    "crypto", "network_round_trip", "charge_network", "startup",
})

#: Per-op operations on the runtime session (each funnels into one or
#: more context charges).
SESSION_CHARGE_METHODS = frozenset({
    "compute", "allocate", "log",
})


def _in_hot_package(name: str) -> bool:
    return any(name == pkg or name.startswith(pkg + ".")
               for pkg in HOT_PACKAGES)


class HotPathRule(Rule):
    """Flags per-item charge loops that bypass the batch kernel."""

    id = "hot-path-per-op"
    severity = Severity.WARNING

    def check_module(self, module: SourceModule) -> Iterator[Finding]:
        if not _in_hot_package(module.name):
            return
        visitor = _HotPathVisitor(module)
        visitor.visit(module.tree)
        yield from visitor.findings


class _HotPathVisitor(ast.NodeVisitor):
    def __init__(self, module: SourceModule) -> None:
        self.module = module
        self.findings: list[Finding] = []
        self._stack: list[ast.AST] = []
        self._loop_depth = 0

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # a nested def re-enters non-loop context: its body runs when
        # called, not per iteration of an enclosing loop
        self._stack.append(node)
        saved, self._loop_depth = self._loop_depth, 0
        self.generic_visit(node)
        self._loop_depth = saved
        self._stack.pop()

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._stack.append(node)
        self.generic_visit(node)
        self._stack.pop()

    def _visit_loop(self, node: ast.AST) -> None:
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    visit_For = _visit_loop
    visit_AsyncFor = _visit_loop
    visit_While = _visit_loop

    def visit_Call(self, node: ast.Call) -> None:
        if self._loop_depth > 0 and isinstance(node.func, ast.Attribute):
            method = node.func.attr
            if (method in CONTEXT_CHARGE_METHODS
                    or method in SESSION_CHARGE_METHODS
                    or method.startswith("sys_")):
                self.findings.append(Finding(
                    rule="hot-path-per-op",
                    severity=Severity.WARNING,
                    path=str(self.module.path),
                    line=node.lineno,
                    col=node.col_offset,
                    message=(f".{method}() charges per iteration inside a "
                             "loop on the simulation hot path; emit an "
                             "OpBatch / use the batch() recorder so the "
                             "whole loop folds into one ledger merge"),
                    symbol=enclosing_symbol(self._stack),
                    module=self.module.name,
                ))
        self.generic_visit(node)
