"""Interprocedural data-flow framework for the analysis passes.

PR 2's passes were per-function AST pattern matching plus one ad-hoc
reachability walk buried in the purity pass.  This module hoists that
machinery into a shared framework the data-flow passes (taint,
purity, and future ones) build on:

- :class:`FunctionUnit` / :class:`SymbolIndex` — every function,
  method, and closure in the project indexed by qualified name, with
  class membership, closure-visible locals, and re-export aliases
  resolved through package ``__init__`` files;
- :func:`call_targets` — best-effort syntactic resolution of the
  calls inside one function (import aliases, ``self.`` methods,
  same-module classes);
- :class:`CallGraph` — the project call graph (callee and caller
  adjacency) built from the above;
- :class:`ImportGraph` — the module-granular dependency graph with a
  transitive-closure helper, which is also what keys the analysis
  cache: a module's cross-module findings can only change if
  something in its dependency closure changed.

Everything is purely syntactic — nothing under analysis is imported —
so a broken tree can still be linted.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from repro.analysis.core import ImportTable, Project, SourceModule


def scope_nodes(node: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested scopes.

    Starts from the *body* for function nodes: decorators, default
    values, and annotations evaluate at definition time, not when the
    function is called, so they don't belong to its scope.
    """
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        todo = list(node.body)
    else:
        todo = list(ast.iter_child_nodes(node))
    while todo:
        child = todo.pop()
        yield child
        if not isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef, ast.Lambda)):
            todo.extend(ast.iter_child_nodes(child))


def local_names(fn: ast.AST) -> set[str]:
    """Names bound inside one function scope (params + assignments)."""
    names: set[str] = set()
    args = fn.args
    for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
        names.add(arg.arg)
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    declared_global: set[str] = set()
    for node in scope_nodes(fn):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Name) and isinstance(
                node.ctx, (ast.Store, ast.Del)):
            names.add(node.id)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ExceptHandler) and node.name:
            names.add(node.name)
        elif isinstance(node, ast.NamedExpr) and isinstance(
                node.target, ast.Name):
            names.add(node.target.id)
    return names - declared_global


@dataclass
class FunctionUnit:
    """One analyzable function scope (module fn, method, or closure)."""

    qualname: str               # "repro.core.runner.execute_trial"
    module: SourceModule
    node: ast.AST               # FunctionDef / AsyncFunctionDef
    owner_class: str | None     # enclosing class qualname, if a method
    enclosing_locals: frozenset[str]   # closure-visible names
    nested: list[str] = field(default_factory=list)   # nested unit names
    _locals: frozenset | None = field(default=None, repr=False)

    @property
    def locals(self) -> frozenset[str]:
        if self._locals is None:
            self._locals = (frozenset(local_names(self.node))
                            | self.enclosing_locals)
        return self._locals

    @property
    def relname(self) -> str:
        """Qualname relative to the module ("TrialJournal.put")."""
        return self.qualname[len(self.module.name) + 1:]

    @property
    def param_names(self) -> tuple[str, ...]:
        """Positional parameter names, ``self``/``cls`` included."""
        args = self.node.args
        return tuple(a.arg for a in (*args.posonlyargs, *args.args))


@dataclass
class SymbolIndex:
    """Project-wide symbol tables the data-flow walks consult."""

    functions: dict[str, FunctionUnit] = field(default_factory=dict)
    classes: dict[str, list[str]] = field(default_factory=dict)
    aliases: dict[str, str] = field(default_factory=dict)
    module_globals: dict[str, dict[str, str]] = field(default_factory=dict)
    import_tables: dict[str, ImportTable] = field(default_factory=dict)

    def canonical(self, qualified: str) -> str:
        """Follow ``__init__`` re-export aliases to the defining module."""
        seen = set()
        while qualified in self.aliases and qualified not in seen:
            seen.add(qualified)
            qualified = self.aliases[qualified]
        return qualified


def classify_module_globals(tree: ast.Module) -> dict[str, str]:
    """Module-level bindings → kind ("def", "class", "import", "const",
    "var").  Only "var" reads count as non-spec state."""
    kinds: dict[str, str] = {}

    def bind(name: str, kind: str) -> None:
        # A name both assigned and def'd keeps the strongest kind seen.
        if kinds.get(name) not in ("def", "class", "import"):
            kinds[name] = kind

    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            kinds[node.name] = "def"
        elif isinstance(node, ast.ClassDef):
            kinds[node.name] = "class"
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                if alias.name != "*":
                    kinds[alias.asname or alias.name.split(".")[0]] = "import"
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            for target in targets:
                if isinstance(target, ast.Name):
                    upper = target.id.lstrip("_")
                    kind = "const" if upper.isupper() or not upper else "var"
                    bind(target.id, kind)
    return kinds


def decorator_names(fn: ast.AST, table: ImportTable) -> set[str]:
    """Resolved + bare names of every decorator on ``fn``."""
    names: set[str] = set()
    for dec in fn.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        resolved = table.resolve(target)
        if resolved:
            names.add(resolved)
        if isinstance(target, ast.Name):
            names.add(target.id)
    return names


def build_index(project: Project) -> SymbolIndex:
    """Symbol tables: functions, classes, re-export aliases, globals."""
    index = SymbolIndex()
    for module in project.modules:
        table = ImportTable().scan(
            module.tree, module.name,
            is_package_init=module.path.stem == "__init__")
        index.import_tables[module.name] = table
        index.module_globals[module.name] = classify_module_globals(
            module.tree)
        for local, qualified in table.names.items():
            index.aliases[f"{module.name}.{local}"] = qualified
        _index_scope(index, module, module.tree, prefix=module.name,
                     owner_class=None, enclosing=frozenset())
    return index


def _index_scope(index: SymbolIndex, module: SourceModule, node: ast.AST,
                 prefix: str, owner_class: str | None,
                 enclosing: frozenset[str]) -> list[str]:
    """Register every function/class under ``node``; returns the unit
    names registered directly at this level."""
    registered: list[str] = []
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qualname = f"{prefix}.{child.name}"
            unit = FunctionUnit(qualname=qualname, module=module,
                                node=child, owner_class=owner_class,
                                enclosing_locals=enclosing)
            index.functions[qualname] = unit
            unit.nested = _index_scope(
                index, module, child, prefix=qualname,
                owner_class=owner_class,
                enclosing=enclosing | frozenset(local_names(child)))
            registered.append(qualname)
        elif isinstance(child, ast.ClassDef):
            class_qual = f"{prefix}.{child.name}"
            methods = _index_scope(index, module, child, prefix=class_qual,
                                   owner_class=class_qual,
                                   enclosing=enclosing)
            index.classes[class_qual] = methods
            registered.append(class_qual)
        elif not isinstance(child, ast.Lambda):
            registered.extend(_index_scope(index, module, child, prefix,
                                           owner_class, enclosing))
    return registered


def call_targets(unit: FunctionUnit, index: SymbolIndex,
                 expand_classes: bool = True) -> list[str]:
    """Project qualnames the calls inside ``unit`` resolve to.

    Resolution is syntactic: import aliases (through ``__init__``
    re-exports), same-module names, ``self.method()`` against the
    owning class, and ``ClassName.method()`` through a same-module
    class.  Instantiating a project class yields either the class
    qualname or (``expand_classes``) all of its methods — coarse, with
    no inheritance resolution, matching how the purity pass has always
    treated constructor calls.
    """
    table = index.import_tables[unit.module.name]
    local = unit.locals
    targets: list[str] = []

    def add_target(qualified: str) -> None:
        qualified = index.canonical(qualified)
        if qualified in index.functions:
            targets.append(qualified)
        elif qualified in index.classes:
            if expand_classes:
                targets.extend(index.classes[qualified])
            else:
                targets.append(qualified)

    for node in scope_nodes(unit.node):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Name):
            # Import bindings land in the import table AND in the
            # local-name set (function-level imports are locals),
            # so resolve through the table before the local check.
            resolved = table.resolve(func)
            if resolved and resolved != func.id:
                add_target(resolved)
            elif func.id not in local:
                add_target(f"{unit.module.name}.{func.id}")
        elif isinstance(func, ast.Attribute):
            base = func.value
            if (isinstance(base, ast.Name) and base.id == "self"
                    and unit.owner_class is not None):
                add_target(f"{unit.owner_class}.{func.attr}")
                continue
            resolved = table.resolve(func)
            if resolved:
                add_target(resolved)
            # ClassName.method through a same-module class.
            if isinstance(base, ast.Name) and base.id not in local:
                add_target(f"{unit.module.name}.{base.id}.{func.attr}")
    return targets


@dataclass
class CallGraph:
    """Callee/caller adjacency over every :class:`FunctionUnit`."""

    index: SymbolIndex
    edges: dict[str, tuple[str, ...]] = field(default_factory=dict)
    reverse: dict[str, tuple[str, ...]] = field(default_factory=dict)

    @classmethod
    def build(cls, project: Project,
              index: SymbolIndex | None = None) -> "CallGraph":
        index = index if index is not None else build_index(project)
        edges: dict[str, tuple[str, ...]] = {}
        reverse: dict[str, list[str]] = {}
        for qualname in sorted(index.functions):
            unit = index.functions[qualname]
            callees = []
            seen: set[str] = set()
            for target in call_targets(unit, index, expand_classes=False):
                if target not in seen:
                    seen.add(target)
                    callees.append(target)
            edges[qualname] = tuple(callees)
            for target in callees:
                reverse.setdefault(target, []).append(qualname)
        return cls(index=index, edges=edges,
                   reverse={k: tuple(v) for k, v in reverse.items()})

    def callees(self, qualname: str) -> tuple[str, ...]:
        return self.edges.get(qualname, ())

    def callers(self, qualname: str) -> tuple[str, ...]:
        return self.reverse.get(qualname, ())

    def topological(self) -> list[str]:
        """Callee-before-caller ordering (cycles broken arbitrarily but
        deterministically); data-flow fixpoints converge fastest when
        summaries are computed in this order."""
        order: list[str] = []
        state: dict[str, int] = {}   # 1 = on stack, 2 = done
        for root in sorted(self.edges):
            if state.get(root):
                continue
            stack: list[tuple[str, Iterator[str]]] = [
                (root, iter(self._function_callees(root)))]
            state[root] = 1
            while stack:
                name, it = stack[-1]
                advanced = False
                for callee in it:
                    if not state.get(callee):
                        state[callee] = 1
                        stack.append(
                            (callee, iter(self._function_callees(callee))))
                        advanced = True
                        break
                if not advanced:
                    stack.pop()
                    state[name] = 2
                    order.append(name)
        return order

    def _function_callees(self, qualname: str) -> list[str]:
        out: list[str] = []
        for target in self.edges.get(qualname, ()):
            if target in self.index.functions:
                out.append(target)
            elif target in self.index.classes:
                out.extend(self.index.classes[target])
        return out


@dataclass
class ImportGraph:
    """Module-granular project-internal dependency edges.

    ``deps[m]`` holds the project modules ``m`` imports (resolved
    through aliases and relative imports).  :meth:`closure` gives the
    transitive dependency set — the invalidation unit for cached
    cross-module analysis results.
    """

    deps: dict[str, tuple[str, ...]] = field(default_factory=dict)

    @classmethod
    def build(cls, project: Project,
              index: SymbolIndex | None = None) -> "ImportGraph":
        index = index if index is not None else build_index(project)
        names = {module.name for module in project.modules}
        deps: dict[str, tuple[str, ...]] = {}
        for module in project.modules:
            table = index.import_tables[module.name]
            found: set[str] = set()
            for target in (*table.modules.values(), *table.names.values()):
                resolved = _project_module(target, names)
                if resolved and resolved != module.name:
                    found.add(resolved)
            deps[module.name] = tuple(sorted(found))
        return cls(deps=deps)

    def closure(self, name: str) -> frozenset[str]:
        """``name`` plus every module transitively reachable from it."""
        seen: set[str] = set()
        todo = [name]
        while todo:
            current = todo.pop()
            if current in seen:
                continue
            seen.add(current)
            todo.extend(self.deps.get(current, ()))
        return frozenset(seen)


def _project_module(qualified: str, module_names: set[str]) -> str | None:
    """Longest project-module prefix of a qualified name, if any."""
    parts = qualified.split(".")
    for cut in range(len(parts), 0, -1):
        candidate = ".".join(parts[:cut])
        if candidate in module_names:
            return candidate
    return None
