"""Lock-discipline pass: guarded attributes stay guarded.

The genuinely threaded parts of the simulator — ``core.relay``'s
accept/forward threads, ``core.rest``'s ThreadingHTTPServer handlers,
the gateway admission path, and the pool watchdog — protect shared
state with ``threading.Lock``.  The convention is implicit: nothing
says *which* attributes ``self._lock`` guards, so a refactor can add
an unlocked fast-path read and the race only shows up as a flaky
counter three PRs later.

This pass makes the convention checkable.  For every class that
creates a lock in ``__init__`` (``self._lock = threading.Lock()`` /
``RLock()``), it infers the guarded set from existing usage — an
attribute is **guarded by** a lock if any method *writes* it inside a
``with self._lock:`` block — and then reports:

- ``lock/unguarded-write`` (error) — a write to a guarded attribute
  outside the guarding lock;
- ``lock/unguarded-read`` (warning) — a read of a guarded attribute
  outside the guarding lock (benign for monotonic flags, a torn pair
  for multi-field invariants — review or take the lock);
- ``lock/order-inversion`` (error) — ``with a: with b:`` in one place
  and ``with b: with a:`` in another within the same module: the
  classic ABBA deadlock shape.

``__init__`` is exempt (no other thread can hold a reference yet),
and so is any private method whose every call site inside the class
already holds the guarding lock (the ``_locked_…`` helper idiom).

Suppress individual findings with ``# confbench: allow[lock]`` (the
family pragma) or the specific sub-rule, e.g.
``# confbench: allow[lock/unguarded-read]``, with a short
justification for why the access is race-free.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from repro.analysis.core import (
    Finding,
    ImportTable,
    Rule,
    Severity,
    SourceModule,
)
from repro.analysis.purity import MUTATING_METHODS

#: Callables whose result is a lock object.
LOCK_FACTORIES = frozenset({
    "threading.Lock", "threading.RLock", "threading.Condition",
})


@dataclass
class _Access:
    """One read/write of ``self.<attr>`` inside a method."""

    attr: str
    write: bool
    method: str
    node: ast.AST
    held: frozenset[str]     # lock attrs held at this point


@dataclass
class _MethodCall:
    """A ``self.m(...)`` call site inside the class."""

    method: str              # callee name
    held: frozenset[str]


@dataclass
class _ClassUsage:
    """Everything the pass learned about one class."""

    name: str
    locks: set[str] = field(default_factory=set)
    accesses: list[_Access] = field(default_factory=list)
    calls: list[_MethodCall] = field(default_factory=list)
    #: (outer, inner) lock acquisition orderings with a witness node
    orderings: list[tuple[str, str, ast.AST]] = field(default_factory=list)
    methods: set[str] = field(default_factory=set)


class LockDisciplineRule(Rule):
    """Infers guarded attributes and flags unguarded access."""

    id = "lock"
    severity = Severity.ERROR

    def check_module(self, module: SourceModule) -> Iterator[Finding]:
        table = ImportTable()
        table.scan(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                usage = _collect_class(node, table)
                if usage.locks:
                    yield from self._report(usage, module)

    # -- reporting ----------------------------------------------------

    def _report(self, usage: _ClassUsage,
                module: SourceModule) -> Iterator[Finding]:
        guards = _infer_guards(usage)
        locked_only = _locked_only_methods(usage, guards)
        for access in usage.accesses:
            lock = guards.get(access.attr)
            if lock is None or access.method == "__init__":
                continue
            if lock in access.held or access.method in locked_only.get(
                    lock, frozenset()):
                continue
            kind = "unguarded-write" if access.write else "unguarded-read"
            severity = Severity.ERROR if access.write else Severity.WARNING
            action = "write to" if access.write else "read of"
            yield Finding(
                rule=f"lock/{kind}", severity=severity,
                path=str(module.path), line=access.node.lineno,
                col=access.node.col_offset,
                message=(f"{action} '{access.attr}' without holding "
                         f"'{lock}', which guards it everywhere else in "
                         f"{usage.name}; take the lock or justify with a "
                         "pragma"),
                symbol=f"{usage.name}.{access.method}",
                module=module.name)
        yield from self._inversions(usage, module)

    def _inversions(self, usage: _ClassUsage,
                    module: SourceModule) -> Iterator[Finding]:
        seen: dict[tuple[str, str], ast.AST] = {}
        for outer, inner, node in usage.orderings:
            seen.setdefault((outer, inner), node)
        reported: set[frozenset] = set()
        for (outer, inner), node in sorted(
                seen.items(), key=lambda kv: kv[1].lineno):
            pair = frozenset((outer, inner))
            if (inner, outer) in seen and pair not in reported:
                reported.add(pair)
                other = seen[(inner, outer)]
                # report at the later acquisition, describing its order
                if other.lineno > node.lineno:
                    node, other = other, node
                    outer, inner = inner, outer
                yield Finding(
                    rule="lock/order-inversion", severity=Severity.ERROR,
                    path=str(module.path), line=node.lineno,
                    col=node.col_offset,
                    message=(f"'{inner}' is acquired while holding "
                             f"'{outer}' here, but line {other.lineno} "
                             "acquires them in the opposite order: two "
                             "threads interleaving these paths deadlock "
                             "(ABBA); pick one global order"),
                    symbol=usage.name,
                    module=module.name)


# ---------------------------------------------------------------------------
# collection


def _collect_class(node: ast.ClassDef, table: ImportTable) -> _ClassUsage:
    usage = _ClassUsage(name=node.name)
    methods = [child for child in node.body
               if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))]
    usage.methods = {method.name for method in methods}
    for method in methods:
        if method.name == "__init__":
            _find_locks(method, table, usage)
    for method in methods:
        _walk_method(method, method.name, frozenset(), usage)
    return usage


def _find_locks(init: ast.FunctionDef, table: ImportTable,
                usage: _ClassUsage) -> None:
    for node in ast.walk(init):
        if not isinstance(node, ast.Assign) or not isinstance(
                node.value, ast.Call):
            continue
        if table.resolve(node.value.func) not in LOCK_FACTORIES:
            continue
        for target in node.targets:
            if (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"):
                usage.locks.add(target.attr)


def _walk_method(node: ast.AST, method: str, held: frozenset[str],
                 usage: _ClassUsage) -> None:
    """Record self-attribute accesses and lock scopes lexically."""
    if isinstance(node, (ast.With, ast.AsyncWith)):
        acquired: list[str] = []
        for item in node.items:
            lock = _self_lock(item.context_expr, usage)
            if lock is not None:
                for outer in held | frozenset(acquired):
                    if outer != lock:
                        usage.orderings.append(
                            (outer, lock, item.context_expr))
                acquired.append(lock)
        inner = held | frozenset(acquired)
        for item in node.items:
            _walk_method(item.context_expr, method, held, usage)
        for statement in node.body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # thread-target closures run later, without the lock
                for grandchild in statement.body:
                    _walk_method(grandchild, method, frozenset(), usage)
                continue
            _walk_method(statement, method, inner, usage)
        return
    if isinstance(node, ast.Attribute) and isinstance(
            node.value, ast.Name) and node.value.id == "self":
        if node.attr not in usage.locks:
            usage.accesses.append(_Access(
                attr=node.attr,
                write=isinstance(node.ctx, (ast.Store, ast.Del)),
                method=method, node=node, held=held))
        # fall through: no children worth visiting beyond value
    if isinstance(node, ast.Call):
        func = node.func
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "self"):
            usage.calls.append(_MethodCall(method=func.attr, held=held))
        inner = func.value if isinstance(func, ast.Attribute) else None
        if (isinstance(inner, ast.Attribute)
                and isinstance(inner.value, ast.Name)
                and inner.value.id == "self"
                and func.attr in MUTATING_METHODS
                and inner.attr not in usage.locks):
            # self.items.append(x): an in-place write to 'items'
            usage.accesses.append(_Access(
                attr=inner.attr, write=True, method=method,
                node=inner, held=held))
            for arg in node.args:
                _walk_method(arg, method, held, usage)
            for keyword in node.keywords:
                _walk_method(keyword.value, method, held, usage)
            return
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # a nested def (thread target closure) runs later, without
            # the lexically-held locks
            for grandchild in child.body:
                _walk_method(grandchild, method, frozenset(), usage)
            continue
        _walk_method(child, method, held, usage)


def _self_lock(expr: ast.expr, usage: _ClassUsage) -> str | None:
    if (isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and expr.attr in usage.locks):
        return expr.attr
    return None


# ---------------------------------------------------------------------------
# inference


def _infer_guards(usage: _ClassUsage) -> dict[str, str]:
    """attr -> lock, for attributes ever *written* under that lock."""
    guards: dict[str, str] = {}
    for access in usage.accesses:
        if access.write and access.held and access.method != "__init__":
            if access.attr not in guards:
                guards[access.attr] = sorted(access.held)[0]
    return guards


def _locked_only_methods(usage: _ClassUsage,
                         guards: dict[str, str]) -> dict[str, frozenset[str]]:
    """lock -> private methods whose every in-class call site holds it.

    The ``def _locked_evict(self)`` helper idiom: the method touches
    guarded state without re-acquiring the (non-reentrant) lock, and
    every caller takes the lock first.  Public methods never qualify —
    external callers are invisible to this pass.
    """
    out: dict[str, set[str]] = {}
    called: dict[str, list[_MethodCall]] = {}
    for call in usage.calls:
        called.setdefault(call.method, []).append(call)
    for lock in sorted(set(guards.values())):
        safe: set[str] = set()
        for method, sites in called.items():
            if not method.startswith("_") or method.startswith("__"):
                continue
            if method not in usage.methods:
                continue
            if all(lock in site.held for site in sites):
                safe.add(method)
        out[lock] = safe
    return {lock: frozenset(methods) for lock, methods in out.items()}
