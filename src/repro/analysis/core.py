"""Analyzer core: rules, findings, parsed modules, the driver.

The design mirrors what small single-purpose linters (pyflakes-style)
converge on: parse every file once into a :class:`SourceModule`, hand
the parsed modules to :class:`Rule` objects, and collect
:class:`Finding` records.  Two rule granularities exist because the
passes need them: per-module rules (determinism) see one file at a
time, project rules (layering, purity) see the whole module set so
they can build import and call graphs.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass
from enum import Enum
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.analysis.pragmas import PragmaIndex
from repro.errors import ConfBenchError


class AnalysisError(ConfBenchError):
    """Errors from the static-analysis framework itself."""


class Severity(str, Enum):
    """How bad a finding is; errors gate CI, warnings inform."""

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str                   # rule id, e.g. "determinism/wallclock"
    severity: Severity
    path: str                   # path as given to the analyzer
    line: int                   # 1-based source line
    col: int                    # 0-based column
    message: str
    symbol: str = ""            # enclosing function/class, if known
    module: str = ""            # dotted module name ("repro.hw.cpu")

    def fingerprint(self, occurrence: int = 0) -> str:
        """Stable identity for baselines: independent of line numbers
        and of how the source path was spelled on the command line.

        Keyed on (rule, module, symbol, message, occurrence) so that
        unrelated edits shifting lines don't churn the baseline, while
        N identical violations in one function stay distinguishable
        through the occurrence index.
        """
        where = self.module or self.path
        blob = f"{self.rule}\x00{where}\x00{self.symbol}\x00" \
               f"{self.message}\x00{occurrence}"
        return hashlib.sha256(blob.encode()).hexdigest()[:16]

    def render(self) -> str:
        """The canonical one-line text form."""
        where = f" [{self.symbol}]" if self.symbol else ""
        return (f"{self.path}:{self.line}:{self.col + 1}: "
                f"{self.severity.value}: {self.rule}: {self.message}{where}")

    def to_dict(self) -> dict:
        """JSON-ready representation (schema asserted by tests)."""
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "symbol": self.symbol,
            "module": self.module,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Finding":
        """Inverse of :meth:`to_dict` (cache deserialization)."""
        return cls(
            rule=payload["rule"],
            severity=Severity(payload["severity"]),
            path=payload["path"],
            line=payload["line"],
            col=payload["col"],
            message=payload["message"],
            symbol=payload.get("symbol", ""),
            module=payload.get("module", ""),
        )


@dataclass
class SourceModule:
    """One parsed Python file plus the metadata rules need."""

    path: Path                  # filesystem location
    name: str                   # dotted module name ("repro.hw.cpu")
    tree: ast.Module
    pragmas: PragmaIndex
    sha: str = ""               # content hash (cache key material)

    @classmethod
    def parse(cls, path: Path) -> "SourceModule":
        text = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(text, filename=str(path))
        except SyntaxError as exc:
            raise AnalysisError(f"cannot parse {path}: {exc}") from exc
        return cls(path=path, name=module_name_for(path), tree=tree,
                   pragmas=PragmaIndex.scan(text),
                   sha=hashlib.sha256(text.encode("utf-8")).hexdigest())

    @property
    def package(self) -> str:
        """Top-level sub-package under ``repro`` ("hw", "core", ...);
        the unit the layering DAG ranks.  Top-level modules like
        ``repro.cli`` map to their own name ("cli")."""
        parts = self.name.split(".")
        if parts[0] != "repro" or len(parts) == 1:
            return parts[0]
        return parts[1]


def module_name_for(path: Path) -> str:
    """Derive the dotted module name by walking up ``__init__.py`` dirs.

    Works for any on-disk package layout (including synthetic fixture
    trees in tests) without needing the package importable.
    """
    path = path.resolve()
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) if parts else path.stem


@dataclass
class Project:
    """The full set of modules under analysis."""

    modules: list[SourceModule]

    def by_name(self) -> dict[str, SourceModule]:
        return {module.name: module for module in self.modules}


class Rule:
    """Base class for analysis passes.

    Subclasses set ``id`` (a stable slug; findings may refine it with
    ``id/subrule``) and ``severity``, then override one or both hooks.
    Pragma handling is the driver's job, not the rule's: rules report
    everything they see.
    """

    id: str = "rule"
    severity: Severity = Severity.ERROR

    def check_module(self, module: SourceModule) -> Iterator[Finding]:
        """Per-file pass; default: nothing."""
        return iter(())

    def check_project(self, project: Project) -> Iterator[Finding]:
        """Whole-tree pass; default: nothing."""
        return iter(())


def _pragma_rule_ids(rule_id: str) -> tuple[str, ...]:
    """Pragma keys that suppress a finding: exact id plus each family
    prefix, so ``allow[determinism]`` covers ``determinism/wallclock``."""
    parts = rule_id.split("/")
    return tuple("/".join(parts[:i + 1]) for i in range(len(parts)))


class Analyzer:
    """Runs a rule set over a project and applies pragma suppressions."""

    def __init__(self, rules: Sequence[Rule]) -> None:
        if not rules:
            raise AnalysisError("an analyzer needs at least one rule")
        self.rules = list(rules)

    def run(self, project: Project) -> list[Finding]:
        """All non-suppressed findings, sorted by (path, line, rule)."""
        pragma_index = {str(m.path): m.pragmas for m in project.modules}
        findings = []
        for finding in self._raw_findings(project):
            pragmas = pragma_index.get(finding.path)
            if pragmas is not None and any(
                pragmas.allows(finding.line, key)
                for key in _pragma_rule_ids(finding.rule)
            ):
                continue
            findings.append(finding)
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return findings

    def _raw_findings(self, project: Project) -> Iterator[Finding]:
        for rule in self.rules:
            for module in project.modules:
                yield from rule.check_module(module)
            yield from rule.check_project(project)


def collect_sources(paths: Iterable[Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    sources: set[Path] = set()
    for path in paths:
        if path.is_dir():
            sources.update(path.rglob("*.py"))
        elif path.suffix == ".py":
            sources.add(path)
        else:
            raise AnalysisError(f"not a Python source or directory: {path}")
    return sorted(sources)


def load_project(paths: Iterable[Path]) -> Project:
    """Parse every source under ``paths`` into a :class:`Project`."""
    files = collect_sources(paths)
    if not files:
        raise AnalysisError("no Python sources found under the given paths")
    return Project(modules=[SourceModule.parse(f) for f in files])


def enclosing_symbol(stack: Sequence[ast.AST]) -> str:
    """Dotted name of the innermost enclosing def/class in a visit stack."""
    names = [node.name for node in stack
             if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef))]
    return ".".join(names)


class ImportTable:
    """Best-effort alias resolution for qualified-name matching.

    Records ``import X [as Y]`` and ``from X import y [as z]`` bindings
    so rules can turn a ``Name``/``Attribute`` chain back into the
    dotted name it refers to.  Purely syntactic — nothing is imported.
    """

    def __init__(self) -> None:
        self.modules: dict[str, str] = {}    # local alias -> module path
        self.names: dict[str, str] = {}      # local name -> qualified name

    def visit_import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.asname:
                self.modules[alias.asname] = alias.name
            else:
                root = alias.name.split(".")[0]
                self.modules[root] = root

    def visit_import_from(self, node: ast.ImportFrom,
                          module_name: str = "",
                          is_package_init: bool = False) -> None:
        base = node.module
        if node.level:
            # Resolve relative imports against the importer's name.
            parts = module_name.split(".") if module_name else []
            strip = node.level - (1 if is_package_init else 0)
            if strip > len(parts):
                return
            prefix = parts[:len(parts) - strip]
            base = ".".join(prefix + [node.module]) if node.module \
                else ".".join(prefix)
        if not base:
            return
        for alias in node.names:
            if alias.name == "*":
                continue
            self.names[alias.asname or alias.name] = f"{base}.{alias.name}"

    def scan(self, tree: ast.Module, module_name: str = "",
             is_package_init: bool = False) -> "ImportTable":
        """Collect every import statement in a tree (any nesting)."""
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                self.visit_import(node)
            elif isinstance(node, ast.ImportFrom):
                self.visit_import_from(node, module_name, is_package_init)
        return self

    def resolve(self, node: ast.expr) -> str | None:
        """Dotted qualified name for a Name/Attribute chain, if known."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.insert(0, node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = node.id
        if root in self.modules:
            return ".".join([self.modules[root], *parts])
        if root in self.names:
            return ".".join([self.names[root], *parts])
        if parts:
            return None
        return root
