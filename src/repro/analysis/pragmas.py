"""Inline suppression pragmas: ``# confbench: allow[<rule>]``.

A pragma on (or attached to) a line suppresses findings reported for
that line.  Rules are named by id; a family prefix covers its
sub-rules (``allow[determinism]`` suppresses ``determinism/wallclock``)
and several rules may be listed comma-separated:

    nonce = os.urandom(16)  # confbench: allow[determinism/entropy]
    CACHE[key] = value      # confbench: allow[purity, determinism]

Scanning is token-based (``tokenize``) rather than a substring match,
so pragma-looking text inside string literals is ignored.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

_PRAGMA = re.compile(
    r"#\s*confbench:\s*allow\[(?P<rules>[a-zA-Z0-9_/,\s-]+)\]")


@dataclass
class PragmaIndex:
    """Per-line map of allowed rule ids for one source file."""

    allowed: dict[int, frozenset[str]] = field(default_factory=dict)

    @classmethod
    def scan(cls, text: str) -> "PragmaIndex":
        allowed: dict[int, frozenset[str]] = {}
        try:
            tokens = tokenize.generate_tokens(io.StringIO(text).readline)
            for token in tokens:
                if token.type != tokenize.COMMENT:
                    continue
                match = _PRAGMA.search(token.string)
                if not match:
                    continue
                rules = frozenset(
                    part.strip() for part in match.group("rules").split(",")
                    if part.strip())
                if rules:
                    line = token.start[0]
                    allowed[line] = allowed.get(line, frozenset()) | rules
        except tokenize.TokenizeError:
            pass   # unparseable tail; the AST parse will report it
        return cls(allowed=allowed)

    def allows(self, line: int, rule_id: str) -> bool:
        """True if ``rule_id`` is suppressed on ``line``."""
        return rule_id in self.allowed.get(line, frozenset())

    def __bool__(self) -> bool:
        return bool(self.allowed)
