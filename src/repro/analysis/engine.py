"""Lint driver: paths in, rendered report + exit code out.

This is the layer ``confbench lint`` (and the in-tree meta-test) sits
on: assemble the default rule set, load the project, run the analyzer,
subtract the baseline, and render text, JSON, or SARIF.  Exit-code
convention (shared with ``confbench experiment``): 0 = clean,
1 = findings (or a failed shape check), 2 = usage error (argparse).

Two execution knobs exist for CI hygiene, both output-invariant:

- ``jobs > 1`` fans the passes out over worker processes; results are
  merged and globally sorted, so serial and parallel runs render
  byte-identically.
- ``cache_path`` persists per-(rule, module) findings keyed by content
  hashes (:mod:`repro.analysis.cache`); a warm cache run re-analyzes
  only what changed, invalidating transitively through the import
  graph for the cross-module passes.

:data:`PASS_SCHEMA` versions each pass's finding *semantics*: bump a
pass's number when its rules/messages change meaningfully, and stale
cache entries and baselines age out instead of lying.
"""

from __future__ import annotations

import json
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.analysis.baseline import Baseline
from repro.analysis.cache import AnalysisCache, closure_digests
from repro.analysis.concurrency import LockDisciplineRule
from repro.analysis.core import (
    Finding,
    Project,
    Rule,
    load_project,
)
from repro.analysis.core import _pragma_rule_ids
from repro.analysis.determinism import DeterminismRule
from repro.analysis.hotpath import HotPathRule
from repro.analysis.layering import LayeringRule
from repro.analysis.purity import TrialPurityRule
from repro.analysis.taint import ConfidentialTaintRule

#: Every production pass, by rule id (``--rules`` spelling).
RULE_REGISTRY: dict[str, type[Rule]] = {
    "determinism": DeterminismRule,
    "layering": LayeringRule,
    "purity": TrialPurityRule,
    "hotpath": HotPathRule,
    "taint": ConfidentialTaintRule,
    "lock": LockDisciplineRule,
}

#: Pass semantics version, recorded in baselines and cache keys.
PASS_SCHEMA: dict[str, int] = {
    "determinism": 1,
    "layering": 1,
    "purity": 1,
    "hotpath": 1,
    "taint": 1,
    "lock": 1,
}

def _SORT_KEY(f):
    # total order: ties beyond (path, line, col, rule) broken
    # by message/symbol so serial, parallel, and cached runs
    # render byte-identically
    return (f.path, f.line, f.col, f.rule, f.message, f.symbol)


_SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"


def default_rules() -> list[Rule]:
    """The six contract-enforcing passes, in reporting order."""
    return [DeterminismRule(), LayeringRule(), TrialPurityRule(),
            HotPathRule(), ConfidentialTaintRule(), LockDisciplineRule()]


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: list[Finding]              # new (non-baselined) findings
    grandfathered: list[Finding] = field(default_factory=list)
    checked_modules: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0

    def render_text(self) -> str:
        lines = [finding.render() for finding in self.findings]
        errors = sum(1 for f in self.findings if f.severity.value == "error")
        warnings = len(self.findings) - errors
        summary = (f"{len(self.findings)} finding(s) "
                   f"({errors} error(s), {warnings} warning(s)) "
                   f"in {self.checked_modules} module(s)")
        if self.grandfathered:
            summary += f"; {len(self.grandfathered)} baselined"
        lines.append(summary if self.findings
                     else f"clean: {summary}")
        return "\n".join(lines)

    def render_json(self) -> str:
        return json.dumps({
            "version": 1,
            "checked_modules": self.checked_modules,
            "findings": [f.to_dict() for f in self.findings],
            "grandfathered": len(self.grandfathered),
            "exit_code": self.exit_code,
        }, indent=2)

    def render_sarif(self) -> str:
        """SARIF 2.1.0, the format CI code-scanning upload consumes."""
        rule_ids = sorted({f.rule for f in self.findings})
        rule_index = {rule: i for i, rule in enumerate(rule_ids)}
        results = []
        for finding, fingerprint in _occurrence_fingerprints(self.findings):
            results.append({
                "ruleId": finding.rule,
                "ruleIndex": rule_index[finding.rule],
                "level": "error" if finding.severity.value == "error"
                         else "warning",
                "message": {"text": finding.message},
                "locations": [{
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path.replace("\\", "/")},
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col + 1,
                        },
                    },
                    "logicalLocations": [{
                        "fullyQualifiedName":
                            f"{finding.module}.{finding.symbol}"
                            if finding.symbol else finding.module,
                    }],
                }],
                "partialFingerprints": {
                    "confbenchFingerprint/v1": fingerprint},
            })
        payload = {
            "$schema": _SARIF_SCHEMA,
            "version": "2.1.0",
            "runs": [{
                "tool": {"driver": {
                    "name": "confbench-lint",
                    "informationUri":
                        "https://github.com/confbench/confbench",
                    "rules": [{
                        "id": rule,
                        "shortDescription": {"text": _RULE_BLURBS.get(
                            rule.split("/")[0], "confbench lint pass")},
                    } for rule in rule_ids],
                }},
                "results": results,
            }],
        }
        return json.dumps(payload, indent=2)


_RULE_BLURBS = {
    "determinism": "wall-clock/entropy escapes on deterministic paths",
    "layering": "module import violates the DESIGN.md layer DAG",
    "purity": "module-state mutation on the trial path",
    "hotpath": "per-op charge loop where a batch should be",
    "taint": "confidential data crosses the simulated trust boundary",
    "lock": "guarded attribute accessed without its lock",
}


def _occurrence_fingerprints(findings: list[Finding]
                             ) -> list[tuple[Finding, str]]:
    counts: dict[tuple, int] = {}
    out = []
    for finding in findings:
        key = (finding.rule, finding.module or finding.path,
               finding.symbol, finding.message)
        occurrence = counts.get(key, 0)
        counts[key] = occurrence + 1
        out.append((finding, finding.fingerprint(occurrence)))
    return out


# ---------------------------------------------------------------------------
# execution


def _apply_pragmas(findings: list[Finding],
                   project: Project) -> list[Finding]:
    pragma_index = {str(m.path): m.pragmas for m in project.modules}
    kept = []
    for finding in findings:
        pragmas = pragma_index.get(finding.path)
        if pragmas is not None and any(
                pragmas.allows(finding.line, key)
                for key in _pragma_rule_ids(finding.rule)):
            continue
        kept.append(finding)
    return kept


def _run_one_rule(rule: Rule, project: Project) -> list[Finding]:
    """One pass, pragma-filtered, in deterministic order."""
    findings: list[Finding] = []
    for module in project.modules:
        findings.extend(rule.check_module(module))
    findings.extend(rule.check_project(project))
    findings = _apply_pragmas(findings, project)
    findings.sort(key=_SORT_KEY)
    return findings


def _is_module_scope(rule: Rule) -> bool:
    """True when the rule sees one file at a time (cacheable per file)."""
    return type(rule).check_project is Rule.check_project


def _rule_worker(rule: Rule, path_strs: list[str]) -> list[dict]:
    """Subprocess entry: reload the tree, run one pass."""
    project = load_project([Path(p) for p in path_strs])
    return [f.to_dict() for f in _run_one_rule(rule, project)]


def _cached_rule_run(rule: Rule, project: Project, cache: AnalysisCache,
                     closures: dict[str, str]) -> list[Finding]:
    """Run one pass through the cache, filling misses."""
    schema = PASS_SCHEMA.get(rule.id, 1)
    module_scope = _is_module_scope(rule)
    digest_for = {m.name: (m.sha if module_scope else closures[m.name])
                  for m in project.modules}
    keys = {m.name: AnalysisCache.key(rule.id, schema, digest_for[m.name])
            for m in project.modules}

    if module_scope:
        findings: list[Finding] = []
        for module in project.modules:
            cached = cache.get(keys[module.name])
            if cached is None:
                fresh = _apply_pragmas(
                    list(rule.check_module(module)), project)
                fresh.sort(key=_SORT_KEY)
                cache.put(keys[module.name], fresh)
                cached = fresh
            findings.extend(cached)
        findings.sort(key=_SORT_KEY)
        return findings

    cached_all: list[Finding] = []
    complete = True
    for module in project.modules:
        cached = cache.get(keys[module.name])
        if cached is None:
            complete = False
            break
        cached_all.extend(cached)
    if complete:
        cached_all.sort(key=_SORT_KEY)
        return cached_all

    findings = _run_one_rule(rule, project)
    by_path: dict[str, list[Finding]] = {str(m.path): []
                                         for m in project.modules}
    cacheable = True
    for finding in findings:
        bucket = by_path.get(finding.path)
        if bucket is None:
            cacheable = False   # off-tree finding; don't trust a warm hit
            break
        bucket.append(finding)
    if cacheable:
        path_to_name = {str(m.path): m.name for m in project.modules}
        for path, bucket in by_path.items():
            cache.put(keys[path_to_name[path]], bucket)
    return findings


def run_lint(paths: Sequence[Path], rules: Sequence[Rule] | None = None,
             baseline: Baseline | None = None, jobs: int = 1,
             cache_path: Path | None = None) -> LintReport:
    """Run the analyzer over ``paths`` and apply the baseline.

    ``jobs`` and ``cache_path`` change cost, never output: findings are
    merged and globally sorted before rendering.
    """
    project = load_project(paths)
    rule_list = list(rules) if rules is not None else default_rules()

    cache = AnalysisCache(cache_path) if cache_path is not None else None
    closures = closure_digests(project) if cache is not None else {}

    findings: list[Finding] = []
    pending: list[Rule] = []
    for rule in rule_list:
        if cache is not None:
            findings.extend(_cached_rule_run(rule, project, cache, closures))
        else:
            pending.append(rule)

    if pending and jobs > 1:
        path_strs = [str(p) for p in paths]
        with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
            futures = [pool.submit(_rule_worker, rule, path_strs)
                       for rule in pending]
            for future in futures:
                findings.extend(Finding.from_dict(d)
                                for d in future.result())
    else:
        for rule in pending:
            findings.extend(_run_one_rule(rule, project))

    if cache is not None:
        live = set()
        for rule in rule_list:
            schema = PASS_SCHEMA.get(rule.id, 1)
            module_scope = _is_module_scope(rule)
            for module in project.modules:
                digest = module.sha if module_scope \
                    else closures[module.name]
                live.add(AnalysisCache.key(rule.id, schema, digest))
        cache.prune(live)
        cache.save()

    findings.sort(key=_SORT_KEY)
    if baseline is not None:
        new, grandfathered = baseline.split(findings)
    else:
        new, grandfathered = findings, []
    return LintReport(findings=new, grandfathered=grandfathered,
                      checked_modules=len(project.modules),
                      cache_hits=cache.hits if cache else 0,
                      cache_misses=cache.misses if cache else 0)
