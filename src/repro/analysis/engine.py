"""Lint driver: paths in, rendered report + exit code out.

This is the layer ``confbench lint`` (and the in-tree meta-test) sits
on: assemble the default rule set, load the project, run the analyzer,
subtract the baseline, and render text or JSON.  Exit-code convention
(shared with ``confbench experiment``): 0 = clean, 1 = findings (or a
failed shape check), 2 = usage error (argparse).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.analysis.baseline import Baseline
from repro.analysis.core import Analyzer, Finding, Rule, load_project
from repro.analysis.determinism import DeterminismRule
from repro.analysis.hotpath import HotPathRule
from repro.analysis.layering import LayeringRule
from repro.analysis.purity import TrialPurityRule


def default_rules() -> list[Rule]:
    """The four contract-enforcing passes, in reporting order."""
    return [DeterminismRule(), LayeringRule(), TrialPurityRule(),
            HotPathRule()]


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: list[Finding]              # new (non-baselined) findings
    grandfathered: list[Finding] = field(default_factory=list)
    checked_modules: int = 0

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0

    def render_text(self) -> str:
        lines = [finding.render() for finding in self.findings]
        errors = sum(1 for f in self.findings if f.severity.value == "error")
        warnings = len(self.findings) - errors
        summary = (f"{len(self.findings)} finding(s) "
                   f"({errors} error(s), {warnings} warning(s)) "
                   f"in {self.checked_modules} module(s)")
        if self.grandfathered:
            summary += f"; {len(self.grandfathered)} baselined"
        lines.append(summary if self.findings
                     else f"clean: {summary}")
        return "\n".join(lines)

    def render_json(self) -> str:
        return json.dumps({
            "version": 1,
            "checked_modules": self.checked_modules,
            "findings": [f.to_dict() for f in self.findings],
            "grandfathered": len(self.grandfathered),
            "exit_code": self.exit_code,
        }, indent=2)


def run_lint(paths: Sequence[Path], rules: Sequence[Rule] | None = None,
             baseline: Baseline | None = None) -> LintReport:
    """Run the analyzer over ``paths`` and apply the baseline."""
    project = load_project(paths)
    analyzer = Analyzer(rules if rules is not None else default_rules())
    findings = analyzer.run(project)
    if baseline is not None:
        new, grandfathered = baseline.split(findings)
    else:
        new, grandfathered = findings, []
    return LintReport(findings=new, grandfathered=grandfathered,
                      checked_modules=len(project.modules))
