"""Determinism pass: flag wall-clock and entropy escapes.

Everything in the reproduction is virtual-time: nanoseconds come from
the cost ledger and randomness comes from label-derived ``SimRng``
streams (see DESIGN.md "Determinism").  A single ``time.time()`` or
``random.random()`` in a workload body silently re-introduces
host-dependent behaviour — results stop being a pure function of the
:class:`~repro.core.runner.TrialSpec` and the serial/parallel
bit-identity guarantee breaks.

Sub-rules (all suppressible with ``# confbench: allow[determinism]``
or the specific id):

- ``determinism/wallclock`` — ``time.time``/``monotonic``/
  ``perf_counter`` (+ ``_ns`` forms), ``datetime.now``/``utcnow``/
  ``today``.
- ``determinism/entropy`` — ``os.urandom``, ``uuid.uuid1``/``uuid4``,
  any ``secrets.*`` call, and *module-level* ``random.*`` /
  ``numpy.random.*`` draws, which share hidden global state.  Seeded
  generator construction (``random.Random(seed)``,
  ``numpy.random.default_rng(seed)``) is allowed: instances with an
  explicit seed are exactly how ``repro.sim.rng`` builds streams.
- ``determinism/unordered-iter`` — iterating a set expression
  directly (``for x in {a, b}``, ``for x in set(...)``).  Set order
  depends on ``PYTHONHASHSEED`` for strings, so anything
  ordering-sensitive downstream diverges between processes; wrap in
  ``sorted()`` instead.
- ``determinism/id-sort-key`` — ``sorted(..., key=id)`` /
  ``.sort(key=id)``: CPython object addresses vary run to run.
- ``determinism/builtin-hash`` — calling builtin ``hash()``: string
  hashing is salted per process (``PYTHONHASHSEED``), so a hash that
  reaches a result diverges between the serial path and parallel
  workers.  Use ``hashlib`` for content digests.

Modules in the allowlist (the RNG substrate itself and CLI entry
points) are exempt wholesale.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import (
    Finding,
    ImportTable,
    Rule,
    Severity,
    SourceModule,
    enclosing_symbol,
)

#: Modules exempt from this pass: the seeded-RNG substrate is the one
#: legitimate consumer of ``random``, the fault-injection substrate
#: wraps it the same way, and CLI entry points may touch the host
#: environment.
DEFAULT_ALLOWLIST = frozenset({
    "repro.sim.rng", "repro.sim.faults", "repro.cli",
})

#: Fully-qualified callables that read host clocks.
WALLCLOCK_CALLS = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "time.thread_time", "time.thread_time_ns",
    "time.localtime", "time.gmtime", "time.clock_gettime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: Fully-qualified callables that read host entropy.
ENTROPY_CALLS = frozenset({
    "os.urandom", "os.getrandom",
    "uuid.uuid1", "uuid.uuid4",
})

#: ``random``-module functions backed by the hidden global Mersenne
#: Twister.  ``random.Random`` (seeded instance construction) is not
#: in this set on purpose.
GLOBAL_RANDOM_FUNCS = frozenset({
    "seed", "random", "uniform", "randint", "randrange", "choice",
    "choices", "shuffle", "sample", "gauss", "normalvariate",
    "lognormvariate", "expovariate", "betavariate", "gammavariate",
    "triangular", "vonmisesvariate", "paretovariate", "weibullvariate",
    "getrandbits", "randbytes", "binomialvariate",
})

#: ``numpy.random`` legacy global-state functions; ``default_rng`` and
#: ``Generator`` are the seeded, allowed API.
NUMPY_GLOBAL_RANDOM_FUNCS = frozenset({
    "seed", "random", "rand", "randn", "randint", "random_sample",
    "ranf", "sample", "choice", "shuffle", "permutation", "uniform",
    "normal", "standard_normal", "bytes",
})


class DeterminismRule(Rule):
    """Flags wall-clock/entropy escapes and ordering hazards."""

    id = "determinism"
    severity = Severity.ERROR

    def __init__(self, allowlist: frozenset[str] = DEFAULT_ALLOWLIST) -> None:
        self.allowlist = frozenset(allowlist)

    def check_module(self, module: SourceModule) -> Iterator[Finding]:
        if module.name in self.allowlist:
            return
        visitor = _DeterminismVisitor(module)
        visitor.visit(module.tree)
        yield from visitor.findings


class _DeterminismVisitor(ast.NodeVisitor):
    def __init__(self, module: SourceModule) -> None:
        self.module = module
        self.imports = ImportTable()
        self.findings: list[Finding] = []
        self._stack: list[ast.AST] = []

    # -- bookkeeping --------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        self.imports.visit_import(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        self.imports.visit_import_from(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._stack.append(node)
        self.generic_visit(node)
        self._stack.pop()

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._stack.append(node)
        self.generic_visit(node)
        self._stack.pop()

    def _report(self, subrule: str, node: ast.AST, message: str) -> None:
        self.findings.append(Finding(
            rule=f"determinism/{subrule}",
            severity=Severity.ERROR,
            path=str(self.module.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
            symbol=enclosing_symbol(self._stack),
            module=self.module.name,
        ))

    # -- calls --------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        qualified = self.imports.resolve(node.func)
        if qualified is not None:
            self._check_call(node, qualified)
        self._check_sort_key(node, qualified)
        self.generic_visit(node)

    def _check_call(self, node: ast.Call, qualified: str) -> None:
        if qualified in WALLCLOCK_CALLS:
            self._report("wallclock", node,
                         f"{qualified}() reads the host clock; all timing "
                         "must come from the virtual clock / cost ledger")
        elif qualified in ENTROPY_CALLS:
            self._report("entropy", node,
                         f"{qualified}() reads host entropy; derive bytes "
                         "from the trial's SimRng stream instead")
        elif qualified.startswith("secrets."):
            self._report("entropy", node,
                         f"{qualified}() uses the secrets module (host "
                         "entropy); derive from SimRng instead")
        elif (qualified.startswith("random.")
              and qualified.split(".", 1)[1] in GLOBAL_RANDOM_FUNCS):
            self._report("entropy", node,
                         f"{qualified}() draws from the hidden global "
                         "random state; use a seeded SimRng (or "
                         "random.Random(seed)) stream")
        elif self._is_numpy_global_random(qualified):
            self._report("entropy", node,
                         f"{qualified}() uses numpy's global random state; "
                         "use numpy.random.default_rng(seed)")
        elif qualified == "hash" and not self._inside_dunder_hash():
            # hash() inside a __hash__ implementation is process-local
            # by design and never escapes into results.
            self._report("builtin-hash", node,
                         "builtin hash() is salted per process "
                         "(PYTHONHASHSEED); use hashlib for stable "
                         "content digests")

    def _inside_dunder_hash(self) -> bool:
        return any(isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                   and node.name == "__hash__" for node in self._stack)

    @staticmethod
    def _is_numpy_global_random(qualified: str) -> bool:
        for prefix in ("numpy.random.", "np.random."):
            if qualified.startswith(prefix):
                return qualified[len(prefix):] in NUMPY_GLOBAL_RANDOM_FUNCS
        return False

    def _check_sort_key(self, node: ast.Call, qualified: str | None) -> None:
        is_sort = (qualified == "sorted"
                   or (isinstance(node.func, ast.Attribute)
                       and node.func.attr == "sort"))
        if not is_sort:
            return
        for keyword in node.keywords:
            if (keyword.arg == "key" and isinstance(keyword.value, ast.Name)
                    and keyword.value.id == "id"):
                self._report("id-sort-key", keyword.value,
                             "sorting by id() orders by object address, "
                             "which varies between runs; sort by a stable "
                             "content key")

    # -- iteration order ----------------------------------------------

    def visit_For(self, node: ast.For) -> None:
        self._check_iterable(node.iter)
        self.generic_visit(node)

    visit_AsyncFor = visit_For

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_iterable(node.iter)
        self.generic_visit(node)

    def _check_iterable(self, iterable: ast.expr) -> None:
        if isinstance(iterable, (ast.Set, ast.SetComp)):
            self._report("unordered-iter", iterable,
                         "iterating a set expression; order depends on "
                         "PYTHONHASHSEED — wrap in sorted()")
        elif (isinstance(iterable, ast.Call)
              and isinstance(iterable.func, ast.Name)
              and iterable.func.id in ("set", "frozenset")):
            self._report("unordered-iter", iterable,
                         f"iterating {iterable.func.id}(...) directly; "
                         "order depends on PYTHONHASHSEED — wrap in "
                         "sorted()")
