"""Static analysis enforcing the simulation contract (``confbench lint``).

The reproduction's load-bearing property is determinism: every trial is
a pure function of its :class:`~repro.core.runner.TrialSpec`, and the
layer DAG in ``DESIGN.md`` keeps lower substrates ignorant of the
orchestration above them.  Nothing in Python stops a contributor from
calling ``time.time()`` inside a workload or importing ``repro.core``
from ``repro.hw`` — one such slip silently turns bit-identical trials
into flaky fig3–fig8 regressions.  This package catches that class of
bug at lint time with four AST-based passes:

- :mod:`repro.analysis.determinism` — flags wall-clock and entropy
  escapes (``time.time``, ``datetime.now``, module-level ``random.*``,
  ``os.urandom``, ``uuid.uuid4``, ``secrets.*``), raw iteration over
  sets, and ``id()``-based sort keys.
- :mod:`repro.analysis.layering` — rebuilds the module import graph
  and enforces the DESIGN.md layer DAG, reporting the offending
  import chain.
- :mod:`repro.analysis.purity` — walks the call graph from the trial
  pipeline's entry points (``execute_trial``, body factories) and
  flags mutation of module-level state inside reachable functions.
- :mod:`repro.analysis.hotpath` — flags per-op charge loops inside
  ``repro.tee`` / ``repro.guestos`` / ``repro.runtimes``, where the
  batched op-stream kernel should be folding charges into one ledger
  merge.

Findings can be suppressed inline with ``# confbench: allow[<rule>]``
pragmas (:mod:`repro.analysis.pragmas`) or grandfathered in a committed
baseline file (:mod:`repro.analysis.baseline`).  The package is
deliberately self-contained tooling: it imports nothing from the
simulation layers (only ``repro.errors``), so it can lint a broken
tree without importing it.
"""

from __future__ import annotations

from repro.analysis.baseline import Baseline
from repro.analysis.core import (
    AnalysisError,
    Analyzer,
    Finding,
    Project,
    Rule,
    Severity,
    SourceModule,
)
from repro.analysis.determinism import DeterminismRule
from repro.analysis.engine import LintReport, default_rules, run_lint
from repro.analysis.hotpath import HotPathRule
from repro.analysis.layering import LAYERS, LayeringRule
from repro.analysis.purity import TrialPurityRule

__all__ = [
    "AnalysisError",
    "Analyzer",
    "Baseline",
    "DeterminismRule",
    "Finding",
    "HotPathRule",
    "LAYERS",
    "LayeringRule",
    "LintReport",
    "Project",
    "Rule",
    "Severity",
    "SourceModule",
    "TrialPurityRule",
    "default_rules",
    "run_lint",
]
