"""Static analysis enforcing the simulation contract (``confbench lint``).

The reproduction's load-bearing property is determinism: every trial is
a pure function of its :class:`~repro.core.runner.TrialSpec`, and the
layer DAG in ``DESIGN.md`` keeps lower substrates ignorant of the
orchestration above them.  Nothing in Python stops a contributor from
calling ``time.time()`` inside a workload or importing ``repro.core``
from ``repro.hw`` — one such slip silently turns bit-identical trials
into flaky fig3–fig8 regressions.  This package catches that class of
bug at lint time with four AST-based passes:

- :mod:`repro.analysis.determinism` — flags wall-clock and entropy
  escapes (``time.time``, ``datetime.now``, module-level ``random.*``,
  ``os.urandom``, ``uuid.uuid4``, ``secrets.*``), raw iteration over
  sets, and ``id()``-based sort keys.
- :mod:`repro.analysis.layering` — rebuilds the module import graph
  and enforces the DESIGN.md layer DAG, reporting the offending
  import chain.
- :mod:`repro.analysis.purity` — walks the call graph from the trial
  pipeline's entry points (``execute_trial``, body factories) and
  flags mutation of module-level state inside reachable functions.
- :mod:`repro.analysis.hotpath` — flags per-op charge loops inside
  ``repro.tee`` / ``repro.guestos`` / ``repro.runtimes``, where the
  batched op-stream kernel should be folding charges into one ledger
  merge.
- :mod:`repro.analysis.taint` — interprocedural forward taint on the
  :mod:`repro.analysis.dataflow` call graph: key material and guest
  plaintext must not reach relay sends, REST bodies, journal records,
  telemetry, logs, or exception messages un-digested.
- :mod:`repro.analysis.concurrency` — lock discipline for the
  threaded modules: attributes written under ``with self._lock:`` are
  guarded, unguarded access and ABBA acquisition orders are findings.

The cross-module passes share :mod:`repro.analysis.dataflow` (symbol
index, call graph, import graph); :mod:`repro.analysis.cache` keys
their results by content hashes so warm lint runs only re-analyze
what changed.

Findings can be suppressed inline with ``# confbench: allow[<rule>]``
pragmas (:mod:`repro.analysis.pragmas`) or grandfathered in a committed
baseline file (:mod:`repro.analysis.baseline`).  The package is
deliberately self-contained tooling: it imports nothing from the
simulation layers (only ``repro.errors``), so it can lint a broken
tree without importing it.
"""

from __future__ import annotations

from repro.analysis.baseline import Baseline
from repro.analysis.cache import AnalysisCache
from repro.analysis.concurrency import LockDisciplineRule
from repro.analysis.core import (
    AnalysisError,
    Analyzer,
    Finding,
    Project,
    Rule,
    Severity,
    SourceModule,
)
from repro.analysis.determinism import DeterminismRule
from repro.analysis.engine import (
    PASS_SCHEMA,
    RULE_REGISTRY,
    LintReport,
    default_rules,
    run_lint,
)
from repro.analysis.hotpath import HotPathRule
from repro.analysis.layering import LAYERS, LayeringRule
from repro.analysis.purity import TrialPurityRule
from repro.analysis.taint import ConfidentialTaintRule, TaintSpec

__all__ = [
    "AnalysisCache",
    "AnalysisError",
    "Analyzer",
    "Baseline",
    "ConfidentialTaintRule",
    "DeterminismRule",
    "Finding",
    "HotPathRule",
    "LAYERS",
    "LayeringRule",
    "LintReport",
    "LockDisciplineRule",
    "PASS_SCHEMA",
    "Project",
    "RULE_REGISTRY",
    "Rule",
    "Severity",
    "SourceModule",
    "TaintSpec",
    "TrialPurityRule",
    "default_rules",
    "run_lint",
]
