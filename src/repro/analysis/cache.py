"""Per-file analysis cache keyed by content hashes.

``confbench lint --cache FILE`` persists post-pragma findings between
runs so the CI job (and a local pre-commit loop) only pays for what
changed.  Keys are derived purely from *content*:

- a **module-scope** rule (determinism, hotpath, lock — anything that
  only implements ``check_module``) caches per file, keyed by that
  file's SHA-256.  Editing one file re-analyzes one file.
- a **project-scope** rule (taint, purity, layering) sees the whole
  tree through import and call graphs, so its findings for module M
  are keyed by the joint hash of M's *transitive import closure*
  (:meth:`repro.analysis.dataflow.ImportGraph.closure`).  Editing
  ``attest/crypto.py`` invalidates every module that can reach it —
  exactly the set whose taint summaries could change — and nothing
  else.

Entries also carry the pass schema version
(:data:`repro.analysis.engine.PASS_SCHEMA`); bumping a pass's version
drops its entries wholesale.  Findings are cached *after* pragma
suppression (pragmas live in the hashed source, so a pragma edit is a
content change) and *before* baseline subtraction (baselines change
without touching sources).

The file format is one JSON object; unknown versions and unreadable
files are treated as an empty cache, never an error — a cache must be
safe to delete at any time.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.analysis.core import Finding, Project
from repro.analysis.dataflow import ImportGraph

CACHE_VERSION = 1


class AnalysisCache:
    """Content-addressed store of per-(rule, module) findings."""

    def __init__(self, path: Path) -> None:
        self.path = path
        self.entries: dict[str, list[dict]] = {}
        self.hits = 0
        self.misses = 0
        self._dirty = False
        self._load()

    def _load(self) -> None:
        try:
            payload = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError, ValueError):
            return
        if not isinstance(payload, dict) \
                or payload.get("version") != CACHE_VERSION:
            return
        entries = payload.get("entries")
        if isinstance(entries, dict):
            self.entries = entries

    def save(self) -> None:
        if not self._dirty:
            return
        payload = {"version": CACHE_VERSION, "entries": self.entries}
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True),
                       encoding="utf-8")
        tmp.replace(self.path)
        self._dirty = False

    # -- keys ---------------------------------------------------------

    @staticmethod
    def key(rule_id: str, schema: int, digest: str) -> str:
        return f"{rule_id}@{schema}:{digest}"

    def get(self, key: str) -> list[Finding] | None:
        cached = self.entries.get(key)
        if cached is None:
            self.misses += 1
            return None
        self.hits += 1
        return [Finding.from_dict(entry) for entry in cached]

    def put(self, key: str, findings: list[Finding]) -> None:
        self.entries[key] = [finding.to_dict() for finding in findings]
        self._dirty = True

    def prune(self, live_keys: set[str]) -> None:
        """Drop entries for content no longer in the tree."""
        stale = [key for key in self.entries if key not in live_keys]
        for key in stale:
            del self.entries[key]
            self._dirty = True


def closure_digests(project: Project) -> dict[str, str]:
    """module name -> hash over its transitive import closure's shas.

    The closure includes the module itself.  Modules outside the
    project contribute nothing (their content is not analyzed), and a
    module with no project imports hashes to its own sha — so for
    leaf modules the closure key degenerates to the file key.
    """
    graph = ImportGraph.build(project)
    by_name = {module.name: module for module in project.modules}
    digests: dict[str, str] = {}
    for module in project.modules:
        names = sorted(graph.closure(module.name) | {module.name})
        blob = "\x00".join(
            f"{name}={by_name[name].sha}" for name in names
            if name in by_name)
        digests[module.name] = hashlib.sha256(blob.encode()).hexdigest()
    return digests
