"""Seeded, spec-derived fault injection.

Real CVM deployments fail constantly at trust boundaries: attestation
collateral fetches time out, TD-exits kill VMs, relays drop
connections ("Characterizing Trust Boundary Vulnerabilities in TEE
Containers" catalogs exactly these modes).  This module makes those
failures *first-class simulation inputs*: a :class:`FaultPlan` maps
fault kinds to per-trial probabilities, and every decision is drawn
from a label-derived :class:`~repro.sim.rng.SimRng` substream — the
same content-hash scheme the jitter streams use.

The determinism contract:

- Every ``triggers`` decision is a pure function of ``(plan seed,
  fault kind, label)``.  No shared stream state exists, so the order
  in which consumers ask is irrelevant — serial and parallel trial
  execution stay bit-identical under faults.
- Labels embed the trial's own stream label (plus the attempt index
  and the injection point), so trial K's faults do not move when the
  trial count changes, and each retry re-rolls independently.
- A zero rate short-circuits to False *without drawing*, so a
  zero-rate plan is byte-identical to running with no plan at all.

:class:`RetryPolicy` bounds the failure handling built on top
(bounded attempts, exponential backoff charged to the cost ledger,
an optional per-trial virtual-time deadline), and :class:`FailureLog`
replays failed attempts into a :class:`~repro.sim.trace.Trace` as
structured ``failure`` / ``retry`` spans.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import SimulationError
from repro.sim.rng import SimRng
from repro.sim.trace import Trace

#: Scale of the virtual time a crashed VM wastes before dying (the
#: partial execution between launch and the fatal TD-exit).
CRASH_WASTE_SCALE_NS = 200_000_000.0


class FaultKind(enum.Enum):
    """The failure modes the simulation can inject."""

    VM_CRASH = "vm-crash"               # the VM dies mid-execute (TD-exit)
    SLOW_TRIAL = "slow-trial"           # a whole trial runs degraded
    ATTEST_TRANSIENT = "attest-transient"  # transient verification failure
    PCS_TIMEOUT = "pcs-timeout"         # collateral fetch times out
    RELAY_DROP = "relay-drop"           # the TCP relay drops a connection
    # cluster-scale kinds (consumed by repro.core.cluster): these are
    # *windows on a virtual timeline* rather than per-call coin flips
    HOST_CRASH = "host-crash"           # a whole cluster host dies
    ZONE_PARTITION = "zone-partition"   # a failure domain drops off the net
    DEGRADED_HOST = "degraded-host"     # a host runs slowed by slow_factor
    COLLATERAL_OUTAGE = "collateral-outage"  # per-zone PCS/CDN blackout

    @classmethod
    def parse(cls, name: str) -> "FaultKind":
        for kind in cls:
            if kind.value == name:
                return kind
        known = ", ".join(kind.value for kind in cls)
        raise SimulationError(f"unknown fault kind {name!r}; known: {known}")


@dataclass(frozen=True)
class FaultPlan:
    """Per-kind fault rates plus the seed all decisions derive from.

    ``rates`` maps :class:`FaultKind` to a per-decision probability in
    [0, 1].  Kinds absent from the mapping never fire, and a rate of
    exactly 0 makes no draw at all (the zero-rate identity).
    """

    seed: int = 0
    slow_factor: float = 3.0
    rates: dict[FaultKind, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.slow_factor < 1.0:
            raise SimulationError(
                f"slow-factor must be >= 1.0, got {self.slow_factor}")
        for kind, rate in self.rates.items():
            if not isinstance(kind, FaultKind):
                raise SimulationError(f"rates must be keyed by FaultKind, "
                                      f"got {kind!r}")
            if not 0.0 <= rate <= 1.0:
                raise SimulationError(
                    f"rate for {kind.value} must be in [0, 1], got {rate}")

    @property
    def active(self) -> bool:
        """Whether any kind can ever fire."""
        return any(rate > 0.0 for rate in self.rates.values())

    def rate(self, kind: FaultKind) -> float:
        return self.rates.get(kind, 0.0)

    def triggers(self, kind: FaultKind, label: str) -> bool:
        """Decide one injection, purely from ``(seed, kind, label)``.

        Each (kind, label) pair owns an independent substream, so
        adding a new fault kind — or a new consumer — never perturbs
        the decisions of existing ones.
        """
        rate = self.rates.get(kind, 0.0)
        if rate <= 0.0:
            return False          # zero-rate identity: no draw at all
        if rate >= 1.0:
            return True
        return SimRng(self.seed, f"fault/{kind.value}/{label}").bernoulli(rate)

    def crash_waste_ns(self, label: str) -> float:
        """Virtual time a crashed VM burned before dying."""
        draw = SimRng(self.seed, f"fault/waste/{label}").uniform(0.1, 1.0)
        return draw * CRASH_WASTE_SCALE_NS

    # -- cluster-scale timeline faults ---------------------------------

    #: largest fraction of the horizon a fault window may span
    WINDOW_SCALE = 0.25

    def event_at_ns(self, kind: FaultKind, label: str,
                    horizon_ns: float) -> float | None:
        """When a one-shot fault (a host crash) fires, or None.

        Whether the fault fires at all is the usual label-derived
        Bernoulli; its position comes from an independent substream of
        the same label, drawn uniformly inside the middle of the
        horizon so the sweep always observes both the healthy prefix
        and the degraded suffix.  Pure function of (seed, kind, label,
        horizon) — scheduling order never matters.
        """
        if not self.triggers(kind, label):
            return None
        rng = SimRng(self.seed, f"fault/at/{kind.value}/{label}")
        return rng.uniform(0.10, 0.90) * horizon_ns

    def window_ns(self, kind: FaultKind, label: str,
                  horizon_ns: float) -> tuple[float, float] | None:
        """A ``(start_ns, end_ns)`` fault window on the timeline, or None.

        Used by the cluster layer for zone partitions, degraded-host
        slowdowns, and collateral outages: the window exists with the
        kind's rate and spans up to :data:`WINDOW_SCALE` of the
        horizon.  Same determinism contract as :meth:`event_at_ns`.
        """
        if not self.triggers(kind, label):
            return None
        rng = SimRng(self.seed, f"fault/window/{kind.value}/{label}")
        start = rng.uniform(0.05, 0.70) * horizon_ns
        duration = rng.uniform(0.5, 1.0) * self.WINDOW_SCALE * horizon_ns
        return (start, min(start + duration, horizon_ns))

    # -- the canonical spec-string form --------------------------------

    @classmethod
    def parse(cls, spec: "str | FaultPlan") -> "FaultPlan":
        """Build a plan from a ``key=value,...`` spec string.

        Keys are the fault-kind values (``vm-crash=0.1``) plus
        ``seed`` and ``slow-factor``.  Passing a plan returns it
        unchanged, so call sites accept either form.
        """
        if isinstance(spec, FaultPlan):
            return spec
        seed = 0
        slow_factor = 3.0
        rates: dict[FaultKind, float] = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, value = part.partition("=")
            key, value = key.strip(), value.strip()
            if not sep or not value:
                raise SimulationError(
                    f"bad fault spec entry {part!r}; expected key=value")
            try:
                if key == "seed":
                    seed = int(value)
                elif key == "slow-factor":
                    slow_factor = float(value)
                else:
                    rates[FaultKind.parse(key)] = float(value)
            except ValueError as exc:
                raise SimulationError(
                    f"bad fault spec value {part!r}: {exc}") from exc
        return cls(seed=seed, slow_factor=slow_factor, rates=rates)

    def to_spec(self) -> str:
        """The canonical spec string (stable field order, ``%g`` rates).

        Round-trips through :meth:`parse`; used to embed plans in
        :class:`~repro.core.runner.TrialSpec` content hashes.
        """
        parts = [f"{kind.value}={self.rates[kind]:g}"
                 for kind in FaultKind if self.rates.get(kind, 0.0) > 0.0]
        if self.seed:
            parts.append(f"seed={self.seed}")
        if self.slow_factor != 3.0:
            parts.append(f"slow-factor={self.slow_factor:g}")
        return ",".join(parts)


class FaultContext:
    """A plan bound to one scope (one trial attempt, one request).

    Consumers ask ``triggers(kind, point)``; the scope plus the point
    name form the decision label.  Every fired injection is appended
    to ``injected`` so results can report exactly which faults hit —
    child scopes (see :meth:`scoped`) share the parent's log.
    """

    def __init__(self, plan: FaultPlan, scope: str) -> None:
        self.plan = plan
        self.scope = scope
        self.injected: list[str] = []

    def triggers(self, kind: FaultKind, point: str) -> bool:
        if self.plan.triggers(kind, f"{self.scope}/{point}"):
            self.injected.append(f"{kind.value}@{point}")
            return True
        return False

    def waste_ns(self, point: str) -> float:
        """Crash-waste draw scoped to this context."""
        return self.plan.crash_waste_ns(f"{self.scope}/{point}")

    def scoped(self, suffix: str) -> "FaultContext":
        """A child context with a narrower scope, sharing the log."""
        child = FaultContext(self.plan, f"{self.scope}/{suffix}")
        child.injected = self.injected
        return child

    def __repr__(self) -> str:
        return f"FaultContext(scope={self.scope!r})"


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential, ledger-charged backoff."""

    max_attempts: int = 3
    backoff_base_ns: float = 2_000_000.0
    backoff_factor: float = 2.0
    deadline_ns: float | None = None    # virtual-time budget for retries

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise SimulationError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_base_ns < 0 or self.backoff_factor < 1.0:
            raise SimulationError("backoff must be non-negative and "
                                  "non-shrinking")

    def backoff_ns(self, attempt: int) -> float:
        """Backoff charged before retrying after failed ``attempt``."""
        return self.backoff_base_ns * self.backoff_factor ** attempt

    def allows(self, attempt: int, spent_ns: float) -> bool:
        """Whether attempt number ``attempt`` (0-based) may start."""
        if attempt >= self.max_attempts:
            return False
        if self.deadline_ns is not None and spent_ns >= self.deadline_ns:
            return False
        return True


DEFAULT_RETRY_POLICY = RetryPolicy()


class BreakerState(enum.Enum):
    """Circuit-breaker states (the classic three-state machine)."""

    CLOSED = "closed"         # healthy: calls pass through
    OPEN = "open"             # tripped: calls short-circuit
    HALF_OPEN = "half-open"   # cooled down: one probe call allowed


class CircuitBreaker:
    """A seeded, deterministic circuit breaker on *virtual* time.

    Wraps a flaky dependency (the Intel PCS, the VCEK device path) so
    repeated failures stop burning the per-call retry/timeout budget:
    after ``failure_threshold`` consecutive failures the breaker
    *opens* and refuses calls outright; once ``cooldown_ns`` of
    virtual time has passed it goes *half-open* and admits exactly one
    probe, whose outcome either re-closes or re-opens the circuit.

    Determinism contract: all timing comes from the caller-supplied
    ``now_ns`` (the trial's virtual clock) and the cooldown jitter is
    drawn from a ``(seed, name, open-episode)``-derived substream — so
    a breaker's trajectory is a pure function of the call sequence it
    observes, and serial/parallel sweeps stay bit-identical as long as
    breakers are scoped per trial (the runner builds one per
    attestation trial).

    State transitions are recorded on the optional ``trace`` as
    zero-duration ``breaker/<name>/<state>`` marks.
    """

    def __init__(self, name: str, seed: int = 0,
                 failure_threshold: int = 3,
                 cooldown_ns: float = 1_000_000_000.0,
                 jitter: float = 0.1,
                 trace: Trace | None = None) -> None:
        if failure_threshold < 1:
            raise SimulationError(
                f"failure threshold must be >= 1, got {failure_threshold}")
        if cooldown_ns <= 0:
            raise SimulationError(
                f"cooldown must be > 0, got {cooldown_ns}")
        if not 0.0 <= jitter < 1.0:
            raise SimulationError(
                f"jitter must be in [0, 1), got {jitter}")
        self.name = name
        self.seed = seed
        self.failure_threshold = failure_threshold
        self.cooldown_ns = cooldown_ns
        self.jitter = jitter
        self.trace = trace
        self.state = BreakerState.CLOSED
        #: consecutive failures observed while closed
        self.failures = 0
        #: calls refused (short-circuited) while open/half-open
        self.shorted = 0
        #: completed open episodes (indexes the jitter substream)
        self.open_count = 0
        self._opened_at_ns: float | None = None
        self._cooldown_draw_ns = 0.0

    def allow(self, now_ns: float) -> bool:
        """Whether a call may proceed at virtual time ``now_ns``.

        Open circuits refuse until the (jittered) cooldown elapses,
        then admit exactly one half-open probe; a second caller during
        the probe is refused.  Refusals are counted in :attr:`shorted`.
        """
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            opened = self._opened_at_ns or 0.0
            if now_ns < opened:
                # the clock regressed (a fresh trial context):
                # re-arm the cooldown from the new timeline
                self._opened_at_ns = now_ns
                opened = now_ns
            if now_ns - opened >= self._cooldown_draw_ns:
                self._transition(BreakerState.HALF_OPEN, now_ns)
                return True
        self.shorted += 1
        return False

    def record_success(self, now_ns: float) -> None:
        """Note a successful call; closes a half-open circuit."""
        self.failures = 0
        if self.state is not BreakerState.CLOSED:
            self._transition(BreakerState.CLOSED, now_ns)

    def record_failure(self, now_ns: float) -> None:
        """Note a failed call; may trip (or re-trip) the circuit."""
        if self.state is BreakerState.HALF_OPEN:
            self._open(now_ns)
            return
        if self.state is BreakerState.OPEN:
            return
        self.failures += 1
        if self.failures >= self.failure_threshold:
            self._open(now_ns)

    def _open(self, now_ns: float) -> None:
        self._opened_at_ns = now_ns
        draw = SimRng(self.seed,
                      f"breaker/{self.name}/open/{self.open_count}"
                      ).uniform(0.0, 1.0)
        self._cooldown_draw_ns = self.cooldown_ns * (1.0 + self.jitter * draw)
        self.open_count += 1
        self.failures = 0
        self._transition(BreakerState.OPEN, now_ns)

    def _transition(self, state: BreakerState, now_ns: float) -> None:
        self.state = state
        if self.trace is not None:
            self.trace.mark(f"breaker/{self.name}/{state.value}", now_ns)

    def __repr__(self) -> str:
        return (f"CircuitBreaker(name={self.name!r}, "
                f"state={self.state.value}, failures={self.failures}, "
                f"shorted={self.shorted})")


@dataclass
class FailureEvent:
    """One failed attempt: what died, the time it wasted, the backoff."""

    reason: str
    wasted_ns: float = 0.0
    backoff_ns: float = 0.0


class FailureLog:
    """Accumulates failed attempts across the retries of one request."""

    def __init__(self, events: Iterable[FailureEvent] = ()) -> None:
        self.events: list[FailureEvent] = list(events)

    def __len__(self) -> int:
        return len(self.events)

    def add(self, reason: str, wasted_ns: float = 0.0,
            backoff_ns: float = 0.0) -> None:
        if wasted_ns < 0 or backoff_ns < 0:
            raise SimulationError("failure accounting cannot be negative")
        self.events.append(FailureEvent(reason=reason, wasted_ns=wasted_ns,
                                        backoff_ns=backoff_ns))

    @property
    def surcharge_ns(self) -> float:
        """Total virtual time the failures cost (waste + backoff)."""
        return sum(ev.wasted_ns + ev.backoff_ns for ev in self.events)

    def replay(self, trace: Trace) -> float:
        """Record the failures as ``failure``/``retry`` root spans.

        Spans are laid out sequentially from virtual time 0 and carry
        their cost in the ``startup`` breakdown bucket — infrastructure
        time, like boot, excluded from the paper's elapsed metric but
        visible in ``total_ns`` — which keeps the trace invariant (root
        ledger deltas sum to the run ledger) once the same surcharge is
        charged to the result's ledger.  Returns the total surcharge.
        """
        cursor = 0.0
        for event in self.events:
            if event.wasted_ns > 0:
                trace.record("failure", cursor, cursor + event.wasted_ns,
                             breakdown={"startup": event.wasted_ns})
                cursor += event.wasted_ns
            if event.backoff_ns > 0:
                trace.record("retry", cursor, cursor + event.backoff_ns,
                             breakdown={"startup": event.backoff_ns})
                cursor += event.backoff_ns
        return cursor
