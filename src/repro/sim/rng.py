"""Seeded random streams for simulation jitter.

Real measurements jitter; the paper's box plots (Fig. 8) and stacked
percentiles (Fig. 3) only make sense if repeated trials differ.  We use
multiplicative lognormal noise — a standard model for execution-time
variability — drawn from deterministic, independently-seeded streams so
that every experiment is reproducible for a fixed seed.

Streams are derived from a root seed plus a string label, so adding a
new consumer never perturbs the draws of existing consumers.
"""

from __future__ import annotations

import hashlib
import math
import random


def derive_seed(root_seed: int, label: str) -> int:
    """Derive a child seed from a root seed and a stable string label."""
    digest = hashlib.sha256(f"{root_seed}:{label}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class SimRng:
    """A deterministic random stream with simulation-oriented helpers.

    Parameters
    ----------
    seed:
        Root seed of this stream.
    label:
        Optional label; when given, the effective seed is derived from
        ``(seed, label)`` so distinct labels give independent streams.
    """

    def __init__(self, seed: int, label: str = "") -> None:
        self.seed = seed
        self.label = label
        effective = derive_seed(seed, label) if label else seed
        self._random = random.Random(effective)

    def child(self, label: str) -> "SimRng":
        """A new independent stream derived from this one and ``label``."""
        combined = f"{self.label}/{label}" if self.label else label
        return SimRng(self.seed, combined)

    def uniform(self, low: float, high: float) -> float:
        """A uniform draw in [low, high)."""
        return self._random.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        """An integer draw in [low, high] inclusive."""
        return self._random.randint(low, high)

    def random(self) -> float:
        """A uniform draw in [0, 1)."""
        return self._random.random()

    def choice(self, seq):
        """A uniform choice from a non-empty sequence."""
        return self._random.choice(seq)

    def shuffle(self, seq: list) -> None:
        """Shuffle a list in place."""
        self._random.shuffle(seq)

    def getrandbits(self, bits: int) -> int:
        """Random integer with the given number of bits."""
        return self._random.getrandbits(bits)

    def bytes(self, n: int) -> bytes:
        """``n`` random bytes."""
        return self._random.getrandbits(8 * n).to_bytes(n, "big") if n else b""

    def gauss(self, mu: float, sigma: float) -> float:
        """A normal draw."""
        return self._random.gauss(mu, sigma)

    def raw_random(self) -> random.Random:
        """The underlying ``random.Random``, for hot batch kernels.

        :func:`repro.sim.opstream.accumulate` inlines ``Random.gauss``
        (same Box-Muller recurrence, same ``gauss_next`` pair cache on
        this instance), so draws stay bit-identical to the method
        calls this wrapper makes — callers must preserve that
        recurrence exactly, never substitute a different generator.
        """
        return self._random

    def lognormal_factor(self, sigma: float) -> float:
        """A multiplicative noise factor with median 1.0.

        Drawn as ``exp(N(0, sigma))``.  ``sigma`` around 0.01-0.05
        models quiet bare-metal hosts; the CCA/FVP layer uses larger
        values to reproduce the paper's longer whiskers.
        """
        if sigma < 0:
            raise ValueError(f"sigma must be >= 0, got {sigma}")
        if sigma == 0:
            return 1.0
        return math.exp(self._random.gauss(0.0, sigma))

    def exponential(self, mean: float) -> float:
        """An exponential draw with the given mean (for network delays)."""
        if mean <= 0:
            raise ValueError(f"mean must be > 0, got {mean}")
        return self._random.expovariate(1.0 / mean)

    def bernoulli(self, probability: float) -> bool:
        """True with the given probability."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        return self._random.random() < probability

    def __repr__(self) -> str:
        return f"SimRng(seed={self.seed}, label={self.label!r})"
