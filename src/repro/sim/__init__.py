"""Deterministic simulation kernel.

This package provides the foundation every other layer builds on:

- :mod:`repro.sim.clock` — a virtual monotonic clock measured in
  nanoseconds, advanced explicitly by cost models.
- :mod:`repro.sim.ledger` — a cost ledger that attributes advanced time
  to categories (cpu, memory, io, vm exits, ...), so experiments can
  explain *where* overhead comes from.
- :mod:`repro.sim.rng` — seeded random streams with the distributions
  used for realistic jitter (lognormal multiplicative noise).
- :mod:`repro.sim.events` — a minimal discrete-event scheduler used by
  the network / PCS simulation.
- :mod:`repro.sim.trace` — structured span traces recording each
  run's phases (boot/launch/execute/...) with virtual timestamps and
  per-span ledger deltas.
- :mod:`repro.sim.faults` — seeded fault injection (:class:`FaultPlan`)
  with the same label-derived substream scheme as the jitter streams,
  plus the :class:`RetryPolicy` / :class:`FailureLog` machinery the
  failure-handling layers build on.

All timing in the reproduction is virtual: for a fixed seed, every
experiment is reproducible bit-for-bit while still exhibiting realistic
percentile spreads.
"""

from repro.sim.clock import VirtualClock
from repro.sim.faults import (
    FailureLog,
    FaultContext,
    FaultKind,
    FaultPlan,
    RetryPolicy,
)
from repro.sim.ledger import CostCategory, CostLedger
from repro.sim.rng import SimRng
from repro.sim.events import EventLoop, Event
from repro.sim.trace import Span, Trace

__all__ = [
    "VirtualClock",
    "CostCategory",
    "CostLedger",
    "SimRng",
    "EventLoop",
    "Event",
    "Span",
    "Trace",
    "FaultKind",
    "FaultPlan",
    "FaultContext",
    "RetryPolicy",
    "FailureLog",
]
