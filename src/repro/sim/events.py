"""Minimal discrete-event scheduler.

Used by the simulated network (host↔gateway traffic, Intel PCS
round-trips) and by the co-location ablation, where several VMs share a
host and their activity must interleave on one virtual timeline.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import SimulationError
from repro.sim.clock import VirtualClock


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events order by time, then by insertion sequence for stability.
    """

    time_ns: float
    sequence: int
    action: Callable[[], Any] = field(compare=False)
    name: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark this event so the loop skips it."""
        self.cancelled = True


class EventLoop:
    """A priority-queue discrete-event loop over a :class:`VirtualClock`.

    Examples
    --------
    >>> loop = EventLoop()
    >>> fired = []
    >>> _ = loop.schedule(100, lambda: fired.append("a"))
    >>> _ = loop.schedule(50, lambda: fired.append("b"))
    >>> loop.run()
    >>> fired
    ['b', 'a']
    """

    def __init__(self, clock: VirtualClock | None = None) -> None:
        self.clock = clock if clock is not None else VirtualClock()
        self._queue: list[Event] = []
        self._sequence = itertools.count()

    def schedule(self, delay_ns: float, action: Callable[[], Any],
                 name: str = "") -> Event:
        """Schedule ``action`` to run ``delay_ns`` after the current time."""
        if not delay_ns >= 0:
            raise SimulationError(f"cannot schedule event {delay_ns!r} ns in the past")
        event = Event(
            time_ns=self.clock.now() + delay_ns,
            sequence=next(self._sequence),
            action=action,
            name=name,
        )
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(self, time_ns: float, action: Callable[[], Any],
                    name: str = "") -> Event:
        """Schedule ``action`` at an absolute virtual time."""
        if time_ns < self.clock.now():
            raise SimulationError(
                f"cannot schedule at {time_ns} ns, clock is at {self.clock.now()} ns"
            )
        event = Event(
            time_ns=time_ns,
            sequence=next(self._sequence),
            action=action,
            name=name,
        )
        heapq.heappush(self._queue, event)
        return event

    def pending(self) -> int:
        """Number of not-yet-cancelled events in the queue."""
        return sum(1 for event in self._queue if not event.cancelled)

    def step(self) -> Event | None:
        """Run the next event, advancing the clock to it.

        Returns the event run, or ``None`` if the queue was empty.
        """
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.clock.advance_to(event.time_ns)
            event.action()
            return event
        return None

    def run(self, until_ns: float | None = None, max_events: int = 1_000_000) -> int:
        """Run events until the queue drains or ``until_ns`` is reached.

        Returns the number of events executed.  ``max_events`` guards
        against runaway self-rescheduling loops.
        """
        executed = 0
        while self._queue and executed < max_events:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if until_ns is not None and head.time_ns > until_ns:
                break
            if self.step() is not None:
                executed += 1
        if executed >= max_events:
            raise SimulationError(f"event loop exceeded {max_events} events")
        if until_ns is not None:
            self.clock.advance_to(until_ns)
        return executed


class LeanEventQueue:
    """A bare-tuple event heap for million-event simulations.

    :class:`EventLoop` pays an :class:`Event` object, dataclass
    comparisons, and a clock sync per event — fine for network hops,
    too heavy for the cluster engine, which pushes several events per
    request across sweeps of 10^6 requests.  This queue stores plain
    ``(time_ns, seq, kind, payload)`` tuples: ordering is (time,
    insertion sequence) — the same stable contract as
    :class:`EventLoop` — and ``seq`` is unique, so ``kind``/``payload``
    are never compared.  There is no cancellation; consumers mark
    state on the payload and skip stale entries on pop, which costs
    nothing on the heap.
    """

    __slots__ = ("_heap", "_seq")

    def __init__(self) -> None:
        self._heap: list[tuple] = []
        self._seq = 0

    def push(self, time_ns: float, kind: int, payload) -> None:
        """Schedule ``(kind, payload)`` at absolute virtual ``time_ns``."""
        self._seq += 1
        heapq.heappush(self._heap, (time_ns, self._seq, kind, payload))

    def pop(self) -> tuple:
        """The earliest ``(time_ns, seq, kind, payload)`` tuple."""
        return heapq.heappop(self._heap)

    def peek_time_ns(self) -> float | None:
        """Virtual time of the next event, or None when empty."""
        return self._heap[0][0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
