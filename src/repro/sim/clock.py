"""Virtual monotonic clock.

All timings in the reproduction are simulated.  A :class:`VirtualClock`
holds the current virtual time in nanoseconds and only moves forward.
Components that model costs call :meth:`VirtualClock.advance` with the
nanoseconds their operation takes; measurement code brackets a region
with :meth:`VirtualClock.now` calls, exactly as wall-clock measurement
code would with ``time.monotonic_ns``.
"""

from __future__ import annotations

from repro.errors import ClockError

NANOS_PER_SECOND = 1_000_000_000
NANOS_PER_MILLI = 1_000_000
NANOS_PER_MICRO = 1_000


class VirtualClock:
    """A monotonic, explicitly-advanced nanosecond clock.

    Parameters
    ----------
    start_ns:
        Initial virtual time.  Defaults to 0.

    Examples
    --------
    >>> clock = VirtualClock()
    >>> t0 = clock.now()
    >>> clock.advance(1_500)
    >>> clock.now() - t0
    1500.0
    """

    __slots__ = ("_now_ns",)

    def __init__(self, start_ns: float = 0.0) -> None:
        if start_ns < 0:
            raise ClockError(f"clock cannot start at negative time {start_ns}")
        self._now_ns = float(start_ns)

    def now(self) -> float:
        """Return the current virtual time in nanoseconds."""
        return self._now_ns

    def now_seconds(self) -> float:
        """Return the current virtual time in seconds."""
        return self._now_ns / NANOS_PER_SECOND

    def advance(self, delta_ns: float) -> float:
        """Move the clock forward by ``delta_ns`` and return the new time.

        Raises
        ------
        ClockError
            If ``delta_ns`` is negative (the clock is monotonic) or not
            a finite number.
        """
        if not delta_ns >= 0:  # also rejects NaN
            raise ClockError(f"cannot advance clock by {delta_ns!r} ns")
        self._now_ns += float(delta_ns)
        return self._now_ns

    def advance_to(self, deadline_ns: float) -> float:
        """Move the clock forward to an absolute time.

        A deadline in the past is a no-op (the clock never rewinds);
        this mirrors how event loops jump to the next event timestamp.
        """
        if deadline_ns > self._now_ns:
            self._now_ns = float(deadline_ns)
        return self._now_ns

    def __repr__(self) -> str:
        return f"VirtualClock(now={self._now_ns:.0f}ns)"


def ns_to_ms(ns: float) -> float:
    """Convert nanoseconds to milliseconds."""
    return ns / NANOS_PER_MILLI


def ns_to_seconds(ns: float) -> float:
    """Convert nanoseconds to seconds."""
    return ns / NANOS_PER_SECOND


def seconds_to_ns(seconds: float) -> float:
    """Convert seconds to nanoseconds."""
    return seconds * NANOS_PER_SECOND


def ms_to_ns(ms: float) -> float:
    """Convert milliseconds to nanoseconds."""
    return ms * NANOS_PER_MILLI


def us_to_ns(us: float) -> float:
    """Convert microseconds to nanoseconds."""
    return us * NANOS_PER_MICRO
