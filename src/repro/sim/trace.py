"""Structured run tracing: where virtual time goes inside a run.

A :class:`Trace` is an ordered list of :class:`Span` records, each
covering one phase of a trial (``boot``, ``launch``, ``execute``,
``attest``, ...).  A span carries its start/end virtual timestamps and
the cost-ledger delta charged while it was open, so a trace answers
both "how long did each phase take" and "which cost categories were
charged inside it" — the per-phase visibility the figure harnesses
(notably Fig. 5's attestation phases) report from.

Spans never overlap at the same level: root spans partition the run,
so the sum of their ledger deltas equals the run's total ledger.
Phase-internal detail goes into *child* spans (opened while a parent
span is active), which nest under the parent and are excluded from
the root-level sum.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator

from repro.errors import SimulationError
from repro.sim.ledger import CostLedger

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.guestos.context import ExecContext


@dataclass(slots=True)
class Span:
    """One traced phase of a run.

    ``breakdown`` maps cost-category names (the :class:`CostCategory`
    values, e.g. ``"cpu"``) to the nanoseconds charged to them while
    the span was open — already JSON-shaped.
    """

    name: str
    start_ns: float
    end_ns: float
    breakdown: dict[str, float] = field(default_factory=dict)
    parent: str | None = None

    @property
    def duration_ns(self) -> float:
        """Virtual time covered by this span."""
        return self.end_ns - self.start_ns

    @property
    def ledger_ns(self) -> float:
        """Total nanoseconds charged inside this span."""
        return sum(self.breakdown.values())

    def to_dict(self) -> dict[str, Any]:
        """JSON-able form (what ``report.trace_payload`` dumps)."""
        return {
            "name": self.name,
            "parent": self.parent,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "duration_ns": self.duration_ns,
            "breakdown": dict(self.breakdown),
        }


def _breakdown_delta(before: CostLedger, after: CostLedger) -> dict[str, float]:
    """Per-category charges accrued between two ledger snapshots."""
    earlier = dict(before.breakdown())
    delta: dict[str, float] = {}
    for category, nanos in after.breakdown().items():
        diff = nanos - earlier.get(category, 0.0)
        if diff > 0:
            delta[category.value] = diff
    return delta


@dataclass(slots=True)
class Trace:
    """An ordered collection of spans attached to one run."""

    spans: list[Span] = field(default_factory=list)
    _open: list[str] = field(default_factory=list, repr=False)

    def __len__(self) -> int:
        return len(self.spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self.spans)

    @contextmanager
    def span(self, name: str, ctx: "ExecContext"):
        """Bracket a phase on ``ctx``'s clock and ledger.

        Spans opened while another span is active become children of
        that span (``parent`` set), keeping root spans a partition of
        the run.
        """
        parent = self._open[-1] if self._open else None
        start = ctx.clock.now()
        before = ctx.ledger.copy()
        self._open.append(name)
        try:
            yield self
        finally:
            self._open.pop()
            self.spans.append(Span(
                name=name,
                start_ns=start,
                end_ns=ctx.clock.now(),
                breakdown=_breakdown_delta(before, ctx.ledger),
                parent=parent,
            ))

    def record(self, name: str, start_ns: float, end_ns: float,
               breakdown: dict[str, float] | None = None,
               parent: str | None = None) -> Span:
        """Append an externally measured span (e.g. host-side boot)."""
        if end_ns < start_ns:
            raise SimulationError(
                f"span {name!r} ends before it starts "
                f"({end_ns} < {start_ns})"
            )
        span = Span(name=name, start_ns=start_ns, end_ns=end_ns,
                    breakdown=dict(breakdown or {}), parent=parent)
        self.spans.append(span)
        return span

    def mark(self, name: str, at_ns: float) -> Span:
        """Append a zero-duration annotation span at ``at_ns``.

        Marks record point events (circuit-breaker state transitions,
        shed decisions) in the same span stream as phases.  They nest
        under the currently open span when there is one, and carry an
        empty breakdown, so they never disturb the root-partition
        invariant (:meth:`ledger_total_ns`).
        """
        parent = self._open[-1] if self._open else None
        return self.record(name, at_ns, at_ns, parent=parent)

    # -- queries -------------------------------------------------------

    def roots(self) -> list[Span]:
        """The top-level spans (those without a parent)."""
        return [span for span in self.spans if span.parent is None]

    def children(self, name: str) -> list[Span]:
        """Spans recorded under the named parent."""
        return [span for span in self.spans if span.parent == name]

    def find(self, name: str) -> Span:
        """The first span with the given name.

        Raises
        ------
        SimulationError
            If no such span was recorded.
        """
        for span in self.spans:
            if span.name == name:
                return span
        raise SimulationError(f"trace has no span named {name!r}")

    def ledger_total_ns(self) -> float:
        """Sum of root-span ledger deltas.

        Root spans partition a run, so for any trace produced by
        :meth:`repro.tee.vm.Vm.run` this equals the run ledger's
        total — the invariant the runner tests pin.
        """
        return sum(span.ledger_ns for span in self.roots())

    def to_list(self) -> list[dict[str, Any]]:
        """JSON-able form: one dict per span, in recording order."""
        return [span.to_dict() for span in self.spans]
