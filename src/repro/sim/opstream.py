"""Batched op streams: the simulation kernel's fast path.

The per-op path charges the ledger one operation at a time — every
charge pays a method-dispatch chain (workload → kernel → context →
ledger/clock), an enum hash, and a noise draw wrapped in Python-level
calls.  At UnixBench scale that is ~3000 charges per trial and the
binding constraint on trials/second (ROADMAP item 4).

This module batches that hot path.  Workload emitters describe work as
an :class:`OpBatch` — an ordered program of *(op sequence, repeat
count)* entries — which the execution context prices once per entry
and folds into its :class:`~repro.sim.ledger.CostLedger` through a
:class:`BatchLedger` in a single merge.

Byte-identity contract
----------------------
Batched execution must be bit-identical to replaying the same ops one
at a time.  Three accumulation orders are load-bearing:

1. **Per-category ledger totals** are left folds over that category's
   charges in global charge order, seeded from the value already in
   the ledger (``((existing + c1) + c2)``, never
   ``existing + (c1 + c2)`` — float addition does not reassociate).
2. **The virtual clock** is a left fold over *all* charges in global
   charge order.
3. **Noise draws** are assigned one per charge, in global charge
   order, from the context's RNG stream.

:func:`accumulate` implements exactly that fold as one tight Python
loop.  It is deliberately *not* vectorised: numpy's reductions use
pairwise summation, which changes rounding and breaks the contract.
numpy (when available) is only used by :class:`CostVector` for
elementwise pricing arithmetic, where IEEE semantics match scalar
Python exactly.
"""

from __future__ import annotations

import math
import random
from itertools import chain, repeat
from typing import Callable, Iterable, NamedTuple, Sequence

from repro.errors import SimulationError
from repro.sim.ledger import CostCategory, CostLedger

try:  # pragma: no cover - exercised indirectly via CostVector
    import numpy as _np
except ImportError:  # pragma: no cover - numpy-less fallback
    _np = None

#: Fixed category order backing :class:`CostVector` slots.
CATEGORIES: tuple[CostCategory, ...] = tuple(CostCategory)
_CATEGORY_INDEX = {category: index for index, category in enumerate(CATEGORIES)}


class Op(NamedTuple):
    """One simulated operation, platform-independent.

    ``kind`` selects the pricing rule (see
    :meth:`repro.guestos.context.ExecContext.price_op`); ``args`` are
    the operation's size parameters.  Ops are value objects — equal
    ops price identically — which is what lets :class:`OpBatch`
    coalesce repeated sequences into *(pattern, count)* entries.
    """

    kind: str
    args: tuple = ()


class OpBatch:
    """An ordered op program: a list of *(op sequence, count)* entries.

    Consecutive identical sequences coalesce automatically, so a
    workload loop that emits the same composite op per iteration
    collapses to a single entry priced once.
    """

    __slots__ = ("entries",)

    def __init__(self) -> None:
        self.entries: list[tuple[tuple[Op, ...], int]] = []

    def add(self, op: Op, count: int = 1) -> None:
        """Append ``count`` repetitions of a single op."""
        self.add_seq((op,), count)

    def add_seq(self, ops: Sequence[Op], count: int = 1) -> None:
        """Append ``count`` repetitions of an op sequence (in order)."""
        if count < 0:
            raise SimulationError(f"negative op count: {count}")
        if count == 0 or not ops:
            return
        ops = tuple(ops)
        if self.entries and self.entries[-1][0] == ops:
            last_ops, last_count = self.entries[-1]
            self.entries[-1] = (last_ops, last_count + count)
        else:
            self.entries.append((ops, count))

    def op_count(self) -> int:
        """Total individual ops described (repetitions expanded)."""
        return sum(len(ops) * count for ops, count in self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    def __bool__(self) -> bool:
        return bool(self.entries)

    def __repr__(self) -> str:
        return f"OpBatch(entries={len(self.entries)}, ops={self.op_count()})"


class CostVector:
    """Per-category cost totals with vectorised elementwise arithmetic.

    A fixed-length vector indexed by :data:`CATEGORIES`, backed by
    numpy when available and a plain list otherwise.  Used for batch
    *pricing* aggregates (raw, pre-noise nanoseconds), where only
    elementwise operations occur — elementwise float math is IEEE-
    identical between numpy and scalar Python, unlike reductions.
    """

    __slots__ = ("_values",)

    def __init__(self) -> None:
        if _np is not None:
            self._values = _np.zeros(len(CATEGORIES), dtype=_np.float64)
        else:
            self._values = [0.0] * len(CATEGORIES)

    def add(self, category: CostCategory, nanos: float) -> None:
        """Accumulate raw nanoseconds for one category."""
        if not nanos >= 0:
            raise SimulationError(f"cannot add {nanos!r} ns to {category}")
        self._values[_CATEGORY_INDEX[category]] += nanos

    def add_scaled(self, other: "CostVector", factor: float) -> None:
        """Accumulate ``other * factor`` elementwise (e.g. a repeated op)."""
        if _np is not None:
            self._values += other._values * factor
        else:
            values, theirs = self._values, other._values
            for index in range(len(values)):
                values[index] += theirs[index] * factor

    def get(self, category: CostCategory) -> float:
        return float(self._values[_CATEGORY_INDEX[category]])

    def total(self) -> float:
        """Sum of all slots (reporting only — not byte-stable math)."""
        return float(sum(self._values))

    def as_mapping(self) -> dict[CostCategory, float]:
        """Non-zero slots as a category → nanoseconds mapping."""
        return {
            category: float(self._values[index])
            for index, category in enumerate(CATEGORIES)
            if self._values[index]
        }


#: One repetition's charges: ordered (category, raw pre-noise ns) pairs.
ChargePattern = tuple[tuple[CostCategory, float], ...]


#: 2*pi, matching the constant ``random.py`` uses for Box-Muller.
_TWOPI = 2.0 * math.pi


def accumulate(
    program: Iterable[tuple[ChargePattern, int]],
    sim_mult: float,
    run_noise: float,
    sigma: float,
    rng: "random.Random",
    initial: Callable[[CostCategory], float],
    now: float,
) -> tuple[list[tuple[CostCategory, float]], float, float]:
    """Run a charge program; the byte-identity kernel.

    ``program`` yields *(pattern, count)* entries; each pattern is the
    ordered charge list of one repetition, with raw (pre-multiplier)
    nanoseconds.  ``sim_mult`` and ``run_noise`` are applied as two
    separate multiplications, left to right, exactly like the per-op
    ``charge`` — pre-combining them into one factor would reassociate
    the product and change rounding.  ``sigma`` is the per-op noise
    sigma (one ``exp(gauss(0, sigma))`` draw per charge when
    positive); the draws come from ``rng``, a ``random.Random``
    instance.  ``initial`` reads the existing ledger value of a
    category, and ``now`` is the clock's current reading.

    The Gaussian draw is ``random.Random.gauss`` inlined: the same
    Box-Muller recurrence, the same ``math`` functions, and the same
    ``gauss_next`` pair cache (read from ``rng`` on entry, synced back
    on exit) — bit-identical to calling the method, at less than half
    the cost, which is what makes the batch path fast at all.  The
    cache sync means batched and per-op draws interleave freely on
    one stream.

    Returns ``(items, now, total)`` where ``items`` lists the touched
    categories in first-charge order with their new running totals,
    ``now`` is the final clock value, and ``total`` is the charged
    sum.  ``items`` and ``now`` are bit-identical to per-op charging;
    ``total`` is a flat left fold over all charges and may differ in
    the last ulp from summing per-op *return values* (which group
    charges per composite op) — no serialized artifact consumes it.

    The inner loop is sequential by contract (see module docstring):
    per-category values and the clock accumulate as left folds in
    global charge order, exactly as the per-op path does.
    """
    exp = math.exp
    log = math.log
    sqrt = math.sqrt
    cos = math.cos
    sin = math.sin
    random_ = rng.random
    nxt = rng.gauss_next
    order: list[CostCategory] = []
    index_of: dict[CostCategory, int] = {}
    values: list[float] = []
    total = 0.0
    try:
        for pattern, count in program:
            if count <= 0 or not pattern:
                continue
            compiled: list[tuple[int, float]] = []
            for category, raw in pattern:
                base = raw * sim_mult * run_noise
                if not base >= 0:
                    raise SimulationError(
                        f"cannot charge {raw!r} ns to {category}")
                index = index_of.get(category)
                if index is None:
                    index = index_of[category] = len(order)
                    order.append(category)
                    values.append(initial(category))
                compiled.append((index, base))
            if sigma > 0.0:
                # Box-Muller yields draws in (cos, sin) pairs; the loops
                # below are unrolled two charges per trigonometric pair so
                # the straight-line body skips the per-charge pair-cache
                # branch.  Draw order is unchanged — cos first, sin second,
                # odd tails stash the sin half in ``nxt`` — so the stream
                # stays bit-identical to calling ``Random.gauss`` per charge.
                if len(compiled) == 1:
                    index, base = compiled[0]
                    acc = values[index]
                    remaining = count
                    if nxt is not None:
                        charged = base * exp(0.0 + nxt * sigma)
                        nxt = None
                        acc += charged
                        now += charged
                        total += charged
                        remaining -= 1
                    for _ in range(remaining // 2):
                        x2pi = random_() * _TWOPI
                        g2rad = sqrt(-2.0 * log(1.0 - random_()))
                        charged = base * exp(0.0 + cos(x2pi) * g2rad * sigma)
                        acc += charged
                        now += charged
                        total += charged
                        charged = base * exp(0.0 + sin(x2pi) * g2rad * sigma)
                        acc += charged
                        now += charged
                        total += charged
                    if remaining & 1:
                        x2pi = random_() * _TWOPI
                        g2rad = sqrt(-2.0 * log(1.0 - random_()))
                        charged = base * exp(0.0 + cos(x2pi) * g2rad * sigma)
                        nxt = sin(x2pi) * g2rad
                        acc += charged
                        now += charged
                        total += charged
                    values[index] = acc
                else:
                    stream = iter(chain.from_iterable(
                        repeat(compiled, count)))
                    remaining = count * len(compiled)
                    if nxt is not None:
                        index, base = next(stream)
                        charged = base * exp(0.0 + nxt * sigma)
                        nxt = None
                        values[index] += charged
                        now += charged
                        total += charged
                        remaining -= 1
                    # zip consumes left to right (guaranteed), pairing
                    # consecutive charges with one Box-Muller pair each
                    for (index, base), (index2, base2) in zip(stream, stream):
                        x2pi = random_() * _TWOPI
                        g2rad = sqrt(-2.0 * log(1.0 - random_()))
                        charged = base * exp(0.0 + cos(x2pi) * g2rad * sigma)
                        values[index] += charged
                        now += charged
                        total += charged
                        charged = base2 * exp(0.0 + sin(x2pi) * g2rad * sigma)
                        values[index2] += charged
                        now += charged
                        total += charged
                    if remaining & 1:
                        # zip above pulled (and dropped) the odd final
                        # charge before stopping; it is always the last
                        # charge of the last repetition
                        index, base = compiled[-1]
                        x2pi = random_() * _TWOPI
                        g2rad = sqrt(-2.0 * log(1.0 - random_()))
                        charged = base * exp(0.0 + cos(x2pi) * g2rad * sigma)
                        nxt = sin(x2pi) * g2rad
                        values[index] += charged
                        now += charged
                        total += charged
            else:
                # no noise draw at sigma == 0 (mirrors
                # SimRng.lognormal_factor); still a sequential fold —
                # repeated addition does not reassociate to
                # multiplication in floats
                if len(compiled) == 1:
                    index, base = compiled[0]
                    acc = values[index]
                    for _ in range(count):
                        acc += base
                        now += base
                        total += base
                    values[index] = acc
                else:
                    for _ in range(count):
                        for index, base in compiled:
                            values[index] += base
                            now += base
                            total += base
    finally:
        rng.gauss_next = nxt
    return list(zip(order, values)), now, total


class BatchLedger:
    """Stages a charge program and folds it into a ledger in one merge.

    Binds the accumulate kernel to a concrete context: the target
    :class:`~repro.sim.ledger.CostLedger`, the virtual clock, the
    platform's simulator multiplier, the run's noise factor, the
    per-op noise sigma and the noise stream's ``random.Random``.
    :meth:`run` executes the program and commits per-category totals
    with a single :meth:`CostLedger.apply_batch` call and a single
    exact clock jump — thousands of charges, one merge.
    """

    __slots__ = ("ledger", "clock", "sim_mult", "run_noise", "sigma", "rng")

    def __init__(self, ledger: CostLedger, clock, sim_mult: float,
                 run_noise: float, sigma: float,
                 rng: random.Random) -> None:
        self.ledger = ledger
        self.clock = clock
        self.sim_mult = sim_mult
        self.run_noise = run_noise
        self.sigma = sigma
        self.rng = rng

    def run(self, program: Iterable[tuple[ChargePattern, int]]) -> float:
        """Execute ``program``; returns total charged nanoseconds."""
        items, now, total = accumulate(
            program, self.sim_mult, self.run_noise, self.sigma, self.rng,
            self.ledger.get, self.clock.now(),
        )
        self.ledger.apply_batch(items)
        # advance_to assigns the fold's exact final value; advancing by
        # (now - start) instead would round differently
        self.clock.advance_to(now)
        return total
