"""Cost ledger: attributes virtual time to cost categories.

Every nanosecond a simulated operation takes is charged to a
:class:`CostCategory`.  Experiments use the ledger to explain *where*
TEE overhead comes from (e.g. the paper attributes TDX's iostress
penalty to bounce-buffer copies, and UnixBench slowdowns to frequent
TDVMCALL/VMEXIT events).
"""

from __future__ import annotations

import enum
from collections.abc import Iterator, Mapping

from repro.errors import SimulationError


class CostCategory(enum.Enum):
    """Where simulated time is spent.

    Members hash by identity (they are singletons and plain ``Enum``
    equality already is identity); the default ``Enum.__hash__`` is a
    Python-level call that dominates dict lookups on the charge path.
    """

    __hash__ = object.__hash__

    CPU = "cpu"                    # pure computation
    MEM_ALLOC = "mem_alloc"        # allocation (incl. GC pressure)
    MEM_ACCESS = "mem_access"      # loads/stores beyond cache
    IO_READ = "io_read"            # block-device reads
    IO_WRITE = "io_write"          # block-device writes
    SYSCALL = "syscall"            # guest kernel entry/exit
    VM_TRANSITION = "vm_transition"  # TDCALL/VMEXIT/RMM-call style world switches
    BOUNCE_BUFFER = "bounce_buffer"  # TDX shared-memory copy for DMA
    CRYPTO = "crypto"              # attestation crypto, memory-encryption extra work
    NETWORK = "network"            # simulated network latency (e.g. Intel PCS)
    STARTUP = "startup"            # runtime/VM bootstrap (excluded from ratios)
    SIMULATOR = "simulator"        # FVP simulation layer overhead (CCA only)
    OTHER = "other"


class CostLedger:
    """Accumulates per-category nanosecond charges.

    The ledger is additive and supports merging, making it easy to roll
    per-operation ledgers up into per-run and per-experiment totals.

    Examples
    --------
    >>> ledger = CostLedger()
    >>> ledger.charge(CostCategory.CPU, 100.0)
    >>> ledger.charge(CostCategory.CPU, 50.0)
    >>> ledger.total()
    150.0
    """

    __slots__ = ("_charges",)

    def __init__(self) -> None:
        self._charges: dict[CostCategory, float] = {}

    def charge(self, category: CostCategory, nanos: float) -> None:
        """Record ``nanos`` of time spent in ``category``.

        Raises
        ------
        SimulationError
            If ``nanos`` is negative or not finite.
        """
        if not nanos >= 0:
            raise SimulationError(f"cannot charge {nanos!r} ns to {category}")
        self._charges[category] = self._charges.get(category, 0.0) + float(nanos)

    def get(self, category: CostCategory) -> float:
        """Total nanoseconds charged to ``category`` (0.0 if none)."""
        return self._charges.get(category, 0.0)

    def total(self) -> float:
        """Total nanoseconds across all categories."""
        return sum(self._charges.values())

    def total_excluding(self, *categories: CostCategory) -> float:
        """Total nanoseconds across all categories except the given ones.

        Used to compute execution time net of runtime bootstrap, which
        the paper explicitly excludes from its measurements.
        """
        excluded = set(categories)
        return sum(
            nanos for cat, nanos in self._charges.items() if cat not in excluded
        )

    def merge(self, other: "CostLedger") -> None:
        """Add every charge from ``other`` into this ledger."""
        for category, nanos in other._charges.items():
            self._charges[category] = self._charges.get(category, 0.0) + nanos

    def apply_batch(self, items) -> None:
        """Overwrite per-category totals with batch-fold results.

        ``items`` is an ordered iterable of ``(category, new_total)``
        pairs as produced by :func:`repro.sim.opstream.accumulate`:
        each total is the left fold of that category's charges over the
        existing ledger value, so assignment (not addition) keeps the
        result bit-identical to charging per op.  Categories already
        present keep their dict position; new ones append in
        first-charge order — the same insertion order per-op charging
        would produce.
        """
        charges = self._charges
        for category, total in items:
            if not total >= 0:
                raise SimulationError(
                    f"cannot set {total!r} ns for {category}")
            charges[category] = total

    def breakdown(self) -> Mapping[CostCategory, float]:
        """A read-only snapshot of per-category totals."""
        return dict(self._charges)

    def fractions(self) -> dict[CostCategory, float]:
        """Per-category share of the total (empty dict if total is 0)."""
        total = self.total()
        if total <= 0:
            return {}
        return {cat: nanos / total for cat, nanos in self._charges.items()}

    def dominant(self) -> CostCategory | None:
        """The category with the largest charge, or None when empty."""
        if not self._charges:
            return None
        return max(self._charges, key=lambda cat: self._charges[cat])

    def emit(self, sink, prefix: str = "ledger") -> None:
        """Feed per-category totals into a metrics sink.

        ``sink`` is duck-typed against the :mod:`repro.obs` sink
        protocol (``sink.count(name, nanos)``); this layer must not
        import upward.  Categories are emitted sorted by name so the
        set of charged categories — not charge order — determines the
        emission sequence.  Sinks providing ``count_many`` receive the
        whole breakdown in one coalesced call (same totals, same
        order, fewer dispatches).
        """
        items = [
            (f"{prefix}.{category.value}", self._charges[category])
            for category in sorted(self._charges, key=lambda cat: cat.value)
        ]
        count_many = getattr(sink, "count_many", None)
        if count_many is not None:
            count_many(items)
        else:
            for name, nanos in items:
                sink.count(name, nanos)

    def copy(self) -> "CostLedger":
        """An independent copy of this ledger."""
        clone = CostLedger()
        clone._charges = dict(self._charges)
        return clone

    def __iter__(self) -> Iterator[tuple[CostCategory, float]]:
        return iter(self._charges.items())

    def __len__(self) -> int:
        return len(self._charges)

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{cat.value}={nanos:.0f}" for cat, nanos in sorted(
                self._charges.items(), key=lambda item: -item[1]
            )
        )
        return f"CostLedger({parts})"
