"""Command-line interface.

``confbench`` drives the tool from a shell:

- ``confbench platforms`` — list configured execution platforms
- ``confbench invoke -f cpustress -l python -p tdx [--normal]`` — run
  a function and print per-trial times + perf metrics
- ``confbench compare -f iostress -l lua -p tdx`` — secure/normal ratio
- ``confbench serve --port 8080`` — start the REST gateway
- ``confbench experiment fig3|fig4|fig5|fig6|fig7|fig8|fig9|fig10|dbms`` —
  regenerate a paper artifact and print it
- ``confbench profile -f cpustress -l python -p tdx`` — run one
  fig6-style cell and print the virtual-time attribution (per
  CostCategory; totals the run ledger), or flamegraph collapsed stacks
- ``confbench trace export -f cpustress -l python`` — export the
  cell's span trees as Chrome trace-event JSON (Perfetto-loadable),
  JSONL span records, or collapsed stacks
- ``confbench lint [paths...]`` — static analysis enforcing the
  simulation contract (determinism, layering, trial purity)

Exit-code convention, shared by every subcommand: ``0`` success /
clean, ``1`` findings or a failed check (including any
:class:`~repro.errors.ConfBenchError`), ``2`` usage error (bad flags,
missing paths — argparse's convention).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.core.api import ConfBench
from repro.core.rest import RestServer
from repro.errors import ConfBenchError


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="confbench",
        description="Easy evaluation of confidential virtual machines "
                    "(TDX / SEV-SNP / CCA, simulated substrates).",
    )
    parser.add_argument("--seed", type=int, default=0,
                        help="simulation seed (default 0)")
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("platforms", help="list execution platforms")
    commands.add_parser("workloads", help="list available FaaS workloads")

    invoke = commands.add_parser("invoke", help="run one function")
    invoke.add_argument("-f", "--function", required=True)
    invoke.add_argument("-l", "--language", required=True)
    invoke.add_argument("-p", "--platform", default="tdx")
    invoke.add_argument("--normal", action="store_true",
                        help="use the non-confidential VM")
    invoke.add_argument("-t", "--trials", type=int, default=3)
    invoke.add_argument("--args", type=json.loads, default={},
                        help="JSON dict of function arguments")

    compare = commands.add_parser("compare",
                                  help="secure/normal overhead ratio")
    compare.add_argument("-f", "--function", required=True)
    compare.add_argument("-l", "--language", required=True)
    compare.add_argument("-p", "--platform", default="tdx")
    compare.add_argument("-t", "--trials", type=int, default=10)
    compare.add_argument("--args", type=json.loads, default={})
    compare.add_argument("--save", metavar="FILE",
                         help="append the trial records to a JSONL archive")
    compare.add_argument("--label", default="run",
                         help="label for the archived run (default: run)")

    diff = commands.add_parser("diff",
                               help="compare two archived runs' ratios")
    diff.add_argument("archive", help="JSONL archive written by --save")
    diff.add_argument("before", help="label of the baseline run")
    diff.add_argument("after", help="label of the new run")

    serve = commands.add_parser("serve", help="start the REST gateway")
    serve.add_argument("--port", type=int, default=8080)

    experiment = commands.add_parser("experiment",
                                     help="regenerate a paper artifact")
    experiment.add_argument("name", choices=(
        "fig3", "fig4", "fig5", "fig5x", "fig6", "fig7", "fig8", "fig9",
        "fig10",
        "dbms",
        "all",
    ))
    experiment.add_argument("--quick", action="store_true",
                            help="reduced grid for a fast look")
    experiment.add_argument("-j", "--jobs", type=int, default=1,
                            help="worker processes for trial execution "
                                 "(default 1 = serial; results are "
                                 "bit-identical either way)")
    experiment.add_argument("-t", "--trials", type=int, default=None,
                            help="override the artifact's trial count")
    experiment.add_argument("--cache", metavar="FILE",
                            help="JSONL result cache keyed by trial spec "
                                 "hash; repeated runs skip finished trials")
    experiment.add_argument("--resume", metavar="FILE",
                            help="durable trial journal: completed trials "
                                 "are appended as they finish and replayed "
                                 "on re-run, so a killed sweep resumes "
                                 "where it stopped (results bit-identical "
                                 "to an uninterrupted run)")
    experiment.add_argument("--trial-budget", type=float, default=None,
                            metavar="NS",
                            help="virtual-time watchdog: degrade any trial "
                                 "whose total simulated time exceeds this "
                                 "many nanoseconds")
    experiment.add_argument("--watchdog", type=float, default=None,
                            metavar="SECONDS",
                            help="wall-clock heartbeat for --jobs N: "
                                 "respawn the worker pool when no trial "
                                 "completes within this many seconds")
    experiment.add_argument("--trace-out", metavar="FILE",
                            help="dump every trial's span trace as JSON")
    experiment.add_argument("--metrics-out", metavar="FILE",
                            help="write the runner's metrics-registry "
                                 "snapshot as canonical JSON (byte-identical "
                                 "between serial and --jobs N runs)")
    experiment.add_argument("--chrome-trace", metavar="FILE",
                            help="export every trial's span tree as Chrome "
                                 "trace-event JSON (chrome://tracing / "
                                 "Perfetto)")
    experiment.add_argument("--faults", metavar="SPEC",
                            help="seeded fault injection, e.g. "
                                 "'vm-crash=0.05,pcs-timeout=0.1,seed=7'; "
                                 "kinds: vm-crash, slow-trial, "
                                 "attest-transient, pcs-timeout, relay-drop "
                                 "(plus seed= and slow-factor=)")
    experiment.set_defaults(subparser=experiment)

    def add_cell_options(sub) -> None:
        """The fig6-style single-cell options ``profile`` and ``trace
        export`` share: one (workload, language, platform) cell, both
        secure and normal sides, N matched trials."""
        sub.add_argument("-f", "--function", default="cpustress",
                         help="FaaS workload name (default cpustress)")
        sub.add_argument("-l", "--language", default="python",
                         help="language runtime (default python)")
        sub.add_argument("-p", "--platform", default="tdx")
        sub.add_argument("-t", "--trials", type=int, default=3)
        sub.add_argument("-j", "--jobs", type=int, default=1,
                         help="worker processes (output is bit-identical "
                              "to a serial run)")
        sub.add_argument("--out", metavar="FILE",
                         help="write the report here instead of stdout")
        sub.add_argument("--metrics-out", metavar="FILE",
                         help="also write the metrics-registry snapshot "
                              "as canonical JSON")

    profile = commands.add_parser(
        "profile",
        help="virtual-time profile of one workload cell",
        description="Run one fig6-style cell (secure + normal, matched "
                    "trials) and fold its span trees into a per-"
                    "CostCategory attribution table — whose TOTAL equals "
                    "the runs' ledger total — or flamegraph collapsed "
                    "stacks.")
    add_cell_options(profile)
    profile.add_argument("--format", choices=("text", "json", "chrome",
                                              "collapsed"),
                         default="text",
                         help="text = attribution table, json = full "
                              "profile, chrome = trace-event JSON, "
                              "collapsed = flamegraph stacks")
    profile.set_defaults(subparser=profile)

    trace = commands.add_parser(
        "trace", help="span-trace tooling")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    trace_export = trace_sub.add_parser(
        "export",
        help="export one cell's span trees",
        description="Run one fig6-style cell and export its span trees; "
                    "chrome output loads in chrome://tracing and Perfetto.")
    add_cell_options(trace_export)
    trace_export.add_argument("--format", choices=("text", "json", "chrome",
                                                   "collapsed"),
                              default="chrome",
                              help="chrome = trace-event JSON (default), "
                                   "json = span records (JSONL), text = "
                                   "readable span listing, collapsed = "
                                   "flamegraph stacks")
    trace_export.set_defaults(subparser=trace_export)

    lint = commands.add_parser(
        "lint",
        help="static analysis: determinism, layering, trial purity",
        description="Run the AST-based contract checks over the source "
                    "tree; exits 0 when clean (against the baseline, if "
                    "given), 1 on findings, 2 on usage errors.")
    lint.add_argument("paths", nargs="*", metavar="PATH",
                      help="files or directories to lint "
                           "(default: src/repro)")
    lint.add_argument("--format", choices=("text", "json", "sarif"),
                      default="text",
                      help="report format (default text); sarif emits "
                           "SARIF 2.1.0 for CI code-scanning upload")
    lint.add_argument("--baseline", metavar="FILE",
                      help="JSON baseline of grandfathered findings; "
                           "only new findings fail the run")
    lint.add_argument("--write-baseline", metavar="FILE",
                      help="write the current findings out as a baseline "
                           "and exit 0")
    lint.add_argument("--rules", metavar="LIST",
                      help="comma-separated pass subset: determinism, "
                           "layering, purity, hotpath, taint, lock "
                           "(default: all)")
    lint.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                      help="run passes in N worker processes; output is "
                           "byte-identical to a serial run")
    lint.add_argument("--cache", metavar="FILE", dest="lint_cache",
                      help="per-file analysis cache keyed by content "
                           "hashes; safe to delete at any time")
    lint.set_defaults(subparser=lint)
    return parser


def _cmd_platforms(args) -> int:
    bench = ConfBench(seed=args.seed)
    for info in bench.platforms():
        simulated = " (simulated)" if info["is_simulated"] else ""
        attest = "attestation" if info["supports_attestation"] else "no attestation"
        print(f"{info['name']:8s} {info['display_name']:16s}{simulated} "
              f"host={info['host']} ports={info['ports']} [{attest}]")
    return 0


def _cmd_workloads(args) -> int:
    from repro.workloads.faas import all_workloads

    for workload in all_workloads():
        print(f"{workload.name:14s} [{workload.trait.value:6s}] "
              f"{workload.description}  ({workload.origin})")
    return 0


def _cmd_invoke(args) -> int:
    bench = ConfBench(seed=args.seed)
    bench.upload(args.function)
    records = bench.invoke(
        args.function, args.language, platform=args.platform,
        secure=not args.normal, args=args.args, trials=args.trials,
    )
    for record in records:
        print(f"trial {record.trial}: {record.elapsed_ns / 1e6:10.3f} ms  "
              f"instructions={record.perf.get('instructions', 'n/a')}")
    print(json.dumps(records[0].output, indent=2, default=str))
    return 0


def _cmd_compare(args) -> int:
    bench = ConfBench(seed=args.seed)
    bench.upload(args.function)
    secure = bench.invoke(args.function, args.language,
                          platform=args.platform, secure=True,
                          args=args.args, trials=args.trials)
    normal = bench.invoke(args.function, args.language,
                          platform=args.platform, secure=False,
                          args=args.args, trials=args.trials)
    from repro.core.results import summarize_ratio

    summary = summarize_ratio(secure, normal)
    print(f"{args.function} / {args.language} on {args.platform}:")
    print(f"  secure mean : {summary.secure_mean_ns / 1e6:10.3f} ms")
    print(f"  normal mean : {summary.normal_mean_ns / 1e6:10.3f} ms")
    print(f"  ratio       : {summary.ratio:10.3f} "
          f"({summary.overhead_percent:+.1f}% overhead)")
    if args.save:
        from repro.core.resultstore import ResultStore

        ResultStore(args.save).save(args.label, args.seed, secure + normal)
        print(f"  archived    : {len(secure) + len(normal)} records -> "
              f"{args.save} (label {args.label!r})")
    return 0


def _cmd_diff(args) -> int:
    from repro.core.resultstore import ResultStore, compare_runs

    store = ResultStore(args.archive)
    drift = compare_runs(store.run(args.before), store.run(args.after))
    print(f"ratio drift {args.before!r} -> {args.after!r}:")
    for (function, language, platform), entry in drift.items():
        print(f"  {function}/{language or 'native'} on {platform}: "
              f"{entry['before']:.3f} -> {entry['after']:.3f} "
              f"({entry['drift_percent']:+.1f}%)")
    return 0


def _cmd_serve(args) -> int:
    bench = ConfBench(seed=args.seed)
    server = RestServer(bench.gateway, port=args.port)
    print(f"ConfBench gateway on http://127.0.0.1:{server.port} "
          "(Ctrl-C to stop)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        server.server_close()
    return 0


def _writable_file_arg(args, value: str | None, flag: str) -> None:
    """Usage-error (exit 2) unless ``value``'s parent dir exists."""
    if value is None:
        return
    parent = Path(value).resolve().parent
    if not parent.is_dir():
        args.subparser.error(
            f"argument {flag}: directory does not exist: {parent}")
    if Path(value).is_dir():
        args.subparser.error(f"argument {flag}: is a directory: {value}")


def _run_cell(args):
    """Run one fig6-style cell; returns the runner holding its history.

    The plan is the standard matrix for a single (platform, workload,
    runtime) combination — secure and normal sides, matched trials —
    executed serially or with ``--jobs N`` (bit-identical either way).
    """
    from repro.core.runner import TrialPlan, TrialRunner

    if args.trials < 1:
        args.subparser.error(
            f"argument -t/--trials: must be >= 1, got {args.trials}")
    if args.jobs < 1:
        args.subparser.error(
            f"argument -j/--jobs: must be >= 1, got {args.jobs}")
    runner = TrialRunner(jobs=args.jobs)
    plan = TrialPlan.matrix(
        kind="faas",
        platforms=(args.platform,),
        workloads=(args.function,),
        runtimes=(args.language,),
        trials=args.trials,
        seed=args.seed,
    )
    runner.run(plan)
    return runner


def _emit_report(args, text: str) -> None:
    """Write a report to ``--out`` (if given) or stdout, then the
    optional ``--metrics-out`` snapshot."""
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {len(text)} bytes -> {args.out}")
    else:
        print(text, end="" if text.endswith("\n") else "\n")


def _emit_metrics(args, runner) -> None:
    if getattr(args, "metrics_out", None):
        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            handle.write(runner.metrics.to_json())
        print(f"wrote metrics snapshot -> {args.metrics_out}")


def _cmd_profile(args) -> int:
    from repro.obs.export import TraceExporter
    from repro.obs.profile import Profile

    _writable_file_arg(args, args.out, "--out")
    _writable_file_arg(args, args.metrics_out, "--metrics-out")
    runner = _run_cell(args)
    if args.format == "chrome":
        text = TraceExporter.from_history(runner.history).to_chrome_json()
    else:
        profile = Profile.from_history(runner.history)
        if args.format == "json":
            text = profile.to_json()
        elif args.format == "collapsed":
            text = profile.render_collapsed() + "\n"
        else:
            text = profile.render_table(
                f"{args.function}/{args.language} on {args.platform} — "
                f"virtual-time attribution over {profile.trials} trial(s)")
    _emit_report(args, text)
    _emit_metrics(args, runner)
    return 0


def _cmd_trace(args) -> int:
    from repro.obs.export import TraceExporter
    from repro.obs.profile import Profile

    _writable_file_arg(args, args.out, "--out")
    _writable_file_arg(args, args.metrics_out, "--metrics-out")
    runner = _run_cell(args)
    exporter = TraceExporter.from_history(runner.history)
    if args.format == "chrome":
        text = exporter.to_chrome_json()
    elif args.format == "json":
        text = exporter.to_jsonl()
    elif args.format == "collapsed":
        text = Profile.from_history(runner.history).render_collapsed() + "\n"
    else:
        lines = [
            f"{record['trial']}: {record['name']} "
            f"[{record['start_ns']:.0f}..{record['end_ns']:.0f}] "
            f"parent={record['parent'] or '-'} "
            f"ledger={sum(record['breakdown'].values()):.0f}ns"
            for record in exporter.span_records()
        ]
        text = "\n".join(lines) + "\n"
    _emit_report(args, text)
    _emit_metrics(args, runner)
    return 0


def _cmd_lint(args) -> int:
    from repro.analysis import Baseline, run_lint
    from repro.analysis.engine import PASS_SCHEMA, RULE_REGISTRY

    if args.rules:
        names = [name.strip() for name in args.rules.split(",") if name.strip()]
        unknown = [name for name in names if name not in RULE_REGISTRY]
        if unknown:
            args.subparser.error(
                f"argument --rules: unknown pass(es) {', '.join(unknown)}; "
                f"choose from {', '.join(sorted(RULE_REGISTRY))}")
        rules = [RULE_REGISTRY[name]() for name in names]
    else:
        rules = [cls() for cls in RULE_REGISTRY.values()]
    if args.jobs < 1:
        args.subparser.error("argument --jobs: must be >= 1")

    paths = [Path(p) for p in (args.paths or ["src/repro"])]
    for path in paths:
        if not path.exists():
            args.subparser.error(f"path does not exist: {path}")

    baseline = None
    if args.baseline:
        baseline_path = Path(args.baseline)
        if not baseline_path.is_file():
            args.subparser.error(
                f"argument --baseline: no such file: {baseline_path}")
        baseline = Baseline.load(baseline_path)
    _writable_file_arg(args, args.write_baseline, "--write-baseline")
    _writable_file_arg(args, args.lint_cache, "--cache")

    report = run_lint(
        paths, rules=rules, baseline=baseline, jobs=args.jobs,
        cache_path=Path(args.lint_cache) if args.lint_cache else None)
    if args.write_baseline:
        full = report.findings + report.grandfathered
        Baseline.from_findings(full, passes=PASS_SCHEMA).save(
            Path(args.write_baseline))
        print(f"wrote baseline with {len(full)} finding(s) -> "
              f"{args.write_baseline}")
        return 0
    if args.format == "json":
        print(report.render_json())
    elif args.format == "sarif":
        print(report.render_sarif())
    else:
        print(report.render_text())
    return report.exit_code


def _cmd_experiment(args) -> int:
    from repro import experiments
    from repro.core.runner import TrialRunner

    _writable_file_arg(args, args.cache, "--cache")
    _writable_file_arg(args, args.trace_out, "--trace-out")
    _writable_file_arg(args, args.resume, "--resume")
    _writable_file_arg(args, args.metrics_out, "--metrics-out")
    _writable_file_arg(args, args.chrome_trace, "--chrome-trace")
    if args.trial_budget is not None and args.trial_budget <= 0:
        args.subparser.error(
            f"argument --trial-budget: must be > 0, got {args.trial_budget}")
    if args.watchdog is not None and args.watchdog <= 0:
        args.subparser.error(
            f"argument --watchdog: must be > 0, got {args.watchdog}")
    faults = None
    if args.faults:
        from repro.errors import SimulationError
        from repro.sim.faults import FaultPlan

        try:
            faults = FaultPlan.parse(args.faults)
        except SimulationError as exc:
            args.subparser.error(f"argument --faults: {exc}")
    cache = None
    if args.cache:
        from repro.core.resultstore import SpecResultCache

        cache = SpecResultCache(args.cache)
    journal = None
    if args.resume:
        from repro.core.journal import TrialJournal

        journal = TrialJournal(args.resume)
        if len(journal):
            print(f"resuming from {args.resume}: "
                  f"{len(journal)} journaled trial(s)")
    runner = TrialRunner(jobs=args.jobs, cache=cache, faults=faults,
                         journal=journal,
                         budget_ns=args.trial_budget or 0.0,
                         watchdog_s=args.watchdog)

    def trials(default: int) -> int:
        return args.trials if args.trials is not None else default

    quick = args.quick
    small_workloads = ("cpustress", "memstress", "iostress", "logging",
                       "factors", "filesystem")
    small_langs = ("python", "lua", "go")
    status = 0
    if args.name == "all":
        from repro.experiments.summary import run_evaluation

        summary = run_evaluation(seed=args.seed, quick=args.quick,
                                 runner=runner)
        print(summary.render())
        status = 0 if summary.all_hold else 1
    elif args.name == "fig3":
        result = experiments.run_fig3(
            seed=args.seed,
            image_count=10 if quick else 40,
            trials=trials(1 if quick else 3),
            runner=runner,
        )
        print(result.render())
    elif args.name == "fig4":
        result = experiments.run_fig4(seed=args.seed,
                                      trials=trials(3 if quick else 5),
                                      runner=runner)
        print(result.render())
    elif args.name == "fig5":
        result = experiments.run_fig5(seed=args.seed,
                                      trials=trials(3 if quick else 10),
                                      runner=runner)
        print(result.render())
    elif args.name == "fig5x":
        result = experiments.run_fig5_service(
            seed=args.seed,
            trials=trials(1 if quick else 3),
            runner=runner)
        print(result.render())
    elif args.name == "fig6":
        result = experiments.run_fig6(
            seed=args.seed,
            workloads=small_workloads if quick else
            experiments.fig6_heatmap.FIGURE_WORKLOAD_NAMES,
            languages=small_langs if quick else
            experiments.fig6_heatmap.RUNTIME_NAMES,
            trials=trials(3 if quick else 10),
            runner=runner,
        )
        print(result.render())
    elif args.name == "fig7":
        result = experiments.run_fig7(
            seed=args.seed,
            workloads=small_workloads if quick else
            experiments.fig6_heatmap.FIGURE_WORKLOAD_NAMES,
            languages=small_langs if quick else
            experiments.fig6_heatmap.RUNTIME_NAMES,
            trials=trials(3 if quick else 10),
            runner=runner,
        )
        print(result.render())
    elif args.name == "fig9":
        result = experiments.run_fig9(
            seed=args.seed,
            trials=trials(1),
            hosts=4 if quick else 8,
            requests=8_000 if quick else 120_000,
            rate_rps=1_400.0 if quick else 2_400.0,
            runner=runner,
        )
        print(result.render())
        status = 0 if result.conserved else 1
    elif args.name == "fig10":
        result = experiments.run_fig10(
            seed=args.seed,
            trials=trials(1),
            vms=2 if quick else 3,
            accesses=4 if quick else 6,
            runner=runner,
        )
        print(result.render())
        status = 0 if result.reconciled else 1
    elif args.name == "fig8":
        result = experiments.run_fig8(
            seed=args.seed,
            workloads=small_workloads if quick else
            experiments.fig6_heatmap.FIGURE_WORKLOAD_NAMES,
            trials=trials(10),
            runner=runner,
        )
        print(result.render())
    else:
        result = experiments.run_dbms_table(
            seed=args.seed, size=20 if quick else 100,
            trials=trials(2 if quick else 3),
            runner=runner,
        )
        print(result.render())
    if args.trace_out:
        from repro.experiments.report import dump_traces

        count = dump_traces(runner.history, args.trace_out)
        print(f"wrote {count} trial traces -> {args.trace_out}")
    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            handle.write(runner.metrics.to_json())
        print(f"wrote metrics snapshot -> {args.metrics_out}")
    if args.chrome_trace:
        from repro.obs.export import TraceExporter

        count = TraceExporter.from_history(runner.history).write_chrome(
            args.chrome_trace)
        print(f"wrote {count} trace events -> {args.chrome_trace}")
    if journal is not None:
        print(f"journal: {journal.replayed} replayed, "
              f"{journal.recorded} recorded -> {args.resume}")
        journal.close()
    return status


_COMMANDS = {
    "platforms": _cmd_platforms,
    "workloads": _cmd_workloads,
    "invoke": _cmd_invoke,
    "compare": _cmd_compare,
    "serve": _cmd_serve,
    "diff": _cmd_diff,
    "experiment": _cmd_experiment,
    "profile": _cmd_profile,
    "trace": _cmd_trace,
    "lint": _cmd_lint,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ConfBenchError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # stdout was closed early (e.g. piped through `head`); exit
        # quietly like any well-behaved unix tool
        sys.stderr.close()
        return 0


if __name__ == "__main__":
    sys.exit(main())
