"""Network interface cost model.

Used for simulated off-box traffic: the gateway↔host hop and —
importantly for the attestation experiment — the TDX verifier's
round-trips to the Intel Provisioning Certification Service (PCS) to
fetch TCB info and CRLs, which dominate the TDX "check" latency in the
paper's Fig. 5.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import HardwareError
from repro.sim.rng import SimRng


@dataclass
class NicModel:
    """Latency + bandwidth model for one network path.

    Parameters
    ----------
    rtt_ms:
        Round-trip time of the path in milliseconds.
    bandwidth_mbps:
        Path bandwidth in MiB/s.
    jitter_sigma:
        Lognormal sigma applied to each transfer's latency.
    """

    rtt_ms: float = 0.2
    bandwidth_mbps: float = 1200.0
    jitter_sigma: float = 0.08

    def __post_init__(self) -> None:
        if self.rtt_ms < 0:
            raise HardwareError(f"negative RTT: {self.rtt_ms}")
        if self.bandwidth_mbps <= 0:
            raise HardwareError(f"bandwidth must be positive: {self.bandwidth_mbps}")

    def round_trip(self, payload_bytes: int, rng: SimRng | None = None) -> float:
        """Virtual nanoseconds for one request/response exchange."""
        if payload_bytes < 0:
            raise HardwareError(f"negative payload: {payload_bytes}")
        bytes_per_ns = self.bandwidth_mbps * (1024 ** 2) / 1e9
        base = self.rtt_ms * 1e6 + payload_bytes / bytes_per_ns
        if rng is not None:
            base *= rng.lognormal_factor(self.jitter_sigma)
        return base


def lan_path() -> NicModel:
    """The gateway↔host LAN hop (sub-millisecond)."""
    return NicModel(rtt_ms=0.2, bandwidth_mbps=1200.0, jitter_sigma=0.05)


def wan_path() -> NicModel:
    """A WAN path to an external service such as the Intel PCS."""
    return NicModel(rtt_ms=38.0, bandwidth_mbps=120.0, jitter_sigma=0.18)
