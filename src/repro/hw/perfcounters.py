"""Hardware performance counters.

ConfBench integrates with ``perf stat``; the reproduction models the
counters ``perf`` would report (instructions, cycles, cache references
and misses, branch misses, context switches, page faults).  The TEE
layer also exposes TEE-specific counters (e.g. TDCALL/VMEXIT counts)
through the same structure under dedicated fields.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.errors import HardwareError


@dataclass
class PerfCounters:
    """A bundle of monotonically increasing event counters."""

    instructions: int = 0
    cycles: int = 0
    cache_references: int = 0
    cache_misses: int = 0
    branch_instructions: int = 0
    branch_misses: int = 0
    context_switches: int = 0
    page_faults: int = 0
    # TEE-specific events (zero on normal VMs):
    vm_transitions: int = 0     # TDCALL / VMEXIT / RMM calls
    bounce_buffer_bytes: int = 0

    def add(self, other: "PerfCounters") -> None:
        """Accumulate every counter from ``other`` into this bundle."""
        for name in _COUNTER_FIELDS:
            setattr(self, name, getattr(self, name) + getattr(other, name))

    def add_events(self, events, count: int = 1) -> None:
        """Accumulate ``(name, delta)`` pairs, each multiplied by ``count``.

        The batched kernel prices one repetition of an op into event
        deltas and applies them for all repetitions in one call; the
        arithmetic is integer, so the result equals ``count`` per-op
        bumps exactly.
        """
        if count < 0:
            raise HardwareError(f"negative event count: {count}")
        for name, delta in events:
            if delta < 0:
                raise HardwareError(
                    f"counter {name} delta is negative: {delta}")
            setattr(self, name, getattr(self, name) + delta * count)

    def nonzero_events(self) -> tuple[tuple[str, int], ...]:
        """The nonzero counters as ``(name, value)`` pairs.

        Pricing helpers run ops against a scratch bundle and capture
        the resulting deltas in this compact form for
        :meth:`add_events`.
        """
        return tuple(
            (name, value)
            for name in _COUNTER_FIELDS
            if (value := getattr(self, name))
        )

    def snapshot(self) -> "PerfCounters":
        """An independent copy (use with :meth:`delta` to bracket a run)."""
        return PerfCounters(**self.as_dict())

    def delta(self, earlier: "PerfCounters") -> "PerfCounters":
        """Counters accumulated since ``earlier`` was snapshotted.

        Raises
        ------
        HardwareError
            If any counter went backwards, which would indicate a
            modelling bug (counters are monotonic).
        """
        result = PerfCounters()
        for name in _COUNTER_FIELDS:
            diff = getattr(self, name) - getattr(earlier, name)
            if diff < 0:
                raise HardwareError(f"counter {name} went backwards by {-diff}")
            setattr(result, name, diff)
        return result

    def as_dict(self) -> dict[str, int]:
        """All counters as a plain dict (for JSON piggybacking)."""
        return {name: getattr(self, name) for name in _COUNTER_FIELDS}

    def emit(self, sink, prefix: str = "perf") -> None:
        """Feed every counter into a metrics sink.

        ``sink`` is duck-typed against the :mod:`repro.obs` sink
        protocol (``sink.count(name, value)``) — this layer sits below
        the observability package and must not import it.  Counter
        order is the field declaration order, which is fixed, so
        emission is deterministic.  Sinks providing ``count_many``
        receive all counters in one coalesced call.
        """
        items = [(f"{prefix}.{name}", value)
                 for name, value in self.as_dict().items()]
        count_many = getattr(sink, "count_many", None)
        if count_many is not None:
            count_many(items)
        else:
            for name, value in items:
                sink.count(name, value)

    def cache_miss_rate(self) -> float:
        """Cache misses per reference (0.0 when no references)."""
        if self.cache_references == 0:
            return 0.0
        return self.cache_misses / self.cache_references

    def ipc(self) -> float:
        """Instructions per cycle (0.0 when no cycles)."""
        if self.cycles == 0:
            return 0.0
        return self.instructions / self.cycles


#: Counter names in declaration order, resolved once — ``fields()``
#: rebuilds its tuple on every call, which shows up on the hot path.
_COUNTER_FIELDS: tuple[str, ...] = tuple(
    field_info.name for field_info in fields(PerfCounters))
