"""CPU and cache cost models.

The CPU model converts abstract instruction counts into virtual
nanoseconds using frequency and an instructions-per-cycle figure, with
a last-level-cache model supplying miss penalties.  The cache model is
deliberately simple — a working-set-derived hit rate — but it is enough
to reproduce the paper's observation that secure VMs sometimes see
*more* cache hits than normal VMs (TDXdown-style caching variations),
which makes a few heatmap cells dip below 1.0.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import HardwareError
from repro.hw.perfcounters import PerfCounters


@dataclass
class CacheModel:
    """Last-level cache behaviour.

    Parameters
    ----------
    size_bytes:
        LLC capacity.
    hit_latency_ns:
        Latency of a hit.
    miss_penalty_ns:
        Extra latency of a miss (DRAM access).
    base_hit_rate:
        Hit rate when the working set fits in cache.
    """

    size_bytes: int = 32 * 1024 * 1024
    hit_latency_ns: float = 0.25
    miss_penalty_ns: float = 65.0
    base_hit_rate: float = 0.995

    def hit_rate(self, working_set_bytes: int) -> float:
        """Effective hit rate for a given working set size.

        Once the working set exceeds capacity the hit rate decays
        smoothly toward a floor — a classic cache-occupancy curve.
        """
        if working_set_bytes <= 0:
            return self.base_hit_rate
        pressure = working_set_bytes / self.size_bytes
        if pressure <= 1.0:
            return self.base_hit_rate
        floor = 0.35
        decayed = self.base_hit_rate * math.exp(-(pressure - 1.0) / 4.0)
        return max(floor, decayed)

    def access_cost_ns(self, references: int, hit_rate: float) -> float:
        """Total latency for ``references`` accesses at ``hit_rate``."""
        if references < 0:
            raise HardwareError(f"negative cache references: {references}")
        hits = references * hit_rate
        misses = references - hits
        return hits * self.hit_latency_ns + misses * (
            self.hit_latency_ns + self.miss_penalty_ns
        )


@dataclass
class CpuModel:
    """A core's execution cost model.

    Parameters
    ----------
    frequency_ghz:
        Clock frequency; one cycle takes ``1 / frequency_ghz`` ns.
    base_ipc:
        Sustained instructions per cycle when not memory bound.
    cache:
        The LLC model used for memory-reference latency.
    branch_fraction:
        Fraction of instructions that are branches.
    branch_miss_rate:
        Mispredict rate among branches.
    """

    frequency_ghz: float = 3.0
    base_ipc: float = 2.2
    cache: CacheModel | None = None
    branch_fraction: float = 0.12
    branch_miss_rate: float = 0.015
    branch_miss_penalty_cycles: float = 14.0

    def __post_init__(self) -> None:
        if self.frequency_ghz <= 0:
            raise HardwareError(f"frequency must be positive: {self.frequency_ghz}")
        if self.base_ipc <= 0:
            raise HardwareError(f"IPC must be positive: {self.base_ipc}")
        if self.cache is None:
            self.cache = CacheModel()

    @property
    def cycle_ns(self) -> float:
        """Duration of one cycle in nanoseconds."""
        return 1.0 / self.frequency_ghz

    def execute_split(
        self,
        instructions: int,
        counters: PerfCounters,
        memory_references: int = 0,
        working_set_bytes: int = 0,
        hit_rate_override: float | None = None,
    ) -> tuple[float, float, int]:
        """Cost of executing ``instructions`` with the given memory mix.

        Updates ``counters`` (instructions, cycles, cache stats, branch
        stats) and returns ``(compute_ns, memory_ns, cache_misses)`` so
        the TEE layer can tax compute and memory traffic differently
        (memory encryption/integrity applies to cache-line fills, not
        to register arithmetic).

        ``hit_rate_override`` lets the TEE layer perturb caching
        behaviour (secure VMs can exhibit *different* — occasionally
        better — cache locality, per the paper §IV-D).
        """
        if instructions < 0:
            raise HardwareError(f"negative instruction count: {instructions}")
        if memory_references < 0:
            raise HardwareError(f"negative memory references: {memory_references}")

        compute_cycles = instructions / self.base_ipc
        branches = int(instructions * self.branch_fraction)
        branch_misses = int(branches * self.branch_miss_rate)
        compute_cycles += branch_misses * self.branch_miss_penalty_cycles
        compute_ns = compute_cycles * self.cycle_ns

        hit_rate = (
            hit_rate_override
            if hit_rate_override is not None
            else self.cache.hit_rate(working_set_bytes)
        )
        hit_rate = min(1.0, max(0.0, hit_rate))
        memory_ns = self.cache.access_cost_ns(memory_references, hit_rate)
        misses = int(memory_references * (1.0 - hit_rate))

        counters.instructions += instructions
        counters.cycles += int((compute_ns + memory_ns) / self.cycle_ns)
        counters.branch_instructions += branches
        counters.branch_misses += branch_misses
        counters.cache_references += memory_references
        counters.cache_misses += misses
        return compute_ns, memory_ns, misses

    def execute(
        self,
        instructions: int,
        counters: PerfCounters,
        memory_references: int = 0,
        working_set_bytes: int = 0,
        hit_rate_override: float | None = None,
    ) -> float:
        """Total cost of an execution block (see :meth:`execute_split`)."""
        compute_ns, memory_ns, _ = self.execute_split(
            instructions,
            counters,
            memory_references=memory_references,
            working_set_bytes=working_set_bytes,
            hit_rate_override=hit_rate_override,
        )
        return compute_ns + memory_ns
