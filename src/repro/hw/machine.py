"""Machine assembly and testbed factories.

A :class:`Machine` bundles the component models into one host.  Factory
functions reproduce the paper's experimental settings (§IV-A):

- TDX host: 8-core Intel Xeon Gold 5515+ @ 3.20 GHz, 64 GiB RAM.
- SEV-SNP host: 16-core AMD EPYC 9124 @ 3.0 GHz, 64 GiB RAM.
- CCA host: ARM FVP model (the fixed virtual platform the paper uses,
  since no CCA silicon was commercially available).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.cpu import CacheModel, CpuModel
from repro.hw.disk import DiskModel
from repro.hw.memory import MemoryModel
from repro.hw.nic import NicModel, lan_path
from repro.hw.perfcounters import PerfCounters


@dataclass
class MachineSpec:
    """Static description of a host machine."""

    name: str
    vendor: str
    cores: int
    frequency_ghz: float
    ram_gib: int
    description: str = ""


@dataclass
class Machine:
    """A simulated host: component models plus live perf counters."""

    spec: MachineSpec
    cpu: CpuModel
    memory: MemoryModel
    disk: DiskModel
    nic: NicModel
    counters: PerfCounters = field(default_factory=PerfCounters)

    def reset_counters(self) -> None:
        """Zero the host's performance counters."""
        self.counters = PerfCounters()


def xeon_gold_5515() -> Machine:
    """The paper's Intel TDX host (Xeon Gold 5515+, 8 cores, 3.2 GHz)."""
    spec = MachineSpec(
        name="xeon-gold-5515",
        vendor="intel",
        cores=8,
        frequency_ghz=3.2,
        ram_gib=64,
        description="Intel Xeon Gold 5515+ (TDX host, Ubuntu 24.04, kernel 6.8)",
    )
    cpu = CpuModel(
        frequency_ghz=3.2,
        base_ipc=2.4,
        cache=CacheModel(size_bytes=22 * 1024 * 1024, miss_penalty_ns=62.0),
    )
    return Machine(
        spec=spec,
        cpu=cpu,
        memory=MemoryModel(bandwidth_gbps=24.0),
        disk=DiskModel(),
        nic=lan_path(),
    )


def epyc_9124() -> Machine:
    """The paper's AMD SEV-SNP host (EPYC 9124, 16 cores, 3.0 GHz)."""
    spec = MachineSpec(
        name="epyc-9124",
        vendor="amd",
        cores=16,
        frequency_ghz=3.0,
        ram_gib=64,
        description="AMD EPYC 9124 (SEV-SNP host, Ubuntu 22.04, kernel 6.5)",
    )
    cpu = CpuModel(
        frequency_ghz=3.0,
        base_ipc=2.3,
        cache=CacheModel(size_bytes=64 * 1024 * 1024, miss_penalty_ns=70.0),
    )
    return Machine(
        spec=spec,
        cpu=cpu,
        memory=MemoryModel(bandwidth_gbps=22.0),
        disk=DiskModel(),
        nic=lan_path(),
    )


def fvp_model() -> Machine:
    """The ARM FVP host used for CCA.

    ARM claims the FVP runs "at speeds comparable to the real
    hardware"; the paper finds the simulation layer nevertheless
    dominates CCA's measured overheads.  The raw machine here is an
    ordinary ARM-server-like model — the FVP slowdown and variance are
    applied by :class:`repro.tee.fvp.FvpSimulator` on top.
    """
    spec = MachineSpec(
        name="arm-fvp",
        vendor="arm",
        cores=4,
        frequency_ghz=2.6,
        ram_gib=16,
        description="ARM FVP fixed virtual platform (CCA realms, simulated)",
    )
    cpu = CpuModel(
        frequency_ghz=2.6,
        base_ipc=2.0,
        cache=CacheModel(size_bytes=8 * 1024 * 1024, miss_penalty_ns=85.0),
    )
    return Machine(
        spec=spec,
        cpu=cpu,
        memory=MemoryModel(bandwidth_gbps=14.0),
        disk=DiskModel(
            read_latency_us=110.0,
            write_latency_us=45.0,
            read_bandwidth_mbps=1600.0,
            write_bandwidth_mbps=1200.0,
        ),
        nic=lan_path(),
    )


MACHINE_FACTORIES = {
    "xeon-gold-5515": xeon_gold_5515,
    "epyc-9124": epyc_9124,
    "arm-fvp": fvp_model,
}


def machine_by_name(name: str) -> Machine:
    """Build a fresh machine from a registered testbed name."""
    try:
        factory = MACHINE_FACTORIES[name]
    except KeyError:
        known = ", ".join(sorted(MACHINE_FACTORIES))
        raise KeyError(f"unknown machine {name!r}; known: {known}") from None
    return factory()
