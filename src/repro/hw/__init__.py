"""Simulated machine substrate.

Models the hardware the paper's testbed provides: CPUs with a cache
hierarchy and performance counters, memory with an inline encryption
engine, block storage, and a NIC.  All models are cost models: they
translate abstract operations (instructions, bytes moved) into virtual
nanoseconds and performance-counter increments.

Factory helpers build machines shaped like the paper's hosts:

- :func:`repro.hw.machine.xeon_gold_5515` — the 8-core Intel TDX host.
- :func:`repro.hw.machine.epyc_9124` — the 16-core AMD SEV-SNP host.
- :func:`repro.hw.machine.fvp_model` — the ARM FVP simulated platform.
"""

from repro.hw.perfcounters import PerfCounters
from repro.hw.cpu import CacheModel, CpuModel
from repro.hw.memory import MemoryModel
from repro.hw.disk import DiskModel
from repro.hw.nic import NicModel
from repro.hw.machine import Machine, MachineSpec, xeon_gold_5515, epyc_9124, fvp_model

__all__ = [
    "PerfCounters",
    "CacheModel",
    "CpuModel",
    "MemoryModel",
    "DiskModel",
    "NicModel",
    "Machine",
    "MachineSpec",
    "xeon_gold_5515",
    "epyc_9124",
    "fvp_model",
]
