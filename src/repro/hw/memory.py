"""Memory subsystem cost model.

Models allocation and bulk-copy costs plus an inline memory-encryption
engine.  Second-generation TEEs (TDX, SEV-SNP) encrypt VM memory with a
hardware engine whose cost is small but nonzero; integrity protection
(TDX's MAC tree, SNP's RMP checks) adds a little more on writes.  The
TEE layer decides *whether* encryption/integrity apply; this model
decides *how much* they cost per byte.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import HardwareError
from repro.hw.perfcounters import PerfCounters

PAGE_SIZE = 4096


@dataclass
class MemoryModel:
    """Cost model for DRAM traffic and page management.

    Parameters
    ----------
    bandwidth_gbps:
        Sustained copy bandwidth in GiB/s.
    alloc_page_ns:
        Cost of making one new page available (zeroing + bookkeeping).
    encryption_overhead_per_byte_ns:
        Extra cost per byte when the inline AES engine is active.
    integrity_overhead_per_byte_ns:
        Extra cost per written byte when integrity protection is active.
    """

    bandwidth_gbps: float = 20.0
    alloc_page_ns: float = 220.0
    encryption_overhead_per_byte_ns: float = 0.004
    integrity_overhead_per_byte_ns: float = 0.008

    def __post_init__(self) -> None:
        if self.bandwidth_gbps <= 0:
            raise HardwareError(f"bandwidth must be positive: {self.bandwidth_gbps}")

    def _copy_ns(self, nbytes: int) -> float:
        bytes_per_ns = self.bandwidth_gbps * (1024 ** 3) / 1e9
        return nbytes / bytes_per_ns

    def allocate(
        self,
        nbytes: int,
        counters: PerfCounters,
        encrypted: bool = False,
        integrity: bool = False,
    ) -> float:
        """Cost of allocating (and faulting in) ``nbytes``.

        Touching fresh pages causes page faults; encrypted VMs pay the
        engine cost on the implicit zeroing writes; integrity-protected
        VMs additionally pay MAC/RMP maintenance.
        """
        if nbytes < 0:
            raise HardwareError(f"negative allocation: {nbytes}")
        pages = (nbytes + PAGE_SIZE - 1) // PAGE_SIZE
        cost = pages * self.alloc_page_ns
        if encrypted:
            cost += nbytes * self.encryption_overhead_per_byte_ns
        if integrity:
            cost += nbytes * self.integrity_overhead_per_byte_ns
        counters.page_faults += pages
        return cost

    def copy(
        self,
        nbytes: int,
        counters: PerfCounters,
        encrypted: bool = False,
        integrity: bool = False,
    ) -> float:
        """Cost of a bulk copy of ``nbytes`` (memcpy-style)."""
        if nbytes < 0:
            raise HardwareError(f"negative copy size: {nbytes}")
        cost = self._copy_ns(nbytes)
        if encrypted:
            cost += nbytes * self.encryption_overhead_per_byte_ns
        if integrity:
            cost += nbytes * self.integrity_overhead_per_byte_ns
        counters.cache_references += nbytes // 64
        return cost
