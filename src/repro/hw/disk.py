"""Block-device cost model.

A simple NVMe-like device: fixed per-operation latency plus a
bandwidth term.  The TEE layer wraps this — TDX routes DMA through
bounce buffers in shared memory (extra copies), which is the paper's
explanation for TDX's iostress penalty.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import HardwareError


@dataclass
class DiskModel:
    """Cost model for block reads/writes.

    Parameters
    ----------
    read_latency_us / write_latency_us:
        Per-operation fixed latency in microseconds.
    read_bandwidth_mbps / write_bandwidth_mbps:
        Streaming bandwidth in MiB/s.
    """

    read_latency_us: float = 80.0
    write_latency_us: float = 25.0
    read_bandwidth_mbps: float = 3200.0
    write_bandwidth_mbps: float = 2400.0

    def __post_init__(self) -> None:
        for name in ("read_bandwidth_mbps", "write_bandwidth_mbps"):
            if getattr(self, name) <= 0:
                raise HardwareError(f"{name} must be positive")

    def read(self, nbytes: int) -> float:
        """Virtual nanoseconds to read ``nbytes``."""
        if nbytes < 0:
            raise HardwareError(f"negative read size: {nbytes}")
        bytes_per_ns = self.read_bandwidth_mbps * (1024 ** 2) / 1e9
        return self.read_latency_us * 1_000 + nbytes / bytes_per_ns

    def write(self, nbytes: int) -> float:
        """Virtual nanoseconds to write ``nbytes``."""
        if nbytes < 0:
            raise HardwareError(f"negative write size: {nbytes}")
        bytes_per_ns = self.write_bandwidth_mbps * (1024 ** 2) / 1e9
        return self.write_latency_us * 1_000 + nbytes / bytes_per_ns
