"""HTTP client for the REST interface.

Talks the versioned ``/v1`` API and understands the uniform error
envelope (``{"error": {"code", "message"}}``); it remains compatible
with pre-envelope servers whose errors were bare strings.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Any

from repro.errors import GatewayError


class ConfBenchClient:
    """Talks to a :class:`repro.core.rest.RestServer` over HTTP."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8080,
                 timeout: float = 30.0) -> None:
        self.base_url = f"http://{host}:{port}"
        self.timeout = timeout

    @staticmethod
    def _error_detail(body: bytes) -> str:
        """Extract the human message from an error response body."""
        try:
            error = json.loads(body).get("error", "")
        except (json.JSONDecodeError, AttributeError):
            return ""
        if isinstance(error, dict):   # the v1 envelope
            code = error.get("code", "")
            message = error.get("message", "")
            return f"[{code}] {message}" if code else str(message)
        return str(error or "")

    def _request(self, method: str, path: str,
                 payload: dict | None = None) -> Any:
        url = f"{self.base_url}{path}"
        data = json.dumps(payload).encode() if payload is not None else None
        request = urllib.request.Request(
            url, data=data, method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                return json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            try:
                detail = self._error_detail(exc.read())
            except OSError:
                detail = ""
            raise GatewayError(
                f"{method} {path} failed with {exc.code}: {detail}"
            ) from exc
        except urllib.error.URLError as exc:
            raise GatewayError(f"cannot reach gateway at {url}: {exc}") from exc

    # -- API methods ----------------------------------------------------

    def health(self) -> dict:
        """GET /v1/health."""
        return self._request("GET", "/v1/health")

    def platforms(self) -> list[dict]:
        """GET /v1/platforms."""
        return self._request("GET", "/v1/platforms")

    def functions(self) -> list[str]:
        """GET /v1/functions."""
        return self._request("GET", "/v1/functions")

    def upload(self, name: str,
               languages: list[str] | None = None) -> dict:
        """POST /v1/functions."""
        payload: dict[str, Any] = {"name": name}
        if languages is not None:
            payload["languages"] = languages
        return self._request("POST", "/v1/functions", payload)

    def invoke(self, function: str, language: str, platform: str = "tdx",
               secure: bool = True, args: dict | None = None,
               trials: int | None = None) -> list[dict]:
        """POST /v1/invoke; returns per-trial records."""
        payload: dict[str, Any] = {
            "function": function,
            "language": language,
            "platform": platform,
            "secure": secure,
            "args": args if args is not None else {},
        }
        if trials is not None:
            payload["trials"] = trials
        return self._request("POST", "/v1/invoke", payload)

    def metrics(self) -> dict:
        """GET /v1/metrics — the gateway's metrics-registry snapshot."""
        return self._request("GET", "/v1/metrics")

    def stats(self) -> dict:
        """GET /v1/stats — the gateway's supervision counters."""
        return self._request("GET", "/v1/stats")
