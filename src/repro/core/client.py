"""HTTP client for the REST interface.

Talks the versioned ``/v1`` API and understands the uniform error
envelope (``{"error": {"code", "message"}}``); it remains compatible
with pre-envelope servers whose errors were bare strings.

A 429 (``overloaded``) response is honored, not just reported: the
client waits out the envelope's ``retry_after_ns`` hint (capped at
:attr:`max_retry_wait_s`) and retries up to :attr:`overload_retries`
times before surfacing :class:`~repro.errors.OverloadedError`.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any

from repro.errors import GatewayError, OverloadedError


class ConfBenchClient:
    """Talks to a :class:`repro.core.rest.RestServer` over HTTP."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8080,
                 timeout: float = 30.0, overload_retries: int = 2,
                 max_retry_wait_s: float = 1.0) -> None:
        if overload_retries < 0:
            raise GatewayError(
                f"overload_retries must be >= 0, got {overload_retries}")
        self.base_url = f"http://{host}:{port}"
        self.timeout = timeout
        #: extra attempts after a 429 before giving up
        self.overload_retries = overload_retries
        #: wall-clock cap on honoring one retry_after_ns hint
        self.max_retry_wait_s = max_retry_wait_s

    @staticmethod
    def _error_detail(body: bytes) -> str:
        """Extract the human message from an error response body."""
        try:
            error = json.loads(body).get("error", "")
        except (json.JSONDecodeError, AttributeError):
            return ""
        if isinstance(error, dict):   # the v1 envelope
            code = error.get("code", "")
            message = error.get("message", "")
            return f"[{code}] {message}" if code else str(message)
        return str(error or "")

    @staticmethod
    def _retry_after_ns(body: bytes) -> float:
        """The 429 envelope's drain-time hint (0.0 when absent)."""
        try:
            error = json.loads(body).get("error", {})
        except (json.JSONDecodeError, AttributeError):
            return 0.0
        if isinstance(error, dict):
            try:
                return max(0.0, float(error.get("retry_after_ns", 0.0)))
            except (TypeError, ValueError):
                return 0.0
        return 0.0

    def _request(self, method: str, path: str,
                 payload: dict | None = None) -> Any:
        url = f"{self.base_url}{path}"
        data = json.dumps(payload).encode() if payload is not None else None
        attempts_left = self.overload_retries
        while True:
            request = urllib.request.Request(
                url, data=data, method=method,
                headers={"Content-Type": "application/json"},
            )
            try:
                with urllib.request.urlopen(request,
                                            timeout=self.timeout) as resp:
                    return json.loads(resp.read())
            except urllib.error.HTTPError as exc:
                try:
                    body = exc.read()
                except OSError:
                    body = b""
                if exc.code == 429:
                    hint_ns = self._retry_after_ns(body)
                    if attempts_left > 0:
                        attempts_left -= 1
                        time.sleep(min(hint_ns / 1e9,
                                       self.max_retry_wait_s))
                        continue
                    raise OverloadedError(
                        f"{method} {path} still overloaded after "
                        f"{self.overload_retries} retries: "
                        f"{self._error_detail(body)}",
                        retry_after_ns=hint_ns,
                    ) from exc
                raise GatewayError(
                    f"{method} {path} failed with {exc.code}: "
                    f"{self._error_detail(body)}"
                ) from exc
            except urllib.error.URLError as exc:
                raise GatewayError(
                    f"cannot reach gateway at {url}: {exc}") from exc

    # -- API methods ----------------------------------------------------

    def health(self) -> dict:
        """GET /v1/health."""
        return self._request("GET", "/v1/health")

    def platforms(self) -> list[dict]:
        """GET /v1/platforms."""
        return self._request("GET", "/v1/platforms")

    def functions(self) -> list[str]:
        """GET /v1/functions."""
        return self._request("GET", "/v1/functions")

    def upload(self, name: str,
               languages: list[str] | None = None) -> dict:
        """POST /v1/functions."""
        payload: dict[str, Any] = {"name": name}
        if languages is not None:
            payload["languages"] = languages
        return self._request("POST", "/v1/functions", payload)

    def invoke(self, function: str, language: str, platform: str = "tdx",
               secure: bool = True, args: dict | None = None,
               trials: int | None = None) -> list[dict]:
        """POST /v1/invoke; returns per-trial records."""
        payload: dict[str, Any] = {
            "function": function,
            "language": language,
            "platform": platform,
            "secure": secure,
            "args": args if args is not None else {},
        }
        if trials is not None:
            payload["trials"] = trials
        return self._request("POST", "/v1/invoke", payload)

    def cluster_run(self, **params: Any) -> dict:
        """POST /v1/cluster/run — run one cluster sweep.

        Keyword parameters mirror the documented body fields
        (``hosts``, ``requests``, ``rate_rps``, ``process``,
        ``secure_fraction``, ``seed``, ``strategy``, ``signed``).  A
        429 while another sweep runs is retried per the client's
        overload policy before surfacing.
        """
        return self._request("POST", "/v1/cluster/run", params)

    def cluster_report(self) -> dict:
        """GET /v1/cluster/report — the last completed sweep."""
        return self._request("GET", "/v1/cluster/report")

    def kbs_release(self, vm_id: str, platform: str = "tdx",
                    key_ids: list[str] | None = None,
                    tamper_evidence: bool = False) -> dict:
        """POST /v1/kbs/release — attestation-gated key release.

        A denial surfaces as :class:`~repro.errors.GatewayError`
        carrying the ``[release_denied]`` envelope detail.
        """
        payload: dict[str, Any] = {"vm_id": vm_id, "platform": platform}
        if key_ids is not None:
            payload["key_ids"] = key_ids
        if tamper_evidence:
            payload["tamper_evidence"] = True
        return self._request("POST", "/v1/kbs/release", payload)

    def metrics(self) -> dict:
        """GET /v1/metrics — the gateway's metrics-registry snapshot."""
        return self._request("GET", "/v1/metrics")

    def stats(self) -> dict:
        """GET /v1/stats — the gateway's supervision counters."""
        return self._request("GET", "/v1/stats")
