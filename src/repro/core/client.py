"""HTTP client for the REST interface."""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Any

from repro.errors import GatewayError


class ConfBenchClient:
    """Talks to a :class:`repro.core.rest.RestServer` over HTTP."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8080,
                 timeout: float = 30.0) -> None:
        self.base_url = f"http://{host}:{port}"
        self.timeout = timeout

    def _request(self, method: str, path: str,
                 payload: dict | None = None) -> Any:
        url = f"{self.base_url}{path}"
        data = json.dumps(payload).encode() if payload is not None else None
        request = urllib.request.Request(
            url, data=data, method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                return json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            try:
                detail = json.loads(exc.read()).get("error", "")
            except (json.JSONDecodeError, OSError):
                detail = ""
            raise GatewayError(
                f"{method} {path} failed with {exc.code}: {detail}"
            ) from exc
        except urllib.error.URLError as exc:
            raise GatewayError(f"cannot reach gateway at {url}: {exc}") from exc

    # -- API methods ----------------------------------------------------

    def health(self) -> dict:
        """GET /health."""
        return self._request("GET", "/health")

    def platforms(self) -> list[dict]:
        """GET /platforms."""
        return self._request("GET", "/platforms")

    def functions(self) -> list[str]:
        """GET /functions."""
        return self._request("GET", "/functions")

    def upload(self, name: str,
               languages: list[str] | None = None) -> dict:
        """POST /functions."""
        payload: dict[str, Any] = {"name": name}
        if languages is not None:
            payload["languages"] = languages
        return self._request("POST", "/functions", payload)

    def invoke(self, function: str, language: str, platform: str = "tdx",
               secure: bool = True, args: dict | None = None,
               trials: int | None = None) -> list[dict]:
        """POST /invoke; returns per-trial records."""
        payload: dict[str, Any] = {
            "function": function,
            "language": language,
            "platform": platform,
            "secure": secure,
            "args": args if args is not None else {},
        }
        if trials is not None:
            payload["trials"] = trials
        return self._request("POST", "/invoke", payload)
