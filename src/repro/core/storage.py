"""The gateway's function database.

§III-C: "the gateway maintains a database of available functions per
supported language".  Users upload either a *registered* workload (by
name, from the built-in suite) or a custom callable; the store tracks
per-language availability, mirroring how each language's VM image
must carry the function file.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import GatewayError, NoSuchFunctionError
from repro.runtimes.registry import RUNTIME_NAMES
from repro.workloads.base import FaasWorkload
from repro.workloads.faas.registry import workload_by_name


@dataclass
class StoredFunction:
    """One uploaded function."""

    name: str
    workload: FaasWorkload
    languages: tuple[str, ...]
    uploads: int = 0

    def supports(self, language: str) -> bool:
        return language in self.languages


@dataclass
class FunctionStore:
    """Name → function mapping with per-language availability."""

    _functions: dict[str, StoredFunction] = field(default_factory=dict)

    def upload_builtin(self, workload_name: str,
                       languages: tuple[str, ...] | None = None) -> StoredFunction:
        """Upload a workload from the built-in suite."""
        workload = workload_by_name(workload_name)
        return self._store(workload, languages)

    def upload_custom(self, workload: FaasWorkload,
                      languages: tuple[str, ...] | None = None) -> StoredFunction:
        """Upload a user-supplied workload object."""
        return self._store(workload, languages)

    def _store(self, workload: FaasWorkload,
               languages: tuple[str, ...] | None) -> StoredFunction:
        langs = tuple(languages) if languages is not None else RUNTIME_NAMES
        unknown = set(langs) - set(RUNTIME_NAMES)
        if unknown:
            raise GatewayError(f"unsupported languages: {sorted(unknown)}")
        existing = self._functions.get(workload.name)
        if existing is not None:
            existing.uploads += 1
            existing.languages = tuple(sorted(set(existing.languages) | set(langs)))
            return existing
        stored = StoredFunction(name=workload.name, workload=workload,
                                languages=langs, uploads=1)
        self._functions[workload.name] = stored
        return stored

    def get(self, name: str) -> StoredFunction:
        """Look up an uploaded function."""
        try:
            return self._functions[name]
        except KeyError:
            raise NoSuchFunctionError(
                f"function {name!r} was never uploaded "
                f"(have: {', '.join(sorted(self._functions)) or 'none'})"
            ) from None

    def require_language(self, name: str, language: str) -> StoredFunction:
        """Look up a function and check the language is available."""
        stored = self.get(name)
        if not stored.supports(language):
            raise GatewayError(
                f"function {name!r} is not available for {language!r} "
                f"(has: {', '.join(stored.languages)})"
            )
        return stored

    def names(self) -> list[str]:
        """All uploaded function names, sorted."""
        return sorted(self._functions)

    def __len__(self) -> int:
        return len(self._functions)
