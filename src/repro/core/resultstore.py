"""Result archive: persist and compare benchmark runs.

The paper releases its datasets alongside the tool; this module is
the repository side of that workflow — invocation records are saved
as JSON-lines with run metadata (seed, version, label), reloaded for
analysis, and two archived runs can be diffed for ratio drift (useful
for regression-tracking TEE stacks across firmware/kernel updates,
exactly the before/after comparison §III-B's firmware anecdote needed).

:class:`SpecResultCache` is the runner-pipeline counterpart: a
spec-hash keyed archive of :class:`~repro.tee.vm.RunResult` payloads,
so re-running an experiment with identical trial specs skips the
completed trials and replays their archived results.
"""

from __future__ import annotations

import json
import os
import tempfile
import warnings
from dataclasses import dataclass
from pathlib import Path

from repro.core.results import InvocationRecord
from repro.errors import GatewayError
from repro.version import __version__


def _atomic_write(path: Path, text: str) -> None:
    """Replace ``path``'s contents crash-safely.

    The text goes to a temporary file in the same directory (so the
    rename cannot cross filesystems), is fsynced, and then atomically
    renamed over the target — a reader never sees a half-written file,
    and a crash mid-write leaves the previous contents intact.
    """
    handle_fd, tmp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.name + ".", suffix=".tmp")
    try:
        with os.fdopen(handle_fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


@dataclass
class ArchivedRun:
    """One saved measurement run."""

    label: str
    seed: int
    version: str
    records: list[InvocationRecord]

    def key_ratios(self) -> dict[tuple[str, str | None, str], float]:
        """Mean secure/normal ratio per (function, language, platform).

        Only keys with trials on both sides appear.
        """
        buckets: dict[tuple, dict[bool, list[float]]] = {}
        for record in self.records:
            key = (record.function, record.language, record.platform)
            buckets.setdefault(key, {True: [], False: []})[
                record.secure
            ].append(record.elapsed_ns)
        ratios = {}
        for key, sides in buckets.items():
            if sides[True] and sides[False]:
                ratios[key] = (
                    sum(sides[True]) / len(sides[True])
                ) / (sum(sides[False]) / len(sides[False]))
        return ratios


class ResultStore:
    """JSON-lines persistence for invocation records.

    Writes are crash-safe (tempfile + atomic rename: a crash mid-save
    never corrupts previously saved runs) and loads are tolerant:
    corrupt or truncated lines — the residue of a crash predating the
    atomic-write scheme, or of external tampering — are skipped with a
    warning instead of making the whole archive unreadable.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        #: human-readable notes about lines skipped by the last load
        self.warnings: list[str] = []

    def save(self, label: str, seed: int,
             records: list[InvocationRecord]) -> None:
        """Append one run (header line + one line per record)."""
        if not records:
            raise GatewayError("refusing to save an empty run")
        existing = (self.path.read_text(encoding="utf-8")
                    if self.path.exists() else "")
        header = {"kind": "run", "label": label, "seed": seed,
                  "version": __version__, "records": len(records)}
        lines = [json.dumps(header)]
        lines.extend(json.dumps({"kind": "record", **record.to_dict()})
                     for record in records)
        _atomic_write(self.path, existing + "\n".join(lines) + "\n")

    def _skip(self, line_number: int, reason: str) -> None:
        message = f"{self.path}:{line_number}: {reason} (line skipped)"
        self.warnings.append(message)
        warnings.warn(message, stacklevel=3)

    def load(self) -> list[ArchivedRun]:
        """All archived runs, in file order.

        Unreadable lines are skipped (with a warning recorded in
        :attr:`warnings`): one corrupt line costs one line of data,
        not the whole archive.
        """
        self.warnings = []
        if not self.path.exists():
            return []
        runs: list[ArchivedRun] = []
        with self.path.open(encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError as exc:
                    self._skip(line_number, f"bad JSON: {exc}")
                    continue
                if not isinstance(payload, dict):
                    self._skip(line_number, "not a JSON object")
                    continue
                if payload.get("kind") == "run":
                    runs.append(ArchivedRun(
                        label=payload.get("label", "?"),
                        seed=payload.get("seed", 0),
                        version=payload.get("version", "?"),
                        records=[],
                    ))
                elif payload.get("kind") == "record":
                    if not runs:
                        self._skip(line_number, "record before any run")
                        continue
                    payload.pop("kind")
                    try:
                        record = InvocationRecord(**payload)
                    except TypeError as exc:
                        self._skip(line_number, f"bad record: {exc}")
                        continue
                    runs[-1].records.append(record)
                else:
                    self._skip(
                        line_number,
                        f"unknown kind {payload.get('kind')!r}")
        return runs

    def run(self, label: str) -> ArchivedRun:
        """One archived run by label (the last with that label)."""
        matches = [run for run in self.load() if run.label == label]
        if not matches:
            raise GatewayError(f"no archived run labelled {label!r}")
        return matches[-1]


class SpecResultCache:
    """Spec-hash keyed JSONL cache of completed trial results.

    Each line is ``{"hash": <spec content hash>, "result": <RunResult
    JSON>}``; the newest entry for a hash wins.  Passed to
    :class:`repro.core.runner.TrialRunner` to make experiment re-runs
    incremental: a trial whose spec hash is already cached is not
    executed again.

    Loading tolerates corrupt or truncated lines (a crashed writer's
    torn tail loses that one entry, not the cache), and :meth:`put`
    rewrites the file atomically so the on-disk cache is never left
    half-written.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        if not self.path.parent.is_dir():
            raise GatewayError(
                f"cache directory does not exist: {self.path.parent}")
        self._entries: dict[str, dict] = {}
        #: hash -> serialised line, kept in sync with ``_entries`` so
        #: :meth:`put` rewrites without re-dumping every payload
        self._lines: dict[str, str] = {}
        self.hits = 0
        self.misses = 0
        #: human-readable notes about lines skipped while loading
        self.warnings: list[str] = []
        if self.path.exists():
            with self.path.open(encoding="utf-8") as handle:
                for line_number, line in enumerate(handle, start=1):
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        payload = json.loads(line)
                    except json.JSONDecodeError as exc:
                        self._skip(line_number, f"bad JSON: {exc}")
                        continue
                    if (not isinstance(payload, dict)
                            or not isinstance(payload.get("hash"), str)
                            or not isinstance(payload.get("result"), dict)):
                        self._skip(line_number, "not a cache entry")
                        continue
                    self._entries[payload["hash"]] = payload["result"]
                    self._lines[payload["hash"]] = line

    def _skip(self, line_number: int, reason: str) -> None:
        message = f"{self.path}:{line_number}: {reason} (entry skipped)"
        self.warnings.append(message)
        warnings.warn(message, stacklevel=3)

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, spec):
        """The archived result for ``spec``, or None on a miss."""
        from repro.tee.vm import RunResult

        payload = self._entries.get(spec.content_hash())
        if payload is None:
            self.misses += 1
            return None
        self.hits += 1
        return RunResult.from_dict(payload)

    def put(self, spec, result) -> None:
        """Archive ``result`` under ``spec``'s content hash.

        The whole cache is rewritten through a tempfile + atomic
        rename, so a crash mid-put leaves the previous cache intact
        (and compacts any duplicate hashes a pre-crash append left
        behind).  Each payload is serialised once — the rewrite reuses
        the cached lines of unchanged entries.
        """
        spec_hash = spec.content_hash()
        payload = result.to_dict()
        self._entries[spec_hash] = payload
        self._lines[spec_hash] = json.dumps(
            {"hash": spec_hash, "result": payload})
        _atomic_write(self.path, "\n".join(self._lines.values()) + "\n")


def compare_runs(before: ArchivedRun,
                 after: ArchivedRun) -> dict[tuple, dict[str, float]]:
    """Ratio drift between two runs for every shared key.

    Returns ``{key: {"before": r, "after": r, "drift_percent": d}}``.
    """
    before_ratios = before.key_ratios()
    after_ratios = after.key_ratios()
    shared = set(before_ratios) & set(after_ratios)
    if not shared:
        raise GatewayError("the runs share no (function, language, platform)")
    return {
        key: {
            "before": before_ratios[key],
            "after": after_ratios[key],
            "drift_percent": (
                (after_ratios[key] / before_ratios[key]) - 1.0
            ) * 100.0,
        }
        for key in sorted(shared)
    }
