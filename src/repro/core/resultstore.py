"""Result archive: persist and compare benchmark runs.

The paper releases its datasets alongside the tool; this module is
the repository side of that workflow — invocation records are saved
as JSON-lines with run metadata (seed, version, label), reloaded for
analysis, and two archived runs can be diffed for ratio drift (useful
for regression-tracking TEE stacks across firmware/kernel updates,
exactly the before/after comparison §III-B's firmware anecdote needed).

:class:`SpecResultCache` is the runner-pipeline counterpart: a
spec-hash keyed archive of :class:`~repro.tee.vm.RunResult` payloads,
so re-running an experiment with identical trial specs skips the
completed trials and replays their archived results.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.core.results import InvocationRecord
from repro.errors import GatewayError
from repro.version import __version__


@dataclass
class ArchivedRun:
    """One saved measurement run."""

    label: str
    seed: int
    version: str
    records: list[InvocationRecord]

    def key_ratios(self) -> dict[tuple[str, str | None, str], float]:
        """Mean secure/normal ratio per (function, language, platform).

        Only keys with trials on both sides appear.
        """
        buckets: dict[tuple, dict[bool, list[float]]] = {}
        for record in self.records:
            key = (record.function, record.language, record.platform)
            buckets.setdefault(key, {True: [], False: []})[
                record.secure
            ].append(record.elapsed_ns)
        ratios = {}
        for key, sides in buckets.items():
            if sides[True] and sides[False]:
                ratios[key] = (
                    sum(sides[True]) / len(sides[True])
                ) / (sum(sides[False]) / len(sides[False]))
        return ratios


class ResultStore:
    """JSON-lines persistence for invocation records."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    def save(self, label: str, seed: int,
             records: list[InvocationRecord]) -> None:
        """Append one run (header line + one line per record)."""
        if not records:
            raise GatewayError("refusing to save an empty run")
        with self.path.open("a", encoding="utf-8") as handle:
            header = {"kind": "run", "label": label, "seed": seed,
                      "version": __version__, "records": len(records)}
            handle.write(json.dumps(header) + "\n")
            for record in records:
                handle.write(json.dumps(
                    {"kind": "record", **record.to_dict()}
                ) + "\n")

    def load(self) -> list[ArchivedRun]:
        """All archived runs, in file order."""
        if not self.path.exists():
            return []
        runs: list[ArchivedRun] = []
        with self.path.open(encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise GatewayError(
                        f"{self.path}:{line_number}: bad JSON: {exc}"
                    ) from exc
                if payload.get("kind") == "run":
                    runs.append(ArchivedRun(
                        label=payload["label"],
                        seed=payload["seed"],
                        version=payload.get("version", "?"),
                        records=[],
                    ))
                elif payload.get("kind") == "record":
                    if not runs:
                        raise GatewayError(
                            f"{self.path}:{line_number}: record before any run"
                        )
                    payload.pop("kind")
                    runs[-1].records.append(InvocationRecord(**payload))
                else:
                    raise GatewayError(
                        f"{self.path}:{line_number}: unknown kind "
                        f"{payload.get('kind')!r}"
                    )
        return runs

    def run(self, label: str) -> ArchivedRun:
        """One archived run by label (the last with that label)."""
        matches = [run for run in self.load() if run.label == label]
        if not matches:
            raise GatewayError(f"no archived run labelled {label!r}")
        return matches[-1]


class SpecResultCache:
    """Spec-hash keyed JSONL cache of completed trial results.

    Each line is ``{"hash": <spec content hash>, "result": <RunResult
    JSON>}``; the newest entry for a hash wins.  Passed to
    :class:`repro.core.runner.TrialRunner` to make experiment re-runs
    incremental: a trial whose spec hash is already cached is not
    executed again.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        if not self.path.parent.is_dir():
            raise GatewayError(
                f"cache directory does not exist: {self.path.parent}")
        self._entries: dict[str, dict] = {}
        self.hits = 0
        self.misses = 0
        if self.path.exists():
            with self.path.open(encoding="utf-8") as handle:
                for line_number, line in enumerate(handle, start=1):
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        payload = json.loads(line)
                    except json.JSONDecodeError as exc:
                        raise GatewayError(
                            f"{self.path}:{line_number}: bad JSON: {exc}"
                        ) from exc
                    self._entries[payload["hash"]] = payload["result"]

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, spec):
        """The archived result for ``spec``, or None on a miss."""
        from repro.tee.vm import RunResult

        payload = self._entries.get(spec.content_hash())
        if payload is None:
            self.misses += 1
            return None
        self.hits += 1
        return RunResult.from_dict(payload)

    def put(self, spec, result) -> None:
        """Archive ``result`` under ``spec``'s content hash."""
        spec_hash = spec.content_hash()
        payload = result.to_dict()
        self._entries[spec_hash] = payload
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps({"hash": spec_hash, "result": payload})
                         + "\n")


def compare_runs(before: ArchivedRun,
                 after: ArchivedRun) -> dict[tuple, dict[str, float]]:
    """Ratio drift between two runs for every shared key.

    Returns ``{key: {"before": r, "after": r, "drift_percent": d}}``.
    """
    before_ratios = before.key_ratios()
    after_ratios = after.key_ratios()
    shared = set(before_ratios) & set(after_ratios)
    if not shared:
        raise GatewayError("the runs share no (function, language, platform)")
    return {
        key: {
            "before": before_ratios[key],
            "after": after_ratios[key],
            "drift_percent": (
                (after_ratios[key] / before_ratios[key]) - 1.0
            ) * 100.0,
        }
        for key in sorted(shared)
    }
