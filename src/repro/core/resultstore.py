"""Result archive: persist and compare benchmark runs.

The paper releases its datasets alongside the tool; this module is
the repository side of that workflow — invocation records are saved
as JSON-lines with run metadata (seed, version, label), reloaded for
analysis, and two archived runs can be diffed for ratio drift (useful
for regression-tracking TEE stacks across firmware/kernel updates,
exactly the before/after comparison §III-B's firmware anecdote needed).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro import __version__
from repro.core.results import InvocationRecord
from repro.errors import GatewayError


@dataclass
class ArchivedRun:
    """One saved measurement run."""

    label: str
    seed: int
    version: str
    records: list[InvocationRecord]

    def key_ratios(self) -> dict[tuple[str, str | None, str], float]:
        """Mean secure/normal ratio per (function, language, platform).

        Only keys with trials on both sides appear.
        """
        buckets: dict[tuple, dict[bool, list[float]]] = {}
        for record in self.records:
            key = (record.function, record.language, record.platform)
            buckets.setdefault(key, {True: [], False: []})[
                record.secure
            ].append(record.elapsed_ns)
        ratios = {}
        for key, sides in buckets.items():
            if sides[True] and sides[False]:
                ratios[key] = (
                    sum(sides[True]) / len(sides[True])
                ) / (sum(sides[False]) / len(sides[False]))
        return ratios


class ResultStore:
    """JSON-lines persistence for invocation records."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    def save(self, label: str, seed: int,
             records: list[InvocationRecord]) -> None:
        """Append one run (header line + one line per record)."""
        if not records:
            raise GatewayError("refusing to save an empty run")
        with self.path.open("a", encoding="utf-8") as handle:
            header = {"kind": "run", "label": label, "seed": seed,
                      "version": __version__, "records": len(records)}
            handle.write(json.dumps(header) + "\n")
            for record in records:
                handle.write(json.dumps(
                    {"kind": "record", **record.to_dict()}
                ) + "\n")

    def load(self) -> list[ArchivedRun]:
        """All archived runs, in file order."""
        if not self.path.exists():
            return []
        runs: list[ArchivedRun] = []
        with self.path.open(encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise GatewayError(
                        f"{self.path}:{line_number}: bad JSON: {exc}"
                    ) from exc
                if payload.get("kind") == "run":
                    runs.append(ArchivedRun(
                        label=payload["label"],
                        seed=payload["seed"],
                        version=payload.get("version", "?"),
                        records=[],
                    ))
                elif payload.get("kind") == "record":
                    if not runs:
                        raise GatewayError(
                            f"{self.path}:{line_number}: record before any run"
                        )
                    payload.pop("kind")
                    runs[-1].records.append(InvocationRecord(**payload))
                else:
                    raise GatewayError(
                        f"{self.path}:{line_number}: unknown kind "
                        f"{payload.get('kind')!r}"
                    )
        return runs

    def run(self, label: str) -> ArchivedRun:
        """One archived run by label (the last with that label)."""
        matches = [run for run in self.load() if run.label == label]
        if not matches:
            raise GatewayError(f"no archived run labelled {label!r}")
        return matches[-1]


def compare_runs(before: ArchivedRun,
                 after: ArchivedRun) -> dict[tuple, dict[str, float]]:
    """Ratio drift between two runs for every shared key.

    Returns ``{key: {"before": r, "after": r, "drift_percent": d}}``.
    """
    before_ratios = before.key_ratios()
    after_ratios = after.key_ratios()
    shared = set(before_ratios) & set(after_ratios)
    if not shared:
        raise GatewayError("the runs share no (function, language, platform)")
    return {
        key: {
            "before": before_ratios[key],
            "after": after_ratios[key],
            "drift_percent": (
                (after_ratios[key] / before_ratios[key]) - 1.0
            ) * 100.0,
        }
        for key in sorted(shared)
    }
