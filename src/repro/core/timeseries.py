"""Continuous performance monitoring (TEEMon-style).

§VI plans "integration to existing TEE monitoring libraries [35]"
(TEEMon, a *continuous* performance monitoring framework for TEEs).
This module provides that capability: a :class:`ContinuousMonitor`
attaches to an execution context and samples the live counters and
cost-ledger breakdown at a fixed virtual-time interval while the
workload runs, yielding a time series instead of a single end-of-run
figure — enough to see phase behaviour (e.g. iostress's bounce-buffer
bursts vs cpustress's flat profile).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import MonitorError
from repro.guestos.context import ExecContext
from repro.sim.ledger import CostCategory


@dataclass(frozen=True)
class Sample:
    """One point in the monitored series (cumulative values)."""

    time_ns: float
    instructions: int
    cache_misses: int
    vm_transitions: int
    bounce_buffer_bytes: int
    context_switches: int
    cost_breakdown: dict[str, float]


@dataclass
class TimeSeries:
    """An ordered list of samples with analysis helpers."""

    interval_ns: float
    samples: list[Sample] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.samples)

    def deltas(self, attribute: str) -> list[float]:
        """Per-interval increments of a cumulative counter."""
        values = [getattr(sample, attribute) for sample in self.samples]
        return [b - a for a, b in zip(values, values[1:])]

    def peak_interval(self, attribute: str) -> int:
        """Index of the interval with the largest increment."""
        increments = self.deltas(attribute)
        if not increments:
            raise MonitorError("need at least two samples for deltas")
        return max(range(len(increments)), key=increments.__getitem__)

    def category_share(self, category: CostCategory,
                       exclude_startup: bool = True) -> list[float]:
        """Per-sample share of total cost in one category.

        ``exclude_startup`` nets out bootstrap charges, mirroring how
        the paper's measurements exclude launcher bootstrap.
        """
        startup_key = CostCategory.STARTUP.value
        shares = []
        for sample in self.samples:
            total = sum(
                nanos for key, nanos in sample.cost_breakdown.items()
                if not (exclude_startup and key == startup_key)
            )
            shares.append(
                sample.cost_breakdown.get(category.value, 0.0) / total
                if total > 0 else 0.0
            )
        return shares

    def sparkline(self, attribute: str, width: int = 40) -> str:
        """A terminal sparkline of per-interval increments."""
        ramp = " .:-=+*#%@"
        increments = self.deltas(attribute)
        if not increments:
            return ""
        if len(increments) > width:
            # downsample by averaging buckets
            bucket = len(increments) / width
            increments = [
                sum(increments[int(i * bucket):int((i + 1) * bucket)])
                / max(1, len(increments[int(i * bucket):int((i + 1) * bucket)]))
                for i in range(width)
            ]
        top = max(increments) or 1.0
        return "".join(
            ramp[min(len(ramp) - 1, int(value / top * (len(ramp) - 1)))]
            for value in increments
        )


class ContinuousMonitor:
    """Samples an execution context at a fixed virtual interval.

    Usage::

        monitor = ContinuousMonitor(interval_ns=1e6)   # 1 ms
        result = vm.run(monitor.wrap(body), name="iostress")
        series = monitor.series
    """

    def __init__(self, interval_ns: float = 1e6) -> None:
        if interval_ns <= 0:
            raise MonitorError(f"interval must be positive: {interval_ns}")
        self.interval_ns = interval_ns
        self.series = TimeSeries(interval_ns=interval_ns)
        self._next_sample_at = 0.0

    def _take_sample(self, ctx: ExecContext) -> None:
        counters = ctx.machine.counters
        self.series.samples.append(Sample(
            time_ns=ctx.clock.now(),
            instructions=counters.instructions,
            cache_misses=counters.cache_misses,
            vm_transitions=counters.vm_transitions,
            bounce_buffer_bytes=counters.bounce_buffer_bytes,
            context_switches=counters.context_switches,
            cost_breakdown={
                category.value: nanos for category, nanos in ctx.ledger
            },
        ))

    def _observer(self, ctx: ExecContext, category, charged_ns: float) -> None:
        while ctx.clock.now() >= self._next_sample_at:
            self._take_sample(ctx)
            self._next_sample_at += self.interval_ns

    def attach(self, ctx: ExecContext) -> None:
        """Install the sampling hook on a context."""
        if ctx.on_charge is not None:
            raise MonitorError("context already has a charge observer")
        self._next_sample_at = ctx.clock.now() + self.interval_ns
        ctx.on_charge = self._observer

    def wrap(self, body):
        """Wrap a VM-executable body so monitoring starts with it."""

        def monitored(kernel):
            self.attach(kernel.ctx)
            try:
                return body(kernel)
            finally:
                self._take_sample(kernel.ctx)   # final sample at the end

        return monitored
