"""Performance monitoring (the ``perf stat`` integration).

§III-B: ConfBench invokes ``perf stat`` when dispatching workloads
and piggybacks the collected metrics (instructions, cache misses, …)
onto results.  Inside CCA realms hardware counters are unavailable —
"one must rely on custom performance tools" — so the monitor degrades
to a script-based fallback that reports only what software can see
(wallclock, context switches, page faults), and developers can
register extra metric scripts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import MonitorError
from repro.tee.base import TeePlatform
from repro.tee.vm import RunResult

#: Counters ``perf stat`` reports on hardware platforms.
HARDWARE_EVENTS = (
    "instructions", "cycles", "cache_references", "cache_misses",
    "branch_instructions", "branch_misses", "context_switches",
    "page_faults", "vm_transitions", "bounce_buffer_bytes",
)

#: What a software-only fallback can still observe.
SOFTWARE_EVENTS = ("context_switches", "page_faults")


@dataclass
class PerfReport:
    """The metrics piggybacked onto a result."""

    source: str                      # "perf-stat" | "custom-script"
    events: dict[str, int]
    wallclock_ns: float
    extra: dict[str, float] = field(default_factory=dict)


@dataclass
class PerfMonitor:
    """Collects run metrics appropriate to a platform."""

    platform: TeePlatform
    custom_scripts: dict[str, Callable[[RunResult], float]] = field(
        default_factory=dict
    )

    def register_script(self, name: str,
                        script: Callable[[RunResult], float]) -> None:
        """Add a custom metric script (the CCA extension point)."""
        if name in self.custom_scripts:
            raise MonitorError(f"script {name!r} already registered")
        self.custom_scripts[name] = script

    def collect(self, result: RunResult) -> PerfReport:
        """Build the report for one run."""
        counters = result.counters.as_dict()
        supports_counters = self.platform.info().supports_perf_counters
        # Default missing events to 0: a counter source (older caches,
        # degraded runs, custom scripts feeding synthetic results) that
        # lacks an event must not crash collection with a KeyError.
        if supports_counters:
            events = {key: counters.get(key, 0) for key in HARDWARE_EVENTS}
            source = "perf-stat"
        else:
            events = {key: counters.get(key, 0) for key in SOFTWARE_EVENTS}
            source = "custom-script"
        extra = {
            name: script(result)
            for name, script in self.custom_scripts.items()
        }
        return PerfReport(
            source=source,
            events=events,
            wallclock_ns=result.elapsed_ns,
            extra=extra,
        )
