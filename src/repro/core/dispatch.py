"""Request transport model: the Fig. 2 dispatch path.

§III-C walks a request through ① user → gateway, ② gateway picks the
platform, ③ gateway → host, ④ host routes by port to the VM, ⑤ the
result returns.  Function *execution* time (what the figures report)
excludes this transport; ConfBench still pays it per request, and the
CCA path pays extra — §III-B describes the tap/tun forwarding chain
needed to reach VMs inside the FVP.

:class:`DispatchModel` prices the round trip so the gateway can report
``transport_ns`` alongside each result.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import GatewayError
from repro.hw.nic import NicModel, lan_path
from repro.sim.rng import SimRng
from repro.tee.base import TeePlatform
from repro.tee.cca import CcaPlatform

#: In-host hop from the steering port to the VM's virtio-net.
_HOST_TO_VM_NS = 45_000.0


@dataclass
class DispatchModel:
    """Prices one request/response exchange along the Fig. 2 path."""

    user_to_gateway: NicModel = field(default_factory=lan_path)
    gateway_to_host: NicModel = field(default_factory=lan_path)
    rng: SimRng = field(default_factory=lambda: SimRng(0, "dispatch"))

    def round_trip_ns(self, platform: TeePlatform,
                      request_bytes: int = 2048,
                      response_bytes: int = 4096) -> float:
        """Total transport time for one request to ``platform``.

        CCA requests additionally traverse the tap/tun chain into the
        FVP (both directions).
        """
        if request_bytes < 0 or response_bytes < 0:
            raise GatewayError("negative payload size")
        total = self.user_to_gateway.round_trip(request_bytes, self.rng)
        total += self.gateway_to_host.round_trip(request_bytes, self.rng)
        total += 2 * _HOST_TO_VM_NS
        total += self.user_to_gateway.round_trip(response_bytes, self.rng)
        if isinstance(platform, CcaPlatform):
            total += 2 * platform.fvp.network_extra_ns()
        return total
