"""ConfBench core: the orchestration tool itself (§III).

The pieces map one-to-one onto the paper's architecture (Fig. 2):

- :mod:`repro.core.gateway` — the entry point: receives workload
  requests, picks a normal or secure VM on the right platform,
  dispatches, and returns results with perf metrics piggybacked.
- :mod:`repro.core.config` — the gateway configuration file mapping
  TEEs to hosts and interface ports.
- :mod:`repro.core.pool` — TEE pools with pluggable load-balancing
  policies (round-robin / least-loaded / random).
- :mod:`repro.core.host` — TEE-enabled hosts routing requests to
  their VMs by destination port.
- :mod:`repro.core.relay` — the socat-equivalent TCP relay, usable
  over real localhost sockets.
- :mod:`repro.core.launcher` — per-language function launchers that
  bootstrap the runtime (bootstrap excluded from timings).
- :mod:`repro.core.storage` — the gateway's database of uploaded
  functions per supported language.
- :mod:`repro.core.monitor` — the ``perf stat`` integration, with the
  custom-script fallback used for CCA realms.
- :mod:`repro.core.rest` / :mod:`repro.core.client` — the REST
  interface over real HTTP (stdlib), plus a Python client.
- :mod:`repro.core.api` — the high-level :class:`ConfBench` facade
  the examples and experiment harnesses use.
- :mod:`repro.core.runner` — the unified trial-execution pipeline
  (:class:`TrialPlan` → :class:`TrialRunner`, serial or parallel)
  every experiment harness runs on.
"""

from repro.core.api import ConfBench
from repro.core.config import GatewayConfig, PlatformEntry
from repro.core.gateway import Gateway, GatewayStats, InvocationRequest
from repro.core.host import Host
from repro.core.launcher import FunctionLauncher
from repro.core.monitor import PerfMonitor, PerfReport
from repro.core.pool import LoadBalancingPolicy, TeePool
from repro.core.relay import TcpRelay
from repro.core.results import InvocationRecord, RatioSummary, summarize_ratio
from repro.core.runner import (
    ParallelTrialExecutor,
    SerialTrialExecutor,
    TrialPlan,
    TrialRunner,
    TrialSpec,
)
from repro.core.storage import FunctionStore, StoredFunction

__all__ = [
    "ConfBench",
    "GatewayConfig",
    "PlatformEntry",
    "Gateway",
    "GatewayStats",
    "InvocationRequest",
    "Host",
    "FunctionLauncher",
    "PerfMonitor",
    "PerfReport",
    "LoadBalancingPolicy",
    "TeePool",
    "TcpRelay",
    "InvocationRecord",
    "RatioSummary",
    "summarize_ratio",
    "FunctionStore",
    "StoredFunction",
    "TrialSpec",
    "TrialPlan",
    "TrialRunner",
    "SerialTrialExecutor",
    "ParallelTrialExecutor",
]
