"""Cluster resilience layer: fleet, placement, health, brownout.

The package simulates a multi-host confidential-FaaS fleet on one
virtual timeline: heterogeneous host profiles spread across failure
domains, a bin-pack/zone-spread placement scheduler, warm-pool VM
lifecycle with seeded autoscaling, probe-driven failure detection
with hedged failover, per-zone attestation collateral, and a
progressive brownout ladder under open-loop overload.  Entry point:
build a fleet with :func:`build_fleet`, run a sweep through
:class:`ClusterGateway`, read the :class:`ClusterReport`.
"""

from repro.core.cluster.collateral import ZoneCollateral
from repro.core.cluster.gateway import ClusterGateway, ClusterReport
from repro.core.cluster.health import HealthMonitor
from repro.core.cluster.node import ClusterNode, NodeState
from repro.core.cluster.overload import BrownoutLevel, OverloadController
from repro.core.cluster.placement import PlacementScheduler
from repro.core.cluster.profiles import (
    DEFAULT_ZONES,
    GENERATIONS,
    PLATFORM_CYCLE,
    HostProfile,
    build_fleet,
)
from repro.core.cluster.traffic import (
    TenantMix,
    TrafficGenerator,
    TrafficSpec,
)

__all__ = [
    "BrownoutLevel",
    "ClusterGateway",
    "ClusterNode",
    "ClusterReport",
    "DEFAULT_ZONES",
    "GENERATIONS",
    "HealthMonitor",
    "HostProfile",
    "NodeState",
    "OverloadController",
    "PLATFORM_CYCLE",
    "PlacementScheduler",
    "TenantMix",
    "TrafficGenerator",
    "TrafficSpec",
    "ZoneCollateral",
    "build_fleet",
]
