"""The cluster gateway: route, health-probe, fail over, brown out.

One :class:`ClusterGateway` drives one open-loop sweep end to end on a
single virtual timeline (a :class:`~repro.sim.events.LeanEventQueue`):
arrivals from the traffic generator, placement via the bin-pack/
zone-spread scheduler, warm-pool VM lifecycle on each node, health
probing with suspect→dead transitions, failover with hedged retries
under a retry budget, and the brownout ladder when the queue backs up.

**The conservation invariant** (the whole point of a resilience
layer): every request finalizes exactly once, as *served*, *degraded*
(failover budget exhausted, or the fleet was lost), or *shed with a
record* carrying a deterministic ``retry_after_ns`` hint.  Nothing is
ever silently dropped; :attr:`ClusterReport.conserved` checks the sum.

**Determinism**: all randomness comes from label-derived
:class:`~repro.sim.rng.SimRng` substreams drawn sequentially in event
order, all fault geometry is a pure function of the fault plan, and
event ordering is the stable ``(time, insertion sequence)`` contract —
so a sweep is a pure function of ``(profiles, traffic, seed, plan)``
and serial vs parallel trial execution stays bit-identical.

**What the gateway knows**: placement and failover act only on probed
health state, never on fault-schedule ground truth.  A request routed
to a host that crashed a millisecond ago simply hangs until the probe
machine declares the host dead — detection latency is part of the
tail, as it is in production.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.attest.tiers import CollateralDoc, ZonedCollateral
from repro.core.cluster.health import HealthMonitor
from repro.core.cluster.node import ClusterNode, NodeState
from repro.core.cluster.overload import BrownoutLevel, OverloadController
from repro.core.cluster.placement import PlacementScheduler
from repro.core.cluster.profiles import HostProfile
from repro.core.cluster.traffic import TenantMix, TrafficGenerator, TrafficSpec
from repro.core.results import percentile
from repro.errors import GatewayError
from repro.sim.events import LeanEventQueue
from repro.sim.faults import FaultContext, FaultKind, FaultPlan
from repro.sim.rng import SimRng

#: cold-boot costs (ns): provisioning a fresh (C)VM vs resuming a
#: pooled one; secure boots additionally pay attestation + collateral
SECURE_COLD_BOOT_NS = 160_000_000.0
NORMAL_COLD_BOOT_NS = 60_000_000.0
WARM_START_NS = 1_500_000.0
ATTEST_VERIFY_NS = 3_000_000.0

#: per-request service-time jitter (lognormal sigma)
SERVICE_JITTER_SIGMA = 0.08

#: event kinds on the lean queue (ints; never compared by the heap)
_ARRIVAL = 0
_COMPLETE = 1
_PROBE = 2
_PROBE_EVAL = 3
_CRASH = 4
_HEDGE = 5
_AUTOSCALE = 6
_DELIVER = 7


class _Request:
    """One open-loop request's mutable lifecycle state."""

    __slots__ = ("rid", "arrival_ns", "fn", "secure", "platform",
                 "memory_mib", "done", "hedged", "failed_over",
                 "enqueued_ns")

    def __init__(self, rid: int, arrival_ns: float, fn: int,
                 secure: bool, platform: str, memory_mib: int) -> None:
        self.rid = rid
        self.arrival_ns = arrival_ns
        self.fn = fn
        self.secure = secure
        self.platform = platform
        self.memory_mib = memory_mib
        self.done = False
        self.hedged = False
        self.failed_over = False
        self.enqueued_ns = 0.0


class _Attempt:
    """One placement of a request on one node."""

    __slots__ = ("req", "node", "start_ns", "dead", "finished")

    def __init__(self, req: _Request, node: ClusterNode,
                 start_ns: float) -> None:
        self.req = req
        self.node = node
        self.start_ns = start_ns
        self.dead = False       # the host crashed under it
        self.finished = False


@dataclass
class ClusterReport:
    """Everything one sweep produced, in canonical JSON-able form."""

    requests: int = 0
    served: int = 0
    degraded: int = 0
    shed: int = 0
    #: bounded sample of shed records: (request id, retry_after_ns)
    shed_records: list = field(default_factory=list)
    telemetry_dropped: int = 0
    failovers: int = 0
    hedges: int = 0
    retries_spent: int = 0
    affinity_misses: int = 0
    cold_boots: int = 0
    warm_starts: int = 0
    partition_delayed: int = 0
    queue_peak: int = 0
    queue_timeouts: int = 0
    makespan_ns: float = 0.0
    latency_p50_ns: float = 0.0
    latency_p99_ns: float = 0.0
    latency_p999_ns: float = 0.0
    #: probe-machine counters: sent/missed/suspected/died/recovered
    health: dict = field(default_factory=dict)
    #: brownout ladder: transitions into + virtual ns spent at each level
    brownout: dict = field(default_factory=dict)
    #: collateral tier hits (host/cdn/origin/stale/outage_failures/local)
    collateral: dict = field(default_factory=dict)
    #: zone -> busy_ns / (cores * makespan) utilisation in [0, 1]
    zone_utilization: dict = field(default_factory=dict)
    #: injected cluster faults, "kind@point" in schedule order
    faults_injected: list = field(default_factory=list)
    #: supply-chain boot counters (eager_pulls / lazy_boots /
    #: chunk_faults / key_releases) — only populated when the gateway
    #: runs with an :class:`~repro.supply.ImagePolicy`
    supply: dict = field(default_factory=dict)
    events_processed: int = 0

    @property
    def conserved(self) -> bool:
        """Zero silently dropped: every request is in exactly one bucket."""
        return self.requests == self.served + self.degraded + self.shed

    @property
    def shed_rate(self) -> float:
        return self.shed / self.requests if self.requests else 0.0

    def to_dict(self) -> dict:
        """Canonical (sorted-key) form — what trial bodies return."""
        payload = {
            "requests": self.requests,
            "served": self.served,
            "degraded": self.degraded,
            "shed": self.shed,
            "shed_records": [list(entry) for entry in self.shed_records],
            "telemetry_dropped": self.telemetry_dropped,
            "failovers": self.failovers,
            "hedges": self.hedges,
            "retries_spent": self.retries_spent,
            "affinity_misses": self.affinity_misses,
            "cold_boots": self.cold_boots,
            "warm_starts": self.warm_starts,
            "partition_delayed": self.partition_delayed,
            "queue_peak": self.queue_peak,
            "queue_timeouts": self.queue_timeouts,
            "makespan_ns": self.makespan_ns,
            "latency_p50_ns": self.latency_p50_ns,
            "latency_p99_ns": self.latency_p99_ns,
            "latency_p999_ns": self.latency_p999_ns,
            "health": dict(sorted(self.health.items())),
            "brownout": dict(sorted(self.brownout.items())),
            "collateral": dict(sorted(self.collateral.items())),
            "zone_utilization": dict(sorted(self.zone_utilization.items())),
            "faults_injected": list(self.faults_injected),
            "events_processed": self.events_processed,
            "conserved": self.conserved,
        }
        if self.supply:
            # only sweeps run under an ImagePolicy carry the key, so
            # legacy reports (and their goldens) stay byte-identical
            payload["supply"] = dict(sorted(self.supply.items()))
        return dict(sorted(payload.items()))

    def emit(self, sink, prefix: str = "cluster") -> None:
        """Fold the aggregate counters into a metrics sink."""
        sink.count_many((
            (f"{prefix}.requests", self.requests),
            (f"{prefix}.served", self.served),
            (f"{prefix}.degraded", self.degraded),
            (f"{prefix}.shed", self.shed),
            (f"{prefix}.failovers", self.failovers),
            (f"{prefix}.hedges", self.hedges),
            (f"{prefix}.cold_boots", self.cold_boots),
            (f"{prefix}.warm_starts", self.warm_starts),
        ))
        sink.set_gauge(f"{prefix}.queue_peak", self.queue_peak)
        sink.set_gauge(f"{prefix}.latency_p99_ns", self.latency_p99_ns)
        for zone, value in sorted(self.zone_utilization.items()):
            sink.set_gauge(f"{prefix}.utilization.{zone}", value)


class ClusterGateway:
    """One-shot engine: build, :meth:`run` once, read the report."""

    def __init__(self, profiles: tuple[HostProfile, ...], *,
                 seed: int = 0,
                 faults: "FaultContext | FaultPlan | None" = None,
                 scope: str = "cluster",
                 probe_interval_ns: float = 500_000_000.0,
                 probe_timeout_ns: float = 200_000_000.0,
                 hedge_delay_ns: float = 100_000_000.0,
                 queue_cap: int | None = None,
                 queue_deadline_ns: float = 10_000_000_000.0,
                 retry_floor: int = 20, retry_ratio: float = 0.1,
                 autoscale_interval_ns: float = 5_000_000_000.0,
                 image_policy=None) -> None:
        if not profiles:
            raise GatewayError("cluster needs at least one host profile")
        self.profiles = tuple(profiles)
        self.seed = seed
        if isinstance(faults, FaultContext):
            self._plan: FaultPlan | None = faults.plan
            self._scope = faults.scope
            self._fault_log: list[str] | None = faults.injected
        elif isinstance(faults, FaultPlan):
            self._plan = faults
            self._scope = scope
            self._fault_log = None
        else:
            self._plan = None
            self._scope = scope
            self._fault_log = None
        self.nodes = [ClusterNode(profile) for profile in self.profiles]
        self.zones = tuple(dict.fromkeys(p.zone for p in self.profiles))
        self.scheduler = PlacementScheduler(self.nodes)
        self.collateral = ZonedCollateral(self.zones)
        #: optional :class:`~repro.supply.ImagePolicy`: every cold boot
        #: additionally pays the fixed supply-chain tax (pull strategy
        #: + key release on secure boots); ``None`` keeps the legacy
        #: boot model byte-identical
        self.image_policy = image_policy
        self._supply: dict[str, int] = {}
        self.monitor = HealthMonitor(
            self.nodes,
            probe_interval_ns=probe_interval_ns,
            probe_timeout_ns=probe_timeout_ns,
            on_suspect=self._on_suspect,
            on_dead=self._on_dead,
        )
        total_cores = sum(p.cores for p in self.profiles)
        self.controller = OverloadController(
            queue_cap if queue_cap is not None else 4 * total_cores)
        self.hedge_delay_ns = hedge_delay_ns
        self.queue_deadline_ns = queue_deadline_ns
        self.retry_floor = retry_floor
        self.retry_ratio = retry_ratio
        self.autoscale_interval_ns = autoscale_interval_ns
        self._events = LeanEventQueue()
        self._queue: deque[_Request] = deque()
        #: node name -> {attempt object id: attempt} still on that host
        self._live: dict[str, dict[int, _Attempt]] = {
            node.profile.name: {} for node in self.nodes}
        self._service_rng = SimRng(seed, "cluster/service")
        self._faults_injected: list[str] = []
        self._finalized = 0
        self._autoscale_changes = 0
        self.report = ClusterReport()
        self._samples: list[float] = []
        self._ran = False

    # -- fault schedule ------------------------------------------------

    def _log_fault(self, kind: FaultKind, point: str) -> None:
        self._faults_injected.append(f"{kind.value}@{point}")
        if self._fault_log is not None:
            self._fault_log.append(f"{kind.value}@{point}")

    def _install_faults(self, horizon_ns: float) -> None:
        """Draw the cluster fault geometry for this sweep's horizon."""
        plan = self._plan
        if plan is None or not plan.active:
            return
        for node in self.nodes:
            name = node.profile.name
            at = plan.event_at_ns(FaultKind.HOST_CRASH,
                                  f"{self._scope}/{name}", horizon_ns)
            if at is not None:
                node.crashed_at_ns = at
                self._events.push(at, _CRASH, node)
                self._log_fault(FaultKind.HOST_CRASH, name)
            window = plan.window_ns(FaultKind.DEGRADED_HOST,
                                    f"{self._scope}/{name}", horizon_ns)
            if window is not None:
                node.degraded_window = window
                self._log_fault(FaultKind.DEGRADED_HOST, name)
        for zone in self.zones:
            window = plan.window_ns(FaultKind.ZONE_PARTITION,
                                    f"{self._scope}/{zone}", horizon_ns)
            if window is not None:
                self.monitor.partitions[zone] = window
                self._log_fault(FaultKind.ZONE_PARTITION, zone)
            window = plan.window_ns(FaultKind.COLLATERAL_OUTAGE,
                                    f"{self._scope}/{zone}", horizon_ns)
            if window is not None:
                self.collateral.outages[zone] = window
                self._log_fault(FaultKind.COLLATERAL_OUTAGE, zone)

    # -- the sweep -----------------------------------------------------

    def run(self, traffic: TrafficSpec) -> ClusterReport:
        """Push the whole open-loop trace through the fleet."""
        if self._ran:
            raise GatewayError("ClusterGateway.run is one-shot; build a "
                               "fresh gateway per sweep")
        self._ran = True
        mix = TenantMix(tuple(dict.fromkeys(
            p.platform for p in self.profiles)))
        generator = TrafficGenerator(traffic, mix, self.seed)
        self._mix = mix
        self._generator = generator
        self._total_requests = traffic.requests
        self._slow_factor = (self._plan.slow_factor
                             if self._plan is not None else 1.0)
        self._install_faults(traffic.horizon_ns)
        self._prewarm(mix)

        events = self._events
        first_gap = generator.next_gap_ns(0.0)
        events.push(first_gap, _ARRIVAL, self._make_request(0, first_gap))
        events.push(self.monitor.probe_interval_ns, _PROBE, None)
        events.push(self.autoscale_interval_ns, _AUTOSCALE, None)

        processed = 0
        makespan = 0.0
        handlers = {
            _ARRIVAL: self._on_arrival,
            _COMPLETE: self._on_complete,
            _PROBE: self._on_probe,
            _PROBE_EVAL: self._on_probe_eval,
            _CRASH: self._on_crash,
            _HEDGE: self._on_hedge,
            _AUTOSCALE: self._on_autoscale,
            _DELIVER: self._on_deliver,
        }
        while events:
            time_ns, _, kind, payload = events.pop()
            handlers[kind](time_ns, payload)
            processed += 1
            if time_ns > makespan:
                makespan = time_ns
        self.controller.finish(makespan)
        return self._build_report(processed, makespan)

    def _prewarm(self, mix: TenantMix) -> None:
        """Seeded start-of-day warm pools (the autoscaler's bootstrap)."""
        for node in self.nodes:
            rng = SimRng(self.seed, f"autoscale/prewarm/{node.profile.name}")
            for _ in range(node.profile.cores // 2):
                node.prewarm(mix.names[mix.draw(rng.random())])

    def _make_request(self, rid: int, arrival_ns: float) -> _Request:
        fn, secure = self._generator.next_tenant()
        return _Request(rid, arrival_ns, fn, secure,
                        self._mix.platforms[fn], self._mix.memory_mib[fn])

    # -- event handlers ------------------------------------------------

    def _on_arrival(self, now_ns: float, req: _Request) -> None:
        level = self.controller.observe(len(self._queue), now_ns)
        if level is BrownoutLevel.SHED:
            self._finalize_shed(req, now_ns)
        elif level is BrownoutLevel.QUEUE:
            self._enqueue(req, now_ns)
        elif not self._dispatch(req, now_ns):
            self._enqueue(req, now_ns)
        next_rid = req.rid + 1
        if next_rid < self._total_requests:
            gap = self._generator.next_gap_ns(now_ns)
            self._events.push(now_ns + gap, _ARRIVAL,
                              self._make_request(next_rid, now_ns + gap))

    def _enqueue(self, req: _Request, now_ns: float) -> None:
        req.enqueued_ns = now_ns
        self._queue.append(req)
        if len(self._queue) > self.report.queue_peak:
            self.report.queue_peak = len(self._queue)

    def _dispatch(self, req: _Request, now_ns: float) -> bool:
        """Place and start one attempt; False when nothing fits."""
        excluded: tuple[str, ...] = ()
        while True:
            node = self._place(req, excluded)
            if node is None:
                return False
            cold = node.acquire(self._mix.names[req.fn], req.memory_mib,
                                req.secure)
            boot_ns = 0.0
            if cold:
                if req.secure:
                    hit = self.collateral.fetch(
                        CollateralDoc(platform=node.profile.platform,
                                      host=node.profile.name,
                                      zone=node.profile.zone),
                        now_ns)
                    if hit is None:
                        # collateral blackout: this zone cannot boot a
                        # CVM right now — undo and try another zone
                        node.release(self._mix.names[req.fn],
                                     req.memory_mib, req.secure,
                                     stash=False)
                        excluded = excluded + (node.profile.zone,)
                        continue
                    boot_ns = (SECURE_COLD_BOOT_NS + ATTEST_VERIFY_NS
                               + hit.cost_ns)
                else:
                    boot_ns = NORMAL_COLD_BOOT_NS
                if self.image_policy is not None:
                    boot_ns += self._supply_boot(req.secure)
            else:
                boot_ns = WARM_START_NS
            service_ns = (self._mix.costs_ns[req.fn]
                          / node.profile.speed
                          * node.slowdown_at(now_ns, self._slow_factor)
                          * self._service_rng.lognormal_factor(
                              SERVICE_JITTER_SIGMA))
            attempt = _Attempt(req, node, now_ns)
            self._live[node.profile.name][id(attempt)] = attempt
            if node.alive_at(now_ns):
                self._events.push(now_ns + boot_ns + service_ns,
                                  _COMPLETE, attempt)
            # else: routed to a host that is already gone — the attempt
            # hangs until the probe machine declares the node dead and
            # _on_dead fails it over (detection latency is real latency)
            return True

    def _supply_boot(self, secure: bool) -> float:
        """One cold boot's supply-chain tax under the image policy."""
        policy = self.image_policy
        counters = self._supply
        if policy.strategy == "lazy":
            counters["lazy_boots"] = counters.get("lazy_boots", 0) + 1
            counters["chunk_faults"] = (counters.get("chunk_faults", 0)
                                        + policy.faults_per_boot)
        else:
            counters["eager_pulls"] = counters.get("eager_pulls", 0) + 1
        if secure and policy.signed:
            counters["key_releases"] = (counters.get("key_releases", 0)
                                        + 1)
        return policy.boot_cost_ns(secure)

    def _place(self, req: _Request,
               excluded: tuple[str, ...]) -> ClusterNode | None:
        if not excluded:
            return self.scheduler.place(req.platform, req.secure,
                                        req.memory_mib)
        # zone-excluding retry path (collateral blackout): temporarily
        # narrow the scheduler's view instead of growing its API
        node = self.scheduler.place(req.platform, req.secure,
                                    req.memory_mib)
        seen: tuple[str, ...] = ()
        while node is not None and node.profile.zone in excluded:
            # mark-and-skip: flip state so the scheduler skips it, then
            # restore after the scan (bounded by the zone count)
            node.state = NodeState.SUSPECT
            seen = seen + (node.profile.name,)
            node = self.scheduler.place(req.platform, req.secure,
                                        req.memory_mib)
        for name in seen:
            for candidate in self.nodes:
                if candidate.profile.name == name:
                    candidate.state = NodeState.HEALTHY
        return node

    def _on_complete(self, now_ns: float, attempt: _Attempt) -> None:
        if attempt.dead:
            return          # the host died under it; crash handler ran
        attempt.finished = True
        node = attempt.node
        self._live[node.profile.name].pop(id(attempt), None)
        req = attempt.req
        node.release(self._mix.names[req.fn], req.memory_mib, req.secure)
        node.busy_ns += now_ns - attempt.start_ns
        window = self.monitor.partitions.get(node.profile.zone)
        if window is not None and window[0] <= now_ns < window[1]:
            # computed, but the response cannot cross the partition:
            # deliver when the window heals (if a failover wins the
            # race first, this delivery quietly loses)
            self._events.push(window[1], _DELIVER, attempt)
        elif not req.done:
            node.served += 1
            self._finalize_served(req, now_ns)
        self._drain_queue(now_ns)

    def _on_deliver(self, now_ns: float, attempt: _Attempt) -> None:
        req = attempt.req
        if req.done:
            return
        attempt.node.served += 1
        self.report.partition_delayed += 1
        self._finalize_served(req, now_ns)
        self._drain_queue(now_ns)

    def _on_probe(self, now_ns: float, _payload) -> None:
        self._events.push(now_ns + self.monitor.probe_timeout_ns,
                          _PROBE_EVAL, now_ns)
        if self._finalized < self._total_requests:
            self._events.push(now_ns + self.monitor.probe_interval_ns,
                              _PROBE, None)

    def _on_probe_eval(self, now_ns: float, sent_ns: float) -> None:
        self.monitor.evaluate_round(sent_ns)
        self._drain_queue(now_ns)
        if self._queue and all(not node.alive_at(now_ns)
                               for node in self.nodes):
            # the whole fleet is gone: flush the queue as degraded
            # records rather than waiting for probes forever
            while self._queue:
                self._finalize_degraded(self._queue.popleft(), now_ns)

    def _on_crash(self, now_ns: float, node: ClusterNode) -> None:
        """Ground truth: the host just died.  Its in-flight attempts
        will never complete; the *gateway* only reacts at detection."""
        for attempt in self._live[node.profile.name].values():
            attempt.dead = True
            node.busy_ns += now_ns - attempt.start_ns

    def _on_suspect(self, node: ClusterNode, now_ns: float) -> None:
        """Monitor callback: hedge what is still in flight there."""
        for attempt in self._live[node.profile.name].values():
            req = attempt.req
            if not req.done and not req.hedged:
                req.hedged = True
                self._events.push(now_ns + self.hedge_delay_ns,
                                  _HEDGE, attempt)

    def _on_hedge(self, now_ns: float, attempt: _Attempt) -> None:
        req = attempt.req
        if req.done or attempt.finished:
            return
        if not self._retry_allowed():
            return          # budget gone: let the original race on
        if self._dispatch(req, now_ns):
            self.report.retries_spent += 1
            self.report.hedges += 1

    def _on_dead(self, node: ClusterNode, now_ns: float) -> None:
        """Monitor callback: fail over everything still on the node."""
        live = self._live[node.profile.name]
        attempts = list(live.values())
        live.clear()
        for attempt in attempts:
            req = attempt.req
            if not attempt.dead and attempt.node.alive_at(now_ns):
                # partitioned-but-alive host: its local work may still
                # deliver after the heal; release is handled there
                self._live[node.profile.name][id(attempt)] = attempt
            if req.done:
                continue
            # no once-only guard here: a failover target can itself
            # die, and the request must keep moving until the retry
            # budget degrades it — never left unfinalized
            req.failed_over = True
            self._failover(req, now_ns)

    def _failover(self, req: _Request, now_ns: float) -> None:
        if not self._retry_allowed():
            self._finalize_degraded(req, now_ns)
            return
        if self._dispatch(req, now_ns):
            self.report.retries_spent += 1
            self.report.failovers += 1
        elif len(self._queue) < self.controller.queue_cap:
            self._enqueue(req, now_ns)
        else:
            self._finalize_shed(req, now_ns)

    def _on_autoscale(self, now_ns: float, _payload) -> None:
        for node in self.nodes:
            if node.state is not NodeState.HEALTHY:
                node.completions_since_tick = 0
                continue
            demand = node.completions_since_tick
            node.completions_since_tick = 0
            cores = node.profile.cores
            target = min(3 * cores,
                         max(cores // 2,
                             cores // 2 + (demand + cores - 1) // cores))
            if target != node.warm_cap:
                node.warm_cap = target
                self._autoscale_changes += 1
        self._drain_queue(now_ns)
        if self._finalized < self._total_requests:
            self._events.push(now_ns + self.autoscale_interval_ns,
                              _AUTOSCALE, None)

    # -- queue + finalisation ------------------------------------------

    def _drain_queue(self, now_ns: float) -> None:
        queue = self._queue
        while queue:
            req = queue[0]
            if req.done:                 # hedged/delivered while queued
                queue.popleft()
                continue
            if now_ns - req.enqueued_ns > self.queue_deadline_ns:
                queue.popleft()
                self.report.queue_timeouts += 1
                self._finalize_shed(req, now_ns)
                continue
            if not self._dispatch(req, now_ns):
                return
            queue.popleft()
        self.controller.observe(len(queue), now_ns)

    def _retry_allowed(self) -> bool:
        allowed = self.retry_floor + int(self.retry_ratio
                                         * self._finalized)
        return self.report.retries_spent < allowed

    def _finalize_served(self, req: _Request, now_ns: float) -> None:
        req.done = True
        self._finalized += 1
        self.report.served += 1
        if self.controller.level >= BrownoutLevel.DROP_TELEMETRY:
            self.report.telemetry_dropped += 1
        else:
            self._samples.append(now_ns - req.arrival_ns)

    def _finalize_degraded(self, req: _Request, now_ns: float) -> None:
        req.done = True
        self._finalized += 1
        self.report.degraded += 1

    def _finalize_shed(self, req: _Request, now_ns: float) -> None:
        req.done = True
        self._finalized += 1
        self.report.shed += 1
        hint = self.controller.retry_after_ns(len(self._queue))
        if len(self.report.shed_records) < 5:
            self.report.shed_records.append((req.rid, hint))

    # -- report --------------------------------------------------------

    def _build_report(self, processed: int, makespan: float
                      ) -> ClusterReport:
        report = self.report
        report.requests = self._total_requests
        report.makespan_ns = makespan
        report.events_processed = processed
        report.affinity_misses = self.scheduler.affinity_misses
        report.cold_boots = sum(node.cold_boots for node in self.nodes)
        report.warm_starts = sum(node.warm_starts for node in self.nodes)
        if self._samples:
            report.latency_p50_ns = percentile(self._samples, 50)
            report.latency_p99_ns = percentile(self._samples, 99)
            report.latency_p999_ns = percentile(self._samples, 99.9)
        report.health = {
            "probes_sent": self.monitor.probes_sent,
            "probes_missed": self.monitor.probes_missed,
            "suspected": self.monitor.suspected,
            "died": self.monitor.died,
            "recovered": self.monitor.recovered,
        }
        report.brownout = {
            f"transitions_{level.name.lower()}": count
            for level, count in self.controller.transitions.items()
        }
        for level, spent in self.controller.time_at_level_ns.items():
            report.brownout[f"time_ns_{level.name.lower()}"] = spent
        report.collateral = dict(self.collateral.hits)
        zone_busy: dict[str, float] = {}
        zone_capacity: dict[str, float] = {}
        for node in self.nodes:
            zone = node.profile.zone
            zone_busy[zone] = zone_busy.get(zone, 0.0) + node.busy_ns
            zone_capacity[zone] = (zone_capacity.get(zone, 0.0)
                                   + node.profile.cores * makespan)
        report.zone_utilization = {
            zone: (zone_busy[zone] / zone_capacity[zone]
                   if zone_capacity[zone] else 0.0)
            for zone in zone_busy
        }
        report.faults_injected = list(self._faults_injected)
        report.supply = dict(self._supply)
        return report
