"""Host hardware profiles and deterministic fleet construction.

A real confidential-FaaS fleet is heterogeneous: machine generations
mix, per-host silicon speed varies a few percent, and hosts are
spread across failure domains (zones) so one rack losing power does
not take the service down.  ``build_fleet`` reproduces all three
deterministically: generations and platforms cycle, zones round-robin
(so every zone holds ⌈N/zones⌉ hosts at most), and each host's speed
factor is drawn from a label-derived substream — adding host N+1
never changes host K's hardware.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import GatewayError
from repro.sim.rng import SimRng

#: TEE platform cycle across the fleet (matches the paper's trio).
PLATFORM_CYCLE: tuple[str, ...] = ("tdx", "sev-snp", "cca")

#: default failure domains
DEFAULT_ZONES: tuple[str, ...] = ("zone-a", "zone-b", "zone-c")

#: machine generations: (generation, cores, memory_mib) — the shapes
#: cycle so any fleet larger than three hosts is heterogeneous
GENERATIONS: tuple[tuple[str, int, int], ...] = (
    ("m1", 8, 16384),
    ("m2", 16, 32768),
    ("m3", 12, 24576),
)


@dataclass(frozen=True)
class HostProfile:
    """Immutable hardware facts of one simulated cluster host."""

    name: str           # "host-00", stable sort key for tie-breaks
    zone: str           # failure domain
    platform: str       # TEE platform this host runs ("tdx", ...)
    generation: str     # machine generation label
    cores: int          # concurrent request slots
    memory_mib: int     # guest memory capacity
    speed: float        # relative compute speed (1.0 = nominal)


def build_fleet(hosts: int, seed: int = 0,
                zones: tuple[str, ...] = DEFAULT_ZONES
                ) -> tuple[HostProfile, ...]:
    """A deterministic heterogeneous fleet of ``hosts`` profiles.

    Host ``i``'s shape is a pure function of ``(seed, i)``: generation
    and platform cycle by index, the zone round-robins, and the speed
    factor comes from the host's own substream.
    """
    if hosts < 1:
        raise GatewayError(f"fleet needs >= 1 host, got {hosts}")
    if not zones:
        raise GatewayError("fleet needs at least one zone")
    fleet = []
    for index in range(hosts):
        generation, cores, memory_mib = GENERATIONS[index % len(GENERATIONS)]
        speed = SimRng(seed, f"fleet/host-{index:02d}/speed").uniform(
            0.85, 1.20)
        fleet.append(HostProfile(
            name=f"host-{index:02d}",
            zone=zones[index % len(zones)],
            platform=PLATFORM_CYCLE[index % len(PLATFORM_CYCLE)],
            generation=generation,
            cores=cores,
            memory_mib=memory_mib,
            speed=round(speed, 4),
        ))
    return tuple(fleet)
