"""One simulated cluster host: capacity, health, warm-pool lifecycle.

A node's VM lifecycle mirrors what Knative/Kata-style confidential
FaaS pays for in practice: a *cold boot* provisions and (for secure
requests) attests a fresh CVM, while a *warm start* reuses a paused
VM kept in the node's warm pool.  The pool is bounded (``warm_cap``)
and the cap breathes with demand via the gateway's seeded autoscaler,
so cold-start amortization — the headline cluster metric — is an
emergent property of traffic, not a constant.

Health is tracked as the classic three-state probe machine
(``HEALTHY → SUSPECT → DEAD``) driven by
:class:`repro.core.cluster.health.HealthMonitor`; the node itself
only stores the state and the probe-miss counter.
"""

from __future__ import annotations

import enum

from repro.core.cluster.profiles import HostProfile


class NodeState(enum.Enum):
    """Gateway-visible health of a node (what placement consults)."""

    HEALTHY = "healthy"
    SUSPECT = "suspect"     # missed probes; no new placements, hedge
    DEAD = "dead"           # declared lost; in-flight work failed over


class ClusterNode:
    """Mutable per-host simulation state."""

    __slots__ = (
        "profile", "state", "free_mib", "active", "secure_active",
        "warm", "warm_total", "warm_cap", "missed_probes",
        "crashed_at_ns", "degraded_window", "host_collateral",
        "busy_ns", "served", "cold_boots", "warm_starts",
        "completions_since_tick",
    )

    def __init__(self, profile: HostProfile) -> None:
        self.profile = profile
        self.state = NodeState.HEALTHY
        self.free_mib = profile.memory_mib
        self.active = 0             # in-flight attempts (bounded by cores)
        self.secure_active = 0      # secure subset (zone-spread input)
        self.warm: dict[str, int] = {}   # function -> warm VMs pooled
        self.warm_total = 0
        self.warm_cap = profile.cores    # autoscaler moves this
        self.missed_probes = 0
        #: virtual time the host dies, from the fault schedule (None =
        #: never); the gateway only *learns* of it via probe timeouts
        self.crashed_at_ns: float | None = None
        #: (start_ns, end_ns) slowdown window, or None
        self.degraded_window: tuple[float, float] | None = None
        #: platforms whose attestation collateral is cached host-side
        self.host_collateral: dict[str, bool] = {}
        self.busy_ns = 0.0          # total attempt time burned here
        self.served = 0
        self.cold_boots = 0
        self.warm_starts = 0
        #: completions since the last autoscale tick (demand signal)
        self.completions_since_tick = 0

    # -- capacity ------------------------------------------------------

    def alive_at(self, now_ns: float) -> bool:
        """Whether the host hardware is up at ``now_ns`` (ground truth,
        distinct from the probed ``state`` the gateway acts on)."""
        return self.crashed_at_ns is None or now_ns < self.crashed_at_ns

    def can_fit(self, memory_mib: int) -> bool:
        """Room for one more request of ``memory_mib`` guest memory."""
        return (self.active < self.profile.cores
                and self.free_mib >= memory_mib)

    def slowdown_at(self, now_ns: float, slow_factor: float) -> float:
        """The degraded-host multiplier in effect at ``now_ns``."""
        window = self.degraded_window
        if window is not None and window[0] <= now_ns < window[1]:
            return slow_factor
        return 1.0

    # -- VM lifecycle --------------------------------------------------

    def acquire(self, function: str, memory_mib: int,
                secure: bool) -> bool:
        """Reserve capacity for one attempt; True means *cold* boot."""
        self.free_mib -= memory_mib
        self.active += 1
        if secure:
            self.secure_active += 1
        pooled = self.warm.get(function, 0)
        if pooled > 0:
            self.warm[function] = pooled - 1
            self.warm_total -= 1
            self.warm_starts += 1
            return False
        self.cold_boots += 1
        return True

    def release(self, function: str, memory_mib: int, secure: bool,
                stash: bool = True) -> None:
        """Return an attempt's capacity; maybe pool the VM warm."""
        self.free_mib += memory_mib
        self.active -= 1
        if secure:
            self.secure_active -= 1
        self.completions_since_tick += 1
        if stash and self.warm_total < self.warm_cap:
            self.warm[function] = self.warm.get(function, 0) + 1
            self.warm_total += 1

    def prewarm(self, function: str) -> bool:
        """Seed one warm VM at start of day (autoscaler bootstrap)."""
        if self.warm_total >= self.warm_cap:
            return False
        self.warm[function] = self.warm.get(function, 0) + 1
        self.warm_total += 1
        return True

    def __repr__(self) -> str:
        return (f"ClusterNode({self.profile.name}, {self.state.value}, "
                f"active={self.active}, warm={self.warm_total})")
