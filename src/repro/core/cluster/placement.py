"""Placement scheduling: bin-pack, platform affinity, zone spread.

The scheduler answers one question — *which node takes this request* —
under three pressures:

- **bin-pack by guest memory**: best-fit (the candidate left with the
  least free memory after placement) keeps large-memory requests
  placeable for longer than first-fit or round-robin would;
- **platform affinity**: a request built for TDX prefers a TDX host
  (its measurement database, collateral, and image cache live there);
  when no affine host fits, placement *relaxes* to any platform and
  counts the miss rather than failing the request;
- **zone spread for secure workers**: secure requests pick the
  candidate zone with the fewest secure requests in flight first, so
  one zone partition cannot strand a tenant's whole confidential
  footprint.

Only ``HEALTHY`` nodes are candidates: suspect nodes keep their
in-flight work (hedged by the gateway) but take no new placements.
All tie-breaks end on the stable node name, so placement is a pure
function of the fleet state it reads.
"""

from __future__ import annotations

from repro.core.cluster.node import ClusterNode, NodeState


class PlacementScheduler:
    """Stateless policy over a fleet of :class:`ClusterNode`."""

    __slots__ = ("nodes", "affinity_misses")

    def __init__(self, nodes: list[ClusterNode]) -> None:
        self.nodes = nodes
        self.affinity_misses = 0

    def place(self, platform: str, secure: bool,
              memory_mib: int) -> ClusterNode | None:
        """Pick a node, or None when nothing healthy fits."""
        node = self._pick(platform, secure, memory_mib)
        if node is not None:
            return node
        node = self._pick(None, secure, memory_mib)
        if node is not None:
            self.affinity_misses += 1
        return node

    def _pick(self, platform: str | None, secure: bool,
              memory_mib: int) -> ClusterNode | None:
        """Best-fit among healthy candidates (optionally affine)."""
        if secure:
            return self._pick_spread(platform, memory_mib)
        best = None
        best_key = None
        for node in self.nodes:
            if node.state is not NodeState.HEALTHY:
                continue
            if platform is not None and node.profile.platform != platform:
                continue
            if not node.can_fit(memory_mib):
                continue
            key = (node.free_mib - memory_mib, node.profile.name)
            if best_key is None or key < best_key:
                best, best_key = node, key
        return best

    def _pick_spread(self, platform: str | None,
                     memory_mib: int) -> ClusterNode | None:
        """Zone-spread then best-fit, for secure requests."""
        zone_load: dict[str, int] = {}
        for node in self.nodes:
            zone = node.profile.zone
            zone_load[zone] = zone_load.get(zone, 0) + node.secure_active
        best = None
        best_key = None
        for node in self.nodes:
            if node.state is not NodeState.HEALTHY:
                continue
            if platform is not None and node.profile.platform != platform:
                continue
            if not node.can_fit(memory_mib):
                continue
            key = (zone_load[node.profile.zone],
                   node.free_mib - memory_mib, node.profile.name)
            if best_key is None or key < best_key:
                best, best_key = node, key
        return best
