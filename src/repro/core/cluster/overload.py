"""Progressive overload control: the brownout ladder.

Open-loop traffic does not slow down when the fleet does, so an
overloaded cluster must shed work *deliberately* or collapse (queues
grow without bound, every request times out, goodput goes to zero).
The controller degrades in stages keyed to dispatch-queue occupancy —
brownout, not blackout:

1. ``NORMAL``        — place immediately, queue only on capacity miss;
2. ``DROP_TELEMETRY``— keep serving but stop recording the *optional*
   per-request latency samples (counters still tally), shedding
   observability cost first because it is the only load the operator
   can lose without breaking anyone;
3. ``QUEUE``         — stop placing on arrival; every new request is
   paced through the FIFO dispatch queue, smoothing the burst;
4. ``SHED``          — the queue is full: refuse new arrivals with a
   *shed record* carrying a deterministic ``retry_after_ns`` hint
   (estimated queue drain time), never a silent drop.

Thresholds are fractions of ``queue_cap``, so one knob scales the
whole ladder with fleet size.
"""

from __future__ import annotations

import enum

from repro.errors import GatewayError


class BrownoutLevel(enum.IntEnum):
    """Ladder position; higher levels imply every lower mitigation."""

    NORMAL = 0
    DROP_TELEMETRY = 1
    QUEUE = 2
    SHED = 3


class OverloadController:
    """Maps queue occupancy to a :class:`BrownoutLevel`."""

    __slots__ = (
        "queue_cap", "telemetry_at", "queue_at", "drain_ns_per_request",
        "level", "transitions", "time_at_level_ns", "_since_ns",
    )

    def __init__(self, queue_cap: int, *,
                 telemetry_at: float = 0.5, queue_at: float = 0.8,
                 drain_ns_per_request: float = 2_000_000.0) -> None:
        if queue_cap < 1:
            raise GatewayError(f"queue_cap must be >= 1, got {queue_cap}")
        if not 0.0 < telemetry_at <= queue_at <= 1.0:
            raise GatewayError(
                f"need 0 < telemetry_at <= queue_at <= 1, got "
                f"{telemetry_at}/{queue_at}")
        self.queue_cap = queue_cap
        self.telemetry_at = telemetry_at
        self.queue_at = queue_at
        #: the retry-after hint's estimate of how long the fleet takes
        #: to drain one queued request (a config constant, so the hint
        #: is a pure function of queue depth)
        self.drain_ns_per_request = drain_ns_per_request
        self.level = BrownoutLevel.NORMAL
        #: per-level count of upward/downward transitions *into* it
        self.transitions = {level: 0 for level in BrownoutLevel}
        #: virtual time spent at each level
        self.time_at_level_ns = {level: 0.0 for level in BrownoutLevel}
        self._since_ns = 0.0

    def classify(self, queued: int) -> BrownoutLevel:
        """The ladder level for a dispatch-queue depth (pure)."""
        if queued >= self.queue_cap:
            return BrownoutLevel.SHED
        occupancy = queued / self.queue_cap
        if occupancy >= self.queue_at:
            return BrownoutLevel.QUEUE
        if occupancy >= self.telemetry_at:
            return BrownoutLevel.DROP_TELEMETRY
        return BrownoutLevel.NORMAL

    def observe(self, queued: int, now_ns: float) -> BrownoutLevel:
        """Update the ladder for the current depth; returns the level."""
        level = self.classify(queued)
        if level is not self.level:
            self.time_at_level_ns[self.level] += now_ns - self._since_ns
            self._since_ns = now_ns
            self.level = level
            self.transitions[level] += 1
        return level

    def finish(self, now_ns: float) -> None:
        """Close the open time-at-level interval at end of sweep."""
        self.time_at_level_ns[self.level] += now_ns - self._since_ns
        self._since_ns = now_ns

    def retry_after_ns(self, queued: int) -> float:
        """The deterministic hint attached to a shed record.

        The estimated time for the queue to drain to the QUEUE
        threshold — exactly the earliest point a retry could be
        admitted rather than shed again.
        """
        backlog = queued - int(self.queue_cap * self.queue_at)
        return max(backlog, 1) * self.drain_ns_per_request
