"""Virtual-time health probing: HEALTHY → SUSPECT → DEAD.

The gateway never reads ground truth (a host's crash time or a zone's
partition window); it learns the way real control planes do — by
probing and timing out.  Every ``probe_interval_ns`` the monitor sends
one probe per node; a probe of a crashed host, or of a host inside a
partitioned zone, goes unanswered and is declared *missed* only after
``probe_timeout_ns`` more virtual time.  Consecutive misses walk the
node down the state machine:

- ``suspect_after`` misses → ``SUSPECT``: placement stops handing the
  node new work and the gateway hedges its in-flight requests;
- ``dead_after`` misses → ``DEAD``: the gateway fails over everything
  still on the node.

One answered probe resets the counter and revives ``SUSPECT`` *and*
``DEAD`` nodes back to ``HEALTHY`` — exactly what happens when a zone
partition heals: the hosts were fine all along, only unreachable.
(A crashed host never answers again, so it stays dead.)
"""

from __future__ import annotations

from typing import Callable

from repro.core.cluster.node import ClusterNode, NodeState
from repro.errors import GatewayError


class HealthMonitor:
    """Probe-driven failure detector over the fleet."""

    __slots__ = (
        "nodes", "probe_interval_ns", "probe_timeout_ns",
        "suspect_after", "dead_after", "on_suspect", "on_dead",
        "partitions", "probes_sent", "probes_missed",
        "suspected", "died", "recovered",
    )

    def __init__(self, nodes: list[ClusterNode], *,
                 probe_interval_ns: float = 500_000_000.0,
                 probe_timeout_ns: float = 200_000_000.0,
                 suspect_after: int = 2, dead_after: int = 4,
                 on_suspect: Callable[[ClusterNode, float], None]
                 | None = None,
                 on_dead: Callable[[ClusterNode, float], None]
                 | None = None) -> None:
        if probe_interval_ns <= 0 or probe_timeout_ns < 0:
            raise GatewayError("probe interval must be > 0 and timeout >= 0")
        if not 1 <= suspect_after < dead_after:
            raise GatewayError(
                f"need 1 <= suspect_after < dead_after, got "
                f"{suspect_after}/{dead_after}")
        self.nodes = nodes
        self.probe_interval_ns = probe_interval_ns
        self.probe_timeout_ns = probe_timeout_ns
        self.suspect_after = suspect_after
        self.dead_after = dead_after
        self.on_suspect = on_suspect
        self.on_dead = on_dead
        #: zone -> (start_ns, end_ns) partition window (fault schedule)
        self.partitions: dict[str, tuple[float, float]] = {}
        self.probes_sent = 0
        self.probes_missed = 0
        self.suspected = 0
        self.died = 0
        self.recovered = 0

    def reachable(self, node: ClusterNode, now_ns: float) -> bool:
        """Ground truth: would a probe sent at ``now_ns`` be answered?"""
        if not node.alive_at(now_ns):
            return False
        window = self.partitions.get(node.profile.zone)
        return window is None or not window[0] <= now_ns < window[1]

    def evaluate_round(self, sent_ns: float) -> None:
        """Apply the outcome of the probe round sent at ``sent_ns``.

        Called ``probe_timeout_ns`` after the round went out (the
        gateway schedules the evaluation event); reachability is judged
        at send time, transitions land at evaluation time.
        """
        now_ns = sent_ns + self.probe_timeout_ns
        for node in self.nodes:
            self.probes_sent += 1
            if self.reachable(node, sent_ns):
                node.missed_probes = 0
                if node.state is not NodeState.HEALTHY:
                    node.state = NodeState.HEALTHY
                    self.recovered += 1
                continue
            self.probes_missed += 1
            node.missed_probes += 1
            if (node.missed_probes >= self.dead_after
                    and node.state is not NodeState.DEAD):
                node.state = NodeState.DEAD
                self.died += 1
                if self.on_dead is not None:
                    self.on_dead(node, now_ns)
            elif (node.missed_probes >= self.suspect_after
                    and node.state is NodeState.HEALTHY):
                node.state = NodeState.SUSPECT
                self.suspected += 1
                if self.on_suspect is not None:
                    self.on_suspect(node, now_ns)
