"""REST-facing control plane for cluster sweeps and KBS key release.

The cluster gateway itself is a one-shot engine (build, ``run`` once,
read the report).  :class:`ClusterControl` is the long-lived object
the REST layer fronts: it owns a run-at-a-time mutex (a second sweep
arriving while one runs is *shed* with a deterministic retry hint,
the same brownout contract as ``POST /v1/invoke``), keeps the last
:class:`~repro.core.cluster.gateway.ClusterReport` for
``GET /v1/cluster/report``, and hosts a per-platform Key Broker plane
so ``POST /v1/kbs/release`` exercises the real attestation-gated
release path — a denial surfaces as the typed
:class:`~repro.errors.KeyReleaseDeniedError` the REST envelope maps
to ``403 release_denied``.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.core.cluster.gateway import ClusterGateway
from repro.core.cluster.profiles import build_fleet
from repro.core.cluster.traffic import TrafficSpec
from repro.errors import GatewayError, OverloadedError, SupplyChainError
from repro.sim.rng import SimRng

#: the documented ``POST /v1/cluster/run`` body fields (strict mode)
RUN_FIELDS = frozenset({
    "hosts", "requests", "rate_rps", "process", "secure_fraction",
    "seed", "strategy", "signed",
})

#: the documented ``POST /v1/kbs/release`` body fields (strict mode)
RELEASE_FIELDS = frozenset({
    "vm_id", "platform", "key_ids", "tamper_evidence",
})


def _require_int(payload: dict, name: str, default: int,
                 minimum: int = 1) -> int:
    value = payload.get(name, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise GatewayError(f"'{name}' must be an integer")
    if value < minimum:
        raise GatewayError(f"'{name}' must be >= {minimum}, got {value}")
    return value


class ClusterControl:
    """One sweep at a time, last report kept, KBS plane on the side."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._run_lock = threading.Lock()
        self._last_report: dict[str, Any] | None = None
        self.runs = 0
        self.shed = 0
        #: platform -> (KeyBrokerService, LaunchAttestor, key ids); the
        #: attestation + escrow plane is built lazily per platform so
        #: importing the control stays cheap
        self._kbs: dict[str, tuple] = {}

    # -- sweeps --------------------------------------------------------

    def run(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Run one cluster sweep from a REST body; returns the report.

        Strict about fields like ``POST /v1/invoke``; a sweep arriving
        while another runs raises :class:`~repro.errors
        .OverloadedError` with a drain-time hint scaled to the running
        sweep's expected horizon.
        """
        unknown = sorted(set(payload) - RUN_FIELDS)
        if unknown:
            raise GatewayError(
                f"unknown cluster/run field(s): {', '.join(unknown)}; "
                f"allowed: {', '.join(sorted(RUN_FIELDS))}")
        hosts = _require_int(payload, "hosts", 4)
        requests = _require_int(payload, "requests", 2_000)
        seed = _require_int(payload, "seed", self.seed, minimum=0)
        rate_rps = payload.get("rate_rps", 2_000.0)
        if isinstance(rate_rps, bool) or not isinstance(rate_rps,
                                                        (int, float)):
            raise GatewayError("'rate_rps' must be a number")
        traffic = TrafficSpec(
            process=payload.get("process", "poisson"),
            requests=requests,
            rate_rps=float(rate_rps),
            secure_fraction=float(payload.get("secure_fraction", 0.75)),
        )
        policy = None
        strategy = payload.get("strategy")
        if strategy is not None:
            from repro.supply.launch import ImagePolicy

            if strategy not in ("eager", "lazy"):
                raise GatewayError(
                    f"'strategy' must be 'eager' or 'lazy', "
                    f"got {strategy!r}")
            policy = ImagePolicy(strategy=strategy,
                                 signed=bool(payload.get("signed", True)))
        if not self._run_lock.acquire(blocking=False):
            self.shed += 1
            raise OverloadedError(
                "a cluster sweep is already running; one at a time",
                retry_after_ns=traffic.horizon_ns)
        try:
            gateway = ClusterGateway(build_fleet(hosts, seed=seed),
                                     seed=seed, image_policy=policy)
            report = gateway.run(traffic).to_dict()
        finally:
            self._run_lock.release()
        self._last_report = report
        self.runs += 1
        return report

    def report(self) -> dict[str, Any] | None:
        """The last completed sweep's report, or None before any run."""
        return self._last_report

    # -- key broker plane ----------------------------------------------

    def _kbs_plane(self, platform: str):
        """The (broker, attestor, key ids) triple for ``platform``."""
        plane = self._kbs.get(platform)
        if plane is None:
            from repro.attest.service import LaunchAttestor
            from repro.supply.image import build_image, sign_image
            from repro.supply.kbs import KeyBrokerService
            from repro.supply.registry import Registry

            attestor = LaunchAttestor(platform, seed=self.seed)
            rng = SimRng(self.seed, f"cluster-control/kbs/{platform}")
            bundle = build_image("confapp", "v1", rng, encrypted=True)
            from repro.attest.crypto import derived_keypair

            sign_image(bundle, derived_keypair(rng.child("publisher"),
                                               "publisher"))
            registry = Registry()
            registry.push(bundle)
            kbs = KeyBrokerService(attestor.service)
            kbs.register_bundle(bundle)
            plane = (kbs, attestor, bundle.manifest.key_ids)
            self._kbs[platform] = plane
        return plane

    def kbs_release(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Attestation-gated key release from a REST body.

        Raises :class:`~repro.errors.KeyReleaseDeniedError` on failed
        attestation or unknown key ids — the REST layer maps it to
        ``403 release_denied`` with the broker's ``reason`` in the
        envelope.  ``tamper_evidence`` breaks the nonce binding so the
        denial path is reachable over the wire.
        """
        unknown = sorted(set(payload) - RELEASE_FIELDS)
        if unknown:
            raise GatewayError(
                f"unknown kbs/release field(s): {', '.join(unknown)}; "
                f"allowed: {', '.join(sorted(RELEASE_FIELDS))}")
        vm_id = payload.get("vm_id")
        if not vm_id or not isinstance(vm_id, str):
            raise GatewayError("kbs/release needs a 'vm_id'")
        platform = payload.get("platform", "tdx")
        from repro.attest.service import LaunchAttestor

        if platform not in LaunchAttestor.SUPPORTED:
            raise GatewayError(
                f"no attestation flow for platform {platform!r}; "
                f"supported: {', '.join(LaunchAttestor.SUPPORTED)}")
        key_ids = payload.get("key_ids")
        if key_ids is not None and (
                not isinstance(key_ids, list)
                or not all(isinstance(k, str) for k in key_ids)):
            raise GatewayError("'key_ids' must be a list of strings")
        kbs, attestor, escrowed = self._kbs_plane(platform)
        ctx = attestor.admission_context(vm_id)
        job = attestor.make_job(vm_id, ctx)
        if payload.get("tamper_evidence"):
            # break the nonce binding: the evidence (built against the
            # original nonce) no longer matches, so verification — and
            # therefore the release — fails exactly as a replayed or
            # forged quote would
            job.nonce = ctx.rng.child("tampered-nonce").bytes(16)
        release = kbs.release(
            job, tuple(key_ids) if key_ids is not None else escrowed, ctx)
        return {
            "vm_id": vm_id,
            "platform": platform,
            "released": sorted(release.keys),
            "resumed": release.resumed,
            "tier": release.verdict.tier,
            "release_ns": release.release_ns,
        }

    def kbs_stats(self, platform: str = "tdx") -> dict[str, int]:
        """The broker's decision counters for ``platform``."""
        plane = self._kbs.get(platform)
        if plane is None:
            raise SupplyChainError(
                f"no KBS activity yet for platform {platform!r}")
        return dict(plane[0].stats)
