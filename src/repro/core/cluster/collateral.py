"""Deprecated: per-zone collateral moved to ``repro.attest.tiers``.

PR 9 grew :class:`ZoneCollateral` here as a second collateral-tier
implementation next to PR 8's
:class:`~repro.attest.service.TieredCollateral`.  The API redesign
unified both behind the :class:`~repro.attest.tiers.CollateralTier`
protocol, and the zone-scale implementation now lives in
:class:`~repro.attest.tiers.ZonedCollateral` — exactly one
collateral-tier implementation per economics model remains.

This module keeps the old surface alive as a warn-once shim:
``ZoneCollateral(zones)`` still accepts cluster nodes on
``fetch_ns(node, platform, now_ns)`` and still mirrors warmth into
``node.host_collateral``, but every decision and counter is delegated
to a wrapped :class:`~repro.attest.tiers.ZonedCollateral`.  New code
(including :class:`~repro.core.cluster.gateway.ClusterGateway`) talks
to the unified tier directly.
"""

from __future__ import annotations

from repro.attest.tiers import (
    CDN_TIER_NS,
    HOST_TIER_NS,
    NETWORKED_PLATFORMS,
    ORIGIN_TIER_NS,
    CollateralDoc,
    ZonedCollateral,
)
from repro.core.cluster.node import ClusterNode
from repro.core.gateway import warn_once

__all__ = [
    "HOST_TIER_NS", "CDN_TIER_NS", "ORIGIN_TIER_NS",
    "NETWORKED_PLATFORMS", "ZoneCollateral",
]


class ZoneCollateral:
    """Deprecated shim over :class:`repro.attest.tiers.ZonedCollateral`.

    Preserves the legacy node-object surface: host warmth is keyed by
    node *identity* (two nodes sharing a profile name stay distinct,
    as the old per-node ``host_collateral`` dict behaved), and
    ``fetch_ns`` returns the bare tier cost or ``None``.
    """

    __slots__ = ("_tier", "_node_keys")

    def __init__(self, zones: tuple[str, ...]) -> None:
        warn_once(
            "repro.core.cluster.collateral.ZoneCollateral is deprecated; "
            "use repro.attest.tiers.ZonedCollateral (the unified "
            "CollateralTier implementation) instead")
        self._tier = ZonedCollateral(zones)
        #: node id -> (strong node ref, stable host key); holding the
        #: ref pins the id so a collected node can never alias a live
        #: one's warmth
        self._node_keys: dict[int, tuple[ClusterNode, str]] = {}

    @property
    def outages(self) -> dict[str, tuple[float, float]]:
        return self._tier.outages

    @property
    def cdn_warm(self) -> dict[tuple[str, str], bool]:
        return self._tier.cdn_warm

    @property
    def hits(self) -> dict[str, int]:
        return self._tier.hits

    def origin_blacked_out(self, zone: str, now_ns: float) -> bool:
        return self._tier.origin_blacked_out(zone, now_ns)

    def _host_key(self, node: ClusterNode) -> str:
        entry = self._node_keys.get(id(node))
        if entry is None:
            entry = (node, f"{node.profile.name}#{len(self._node_keys)}")
            self._node_keys[id(node)] = entry
        return entry[1]

    def fetch_ns(self, node: ClusterNode, platform: str,
                 now_ns: float) -> float | None:
        """Collateral cost for a secure cold boot, or None on failure."""
        hit = self._tier.fetch(
            CollateralDoc(name="bundle", platform=platform,
                          host=self._host_key(node),
                          zone=node.profile.zone),
            now_ns)
        if hit is None:
            return None
        if hit.tier in ("host", "cdn", "origin", "stale"):
            # legacy behaviour: mirror warmth onto the node itself
            node.host_collateral[platform] = True
        return hit.cost_ns
