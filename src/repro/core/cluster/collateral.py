"""Per-zone attestation collateral for secure cold boots.

PR 8's :class:`repro.attest.service.TieredCollateral` gave one host a
three-tier collateral path (host → cluster CDN → PCS/KDS origin).
At cluster scale the same economics apply per *zone*: every zone runs
its own CDN replica, each host keeps a host-side cache, and the origin
sits across the WAN.  A secure cold boot resolves collateral through
the cheapest warm tier:

- ``host``   — cached on the booting node: one IPC hop;
- ``cdn``    — the zone replica is warm: a LAN hop, and the fetch
  warms the node's host tier on the way through;
- ``origin`` — cold everywhere: the WAN round-trip, warming both the
  zone CDN and the node;
- ``stale``  — the origin is blacked out (a ``collateral-outage``
  fault window) but the zone CDN holds a previously-fetched copy:
  serve it stale, exactly the PR 8 stale-serving stance;
- a blackout with a cold CDN fails the boot — the gateway re-places
  the request in another zone (or degrades it with a record).

Costs are fixed per tier so the collateral tax of a sweep is exactly
attributable to its hit pattern.
"""

from __future__ import annotations

from repro.core.cluster.node import ClusterNode

#: virtual cost of resolving collateral per tier (ns)
HOST_TIER_NS = 200_000.0
CDN_TIER_NS = 1_200_000.0
ORIGIN_TIER_NS = 25_000_000.0

#: platforms with networked collateral; others (CCA's FVP setup) have
#: nothing to fetch and boot without touching the tiers
NETWORKED_PLATFORMS = ("tdx", "sev-snp")


class ZoneCollateral:
    """Zone-replicated collateral caches plus an origin with outages."""

    __slots__ = ("outages", "cdn_warm", "hits")

    def __init__(self, zones: tuple[str, ...]) -> None:
        #: zone -> (start_ns, end_ns) origin blackout window
        self.outages: dict[str, tuple[float, float]] = {}
        #: (zone, platform) -> True once a fetch warmed the replica
        self.cdn_warm: dict[tuple[str, str], bool] = {}
        self.hits = {"host": 0, "cdn": 0, "origin": 0, "stale": 0,
                     "outage_failures": 0, "local": 0}
        for zone in zones:
            self.outages.pop(zone, None)   # explicit: no window yet

    def origin_blacked_out(self, zone: str, now_ns: float) -> bool:
        window = self.outages.get(zone)
        return window is not None and window[0] <= now_ns < window[1]

    def fetch_ns(self, node: ClusterNode, platform: str,
                 now_ns: float) -> float | None:
        """Collateral cost for a secure cold boot, or None on failure.

        Mutates the caches the way a real fetch would: misses warm the
        tiers they travelled through.
        """
        if platform not in NETWORKED_PLATFORMS:
            self.hits["local"] += 1
            return 0.0
        if node.host_collateral.get(platform):
            self.hits["host"] += 1
            return HOST_TIER_NS
        zone = node.profile.zone
        key = (zone, platform)
        if self.cdn_warm.get(key):
            if self.origin_blacked_out(zone, now_ns):
                # replica holds a copy it cannot refresh: serve stale
                self.hits["stale"] += 1
            else:
                self.hits["cdn"] += 1
            node.host_collateral[platform] = True
            return CDN_TIER_NS
        if self.origin_blacked_out(zone, now_ns):
            self.hits["outage_failures"] += 1
            return None
        self.hits["origin"] += 1
        self.cdn_warm[key] = True
        node.host_collateral[platform] = True
        return ORIGIN_TIER_NS
