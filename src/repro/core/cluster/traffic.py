"""Seeded open-loop traffic: arrival processes and tenant mixes.

Open-loop means arrivals do not wait for the fleet: the generator
draws the next interarrival gap regardless of how backed up the
cluster is, which is what makes overload *possible* (a closed-loop
generator self-throttles and can never brown the service out).

Three arrival processes cover the shapes real FaaS front doors see:

- ``poisson``  — memoryless arrivals at a constant mean rate;
- ``diurnal``  — the same, with the rate modulated sinusoidally over a
  (compressed) day, so the sweep sees both the trough and the peak;
- ``burst``    — a Poisson baseline with periodic windows at
  ``burst_factor`` times the rate (the thundering-herd case).

The tenant mix draws functions from the paper's 25-workload FaaS set
with Zipf-like popularity (a few hot functions, a long tail — the
standard serverless production finding).  Per-function cost, memory
footprint, and platform affinity derive from the workload's trait and
a label-derived substream, so the mix is identical for every consumer
of the same seed.

All draws happen *sequentially in arrival order* from two dedicated
streams, so a traffic trace is a pure function of ``(spec, seed)`` —
independent of anything the cluster does with the requests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import GatewayError
from repro.sim.rng import SimRng
from repro.workloads.base import WorkloadTrait
from repro.workloads.faas.registry import figure_workloads

#: per-trait base service cost (ns) and guest memory (MiB)
_TRAIT_COST_NS = {
    WorkloadTrait.CPU: 18_000_000.0,
    WorkloadTrait.MEMORY: 12_000_000.0,
    WorkloadTrait.IO: 25_000_000.0,
    WorkloadTrait.MIXED: 20_000_000.0,
}
_TRAIT_MEMORY_MIB = {
    WorkloadTrait.CPU: 512,
    WorkloadTrait.MEMORY: 2048,
    WorkloadTrait.IO: 1024,
    WorkloadTrait.MIXED: 1536,
}

_PROCESSES = ("poisson", "diurnal", "burst")


@dataclass(frozen=True)
class TrafficSpec:
    """Declarative description of one open-loop workload."""

    process: str = "poisson"        # arrival process name
    requests: int = 10_000          # open-loop arrivals to generate
    rate_rps: float = 2_000.0       # mean arrival rate
    secure_fraction: float = 0.75   # share of requests demanding a CVM
    burst_factor: float = 6.0       # burst window rate multiplier
    burst_every_s: float = 20.0     # burst period
    burst_len_s: float = 4.0        # burst window length
    diurnal_period_s: float = 120.0  # compressed "day" length
    diurnal_swing: float = 0.8      # peak/trough amplitude (0..1)

    def __post_init__(self) -> None:
        if self.process not in _PROCESSES:
            raise GatewayError(
                f"unknown arrival process {self.process!r}; known: "
                f"{', '.join(_PROCESSES)}")
        if self.requests < 1 or self.rate_rps <= 0:
            raise GatewayError("traffic needs requests >= 1 and rate > 0")
        if not 0.0 <= self.secure_fraction <= 1.0:
            raise GatewayError("secure_fraction must be in [0, 1]")

    @property
    def horizon_ns(self) -> float:
        """Expected span of the arrival trace (fault-window scale)."""
        return self.requests * 1e9 / self.rate_rps


class TenantMix:
    """Zipf-weighted mix over the 25 paper FaaS functions."""

    __slots__ = ("names", "costs_ns", "memory_mib", "platforms",
                 "_cumulative")

    def __init__(self, platforms: tuple[str, ...]) -> None:
        workloads = figure_workloads()
        self.names = tuple(w.name for w in workloads)
        self.costs_ns = []
        self.memory_mib = []
        self.platforms = []
        weights = []
        for index, workload in enumerate(workloads):
            # per-function factors come from a *fixed* substream — the
            # cost model is a property of the workload, not the trial
            factor = SimRng(0, f"cluster-mix/{workload.name}").uniform(
                0.6, 1.6)
            self.costs_ns.append(_TRAIT_COST_NS[workload.trait] * factor)
            self.memory_mib.append(_TRAIT_MEMORY_MIB[workload.trait])
            self.platforms.append(platforms[index % len(platforms)])
            weights.append(1.0 / (index + 1) ** 0.9)   # Zipf-ish tail
        total = sum(weights)
        running = 0.0
        cumulative = []
        for weight in weights:
            running += weight / total
            cumulative.append(running)
        cumulative[-1] = 1.0
        self._cumulative = cumulative

    def draw(self, u: float) -> int:
        """Function index for a uniform draw ``u`` in [0, 1)."""
        cumulative = self._cumulative
        # 25 entries: a linear scan beats bisect's call overhead and
        # the hot head of the Zipf mix exits in the first few steps
        for index, edge in enumerate(cumulative):
            if u < edge:
                return index
        return len(cumulative) - 1


class TrafficGenerator:
    """Sequential, seeded request source for one sweep."""

    __slots__ = ("spec", "mix", "_arrivals", "_tenants")

    def __init__(self, spec: TrafficSpec, mix: TenantMix,
                 seed: int) -> None:
        self.spec = spec
        self.mix = mix
        self._arrivals = SimRng(seed, "traffic/arrivals")
        self._tenants = SimRng(seed, "traffic/tenants")

    def rate_at(self, now_ns: float) -> float:
        """Instantaneous arrival rate (requests/s) at ``now_ns``."""
        spec = self.spec
        if spec.process == "diurnal":
            phase = 2.0 * math.pi * (now_ns / 1e9) / spec.diurnal_period_s
            return spec.rate_rps * (1.0 + spec.diurnal_swing
                                    * math.sin(phase))
        if spec.process == "burst":
            into_period = (now_ns / 1e9) % spec.burst_every_s
            if into_period < spec.burst_len_s:
                return spec.rate_rps * spec.burst_factor
            return spec.rate_rps
        return spec.rate_rps

    def next_gap_ns(self, now_ns: float) -> float:
        """Interarrival gap after an arrival at ``now_ns``."""
        return self._arrivals.exponential(1e9 / self.rate_at(now_ns))

    def next_tenant(self) -> tuple[int, bool]:
        """(function index, secure flag) for the next arrival."""
        index = self.mix.draw(self._tenants.random())
        secure = self._tenants.bernoulli(self.spec.secure_fraction)
        return index, secure
