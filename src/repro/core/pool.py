"""TEE pools and load balancing.

§III-A: "the gateway maintains *TEE pools* to load-balance workload
requests across different types of TEEs.  Cloud provider users would
adjust the load-balancing policy to their internal needs."  A pool
holds the workers (VM slots) of one platform kind; the policy picks
which worker takes the next request.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import PoolExhaustedError, VmError
from repro.sim.faults import (
    FailureLog,
    FaultContext,
    FaultKind,
    FaultPlan,
    RetryPolicy,
)
from repro.sim.ledger import CostCategory
from repro.sim.rng import SimRng
from repro.sim.trace import Trace
from repro.tee.vm import Vm, VmState


class LoadBalancingPolicy(enum.Enum):
    """Worker selection strategies."""

    ROUND_ROBIN = "round-robin"
    LEAST_LOADED = "least-loaded"
    RANDOM = "random"

    @classmethod
    def parse(cls, name: str) -> "LoadBalancingPolicy":
        for policy in cls:
            if policy.value == name:
                return policy
        known = ", ".join(policy.value for policy in cls)
        raise ValueError(f"unknown policy {name!r}; known: {known}")


@dataclass
class Worker:
    """One VM slot in a pool."""

    vm: Vm
    port: int
    inflight: int = 0
    served: int = 0      # successful runs only
    failed: int = 0      # runs that raised
    #: whether this VM passed launch attestation (pools with an
    #: attestor admit each worker once, before its first dispatch)
    attested: bool = False


@dataclass
class TeePool:
    """The workers of one (platform, secure-flag) combination."""

    platform: str
    secure: bool
    policy: LoadBalancingPolicy = LoadBalancingPolicy.ROUND_ROBIN
    workers: list[Worker] = field(default_factory=list)
    _cursor: int = 0
    _rng: SimRng = field(default_factory=lambda: SimRng(0, "pool"))
    #: bounds the failover loop in :meth:`run_resilient`
    retry_policy: RetryPolicy = field(default_factory=RetryPolicy)
    #: optional ``worker -> Worker | None`` callable replacing an
    #: evicted worker (the gateway wires :meth:`Host.respawn_vm` here)
    respawn: "object | None" = None
    #: optional :class:`FaultPlan` injecting worker failures
    faults: FaultPlan | None = None
    #: supervision counters: dead workers removed / replacements added
    evictions: int = 0
    respawns: int = 0
    #: optional metrics sink (the :mod:`repro.obs` protocol); the
    #: gateway wires its registry in so pool supervision shows up in
    #: ``GET /v1/metrics``
    metrics: "object | None" = None
    #: optional :class:`~repro.attest.service.LaunchAttestor`; when set
    #: on a secure pool, each worker is attested before its first
    #: dispatch and the attestation latency is charged to the serving
    #: result's STARTUP bucket.  A respawned worker re-attests under
    #: the same port identity, so it *resumes* its predecessor's
    #: attestation session instead of paying the full flow again.
    attestor: "object | None" = None
    #: optional :class:`~repro.supply.LaunchProvisioner`; when set on a
    #: secure pool it replaces the bare attestor on first dispatch —
    #: the worker's admission then runs the whole supply chain
    #: (attest → KBS key release → image pull/verify/decrypt/unpack)
    #: and the full provisioning latency lands in STARTUP, putting the
    #: supply-chain tax on the boot critical path
    provisioner: "object | None" = None

    @property
    def side(self) -> str:
        """``"secure"`` or ``"normal"`` — the metric/display key."""
        return "secure" if self.secure else "normal"

    def _count(self, event: str, amount: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.count(
                f"pool.{self.platform}.{self.side}.{event}", amount)

    def add_worker(self, vm: Vm, port: int) -> Worker:
        """Register a booted VM as a pool worker."""
        worker = Worker(vm=vm, port=port)
        self.workers.append(worker)
        return worker

    def pick(self) -> Worker:
        """Select a worker per the active policy."""
        if not self.workers:
            raise PoolExhaustedError(
                f"pool {self.platform}/{'secure' if self.secure else 'normal'} "
                "has no workers"
            )
        if self.policy is LoadBalancingPolicy.ROUND_ROBIN:
            # keep the cursor bounded so eviction arithmetic stays exact
            index = self._cursor % len(self.workers)
            worker = self.workers[index]
            self._cursor = (index + 1) % len(self.workers)
        elif self.policy is LoadBalancingPolicy.LEAST_LOADED:
            worker = min(self.workers, key=lambda w: (w.inflight, w.served))
        else:
            worker = self._rng.choice(self.workers)
        return worker

    def run_on(self, worker: Worker, workload, name: str, trial: int,
               trace: Trace | None = None, faults: FaultContext | None = None):
        """Execute on a specific worker with load tracking.

        ``served`` counts *successful* runs only; a run that raises
        increments ``failed`` instead, so the least-loaded policy's
        view of past work is not inflated by dead attempts.
        """
        worker.inflight += 1
        try:
            result = worker.vm.run(workload, name=name, trial=trial,
                                   trace=trace, faults=faults)
        except Exception:
            worker.failed += 1
            raise
        finally:
            worker.inflight -= 1
        worker.served += 1
        return result

    def run_resilient(self, workload, name: str, trial: int):
        """Pick a worker and execute, failing over on dead VMs.

        A worker whose VM has been destroyed (or refuses to run) is
        evicted from the pool; if :attr:`respawn` is wired, a
        replacement worker is provisioned in its place, and the request
        is retried on the next pick — bounded by :attr:`retry_policy`
        rather than looping forever.  The wasted virtual time of the
        dead attempts plus the retry backoff is charged to the
        surviving result's STARTUP bucket (visible in ``total_ns``,
        excluded from the paper's ``elapsed_ns`` metric).

        With :attr:`faults` set, each attempt can inject a worker
        failure (the VM is destroyed just before dispatch) drawn from
        the plan's seeded substreams.

        Raises :class:`PoolExhaustedError` when no worker survives
        within the policy's bounds.
        """
        failures = FailureLog()
        injected: list[str] = []
        attempt = 0
        last_exc: Exception | None = None
        while self.retry_policy.allows(attempt, failures.surcharge_ns):
            try:
                worker = self.pick()
            except PoolExhaustedError as exc:
                last_exc = exc
                break
            faults = None
            if self.faults is not None and self.faults.active:
                side = "secure" if self.secure else "normal"
                faults = FaultContext(
                    self.faults,
                    f"pool/{self.platform}/{side}/{name}/t{trial}/a{attempt}",
                )
                if (faults.triggers(FaultKind.VM_CRASH, "worker")
                        and worker.vm.state is not VmState.DESTROYED):
                    worker.vm.state = VmState.DESTROYED
            admission_ns = self._admit_worker(worker)
            trace = Trace()
            failures.replay(trace)
            try:
                result = self.run_on(worker, workload, name=name, trial=trial,
                                     trace=trace, faults=faults)
            except VmError as exc:
                self.evict(worker)
                wasted = getattr(exc, "wasted_ns", 0.0)
                if self.respawn is not None:
                    replacement = self.respawn(worker)
                    if replacement is not None:
                        self.respawns += 1
                        self._count("respawns")
                        wasted += replacement.vm.boot_time_ns
                failures.add(type(exc).__name__, wasted_ns=wasted,
                             backoff_ns=self.retry_policy.backoff_ns(attempt))
                if faults is not None:
                    injected.extend(faults.injected)
                last_exc = exc
                attempt += 1
                continue
            if faults is not None:
                injected.extend(faults.injected)
            surcharge = failures.surcharge_ns + admission_ns
            if surcharge > 0:
                result.ledger.charge(CostCategory.STARTUP, surcharge)
                result.total_ns += surcharge
            if attempt or injected:
                result.attempts = attempt + 1
                result.faults_injected = tuple(injected)
            self._count("served")
            return result
        raise PoolExhaustedError(
            f"pool {self.platform}/{'secure' if self.secure else 'normal'}: "
            f"request {name!r} trial {trial} failed after {attempt} "
            f"attempt(s)"
        ) from last_exc

    def _admit_worker(self, worker: Worker) -> float:
        """Launch-attest a worker on its first dispatch.

        Returns the admission latency in virtual ns (0.0 when no
        attestor is wired, the pool is not secure, or the worker was
        already admitted).  The identity presented is the *port slot*,
        not the VM id, so a respawned replacement resumes the dead
        worker's attestation session — the same image on the same slot
        re-attests cheaply, exactly the warm-relaunch path the
        verifier service models.
        """
        if not self.secure or worker.attested:
            return 0.0
        if self.provisioner is not None:
            report = self.provisioner.provision(
                f"{self.platform}/port-{worker.port}")
            worker.attested = True
            self._count("attested")
            self._count("provisioned")
            if report.resumed:
                self._count("attest_resumed")
            return report.admission_ns
        if self.attestor is None:
            return 0.0
        admission = self.attestor.admit(
            f"{self.platform}/port-{worker.port}")
        worker.attested = True
        self._count("attested")
        if admission.verdict.resumed:
            self._count("attest_resumed")
        return admission.latency_ns

    def evict(self, worker: Worker) -> None:
        """Remove a failed worker from rotation.

        The round-robin cursor indexes into ``workers``, so deleting
        an entry must shift it in step — otherwise the eviction skips
        the healthy worker that slid into the evicted slot.
        """
        try:
            index = self.workers.index(worker)
        except ValueError:
            return   # already evicted by a concurrent path
        del self.workers[index]
        self.evictions += 1
        if not self.workers:
            self._cursor = 0
            return
        if index < self._cursor:
            self._cursor -= 1
        self._cursor %= len(self.workers)

    def total_served(self) -> int:
        return sum(worker.served for worker in self.workers)

    def total_failed(self) -> int:
        return sum(worker.failed for worker in self.workers)
