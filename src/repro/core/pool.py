"""TEE pools and load balancing.

§III-A: "the gateway maintains *TEE pools* to load-balance workload
requests across different types of TEEs.  Cloud provider users would
adjust the load-balancing policy to their internal needs."  A pool
holds the workers (VM slots) of one platform kind; the policy picks
which worker takes the next request.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import PoolExhaustedError
from repro.sim.rng import SimRng
from repro.tee.vm import Vm


class LoadBalancingPolicy(enum.Enum):
    """Worker selection strategies."""

    ROUND_ROBIN = "round-robin"
    LEAST_LOADED = "least-loaded"
    RANDOM = "random"

    @classmethod
    def parse(cls, name: str) -> "LoadBalancingPolicy":
        for policy in cls:
            if policy.value == name:
                return policy
        known = ", ".join(policy.value for policy in cls)
        raise ValueError(f"unknown policy {name!r}; known: {known}")


@dataclass
class Worker:
    """One VM slot in a pool."""

    vm: Vm
    port: int
    inflight: int = 0
    served: int = 0


@dataclass
class TeePool:
    """The workers of one (platform, secure-flag) combination."""

    platform: str
    secure: bool
    policy: LoadBalancingPolicy = LoadBalancingPolicy.ROUND_ROBIN
    workers: list[Worker] = field(default_factory=list)
    _cursor: int = 0
    _rng: SimRng = field(default_factory=lambda: SimRng(0, "pool"))

    def add_worker(self, vm: Vm, port: int) -> Worker:
        """Register a booted VM as a pool worker."""
        worker = Worker(vm=vm, port=port)
        self.workers.append(worker)
        return worker

    def pick(self) -> Worker:
        """Select a worker per the active policy."""
        if not self.workers:
            raise PoolExhaustedError(
                f"pool {self.platform}/{'secure' if self.secure else 'normal'} "
                "has no workers"
            )
        if self.policy is LoadBalancingPolicy.ROUND_ROBIN:
            worker = self.workers[self._cursor % len(self.workers)]
            self._cursor += 1
        elif self.policy is LoadBalancingPolicy.LEAST_LOADED:
            worker = min(self.workers, key=lambda w: (w.inflight, w.served))
        else:
            worker = self._rng.choice(self.workers)
        return worker

    def run_on(self, worker: Worker, workload, name: str, trial: int):
        """Execute on a specific worker with load tracking."""
        worker.inflight += 1
        try:
            return worker.vm.run(workload, name=name, trial=trial)
        finally:
            worker.inflight -= 1
            worker.served += 1

    def run_resilient(self, workload, name: str, trial: int):
        """Pick a worker and execute, failing over on dead VMs.

        A worker whose VM has been destroyed (or refuses to run) is
        evicted from the pool and the request is retried on the next
        pick — the load-balancing behaviour a cloud operator expects.
        Raises :class:`PoolExhaustedError` when every worker is dead.
        """
        from repro.errors import VmError

        while True:
            worker = self.pick()
            try:
                return self.run_on(worker, workload, name=name, trial=trial)
            except VmError:
                self.evict(worker)

    def evict(self, worker: Worker) -> None:
        """Remove a failed worker from rotation."""
        try:
            self.workers.remove(worker)
        except ValueError:
            pass   # already evicted by a concurrent path

    def total_served(self) -> int:
        return sum(worker.served for worker in self.workers)
