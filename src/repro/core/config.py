"""Gateway configuration.

§III-A: "a dedicated gateway configuration file maps TEEs and their
interface ports".  :class:`GatewayConfig` is that file's in-memory
form, JSON round-trippable so deployments can keep it on disk.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.errors import GatewayError


@dataclass
class PlatformEntry:
    """One execution platform the gateway can dispatch to."""

    platform: str            # registry name: tdx / sev-snp / cca / novm
    host: str                # host machine identifier
    base_port: int           # first port of this platform's VM range
    vm_count: int = 2        # secure + normal by default
    seed: int = 0

    def __post_init__(self) -> None:
        if not (1024 <= self.base_port <= 65000):
            raise GatewayError(f"base port out of range: {self.base_port}")
        if self.vm_count < 1:
            raise GatewayError(f"need at least one VM: {self.vm_count}")

    def ports(self) -> list[int]:
        """The destination ports assigned to this platform's VMs."""
        return list(range(self.base_port, self.base_port + self.vm_count))


@dataclass
class GatewayConfig:
    """The full gateway configuration."""

    entries: list[PlatformEntry] = field(default_factory=list)
    load_balancing: str = "round-robin"
    default_trials: int = 10        # the paper's 10 independent trials

    def __post_init__(self) -> None:
        if self.default_trials < 1:
            raise GatewayError(f"trials must be >= 1: {self.default_trials}")
        seen_ports: set[int] = set()
        for entry in self.entries:
            overlap = seen_ports.intersection(entry.ports())
            if overlap:
                raise GatewayError(f"port collision on {sorted(overlap)}")
            seen_ports.update(entry.ports())

    def entry_for(self, platform: str) -> PlatformEntry:
        """The configuration entry for a platform."""
        for entry in self.entries:
            if entry.platform == platform:
                return entry
        known = ", ".join(sorted(e.platform for e in self.entries))
        raise GatewayError(f"platform {platform!r} not configured (have: {known})")

    def platforms(self) -> list[str]:
        """Configured platform names, in entry order."""
        return [entry.platform for entry in self.entries]

    # -- JSON round-trip -------------------------------------------------

    def to_json(self) -> str:
        """Serialize to the on-disk configuration format."""
        return json.dumps(
            {
                "load_balancing": self.load_balancing,
                "default_trials": self.default_trials,
                "platforms": [
                    {
                        "platform": entry.platform,
                        "host": entry.host,
                        "base_port": entry.base_port,
                        "vm_count": entry.vm_count,
                        "seed": entry.seed,
                    }
                    for entry in self.entries
                ],
            },
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "GatewayConfig":
        """Parse the on-disk configuration format."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise GatewayError(f"bad gateway config JSON: {exc}") from exc
        entries = [
            PlatformEntry(
                platform=item["platform"],
                host=item["host"],
                base_port=item["base_port"],
                vm_count=item.get("vm_count", 2),
                seed=item.get("seed", 0),
            )
            for item in payload.get("platforms", [])
        ]
        return cls(
            entries=entries,
            load_balancing=payload.get("load_balancing", "round-robin"),
            default_trials=payload.get("default_trials", 10),
        )


def default_config(seed: int = 0) -> GatewayConfig:
    """The paper's testbed: TDX, SEV-SNP and CCA hosts plus a plain VM."""
    return GatewayConfig(entries=[
        PlatformEntry(platform="tdx", host="xeon-gold-5515",
                      base_port=9100, seed=seed),
        PlatformEntry(platform="sev-snp", host="epyc-9124",
                      base_port=9200, seed=seed),
        PlatformEntry(platform="cca", host="arm-fvp",
                      base_port=9300, seed=seed),
        PlatformEntry(platform="novm", host="xeon-gold-5515",
                      base_port=9400, seed=seed),
    ])
