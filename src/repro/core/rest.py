"""REST interface over real localhost HTTP.

§III-A: "users can submit workloads to execute via a REST-based
interface together with the corresponding runtime parameters".  The
paper's gateway is Rust/Axum; this one is the Python stdlib's
threading HTTP server, exposing:

- ``GET  /platforms``         — configured execution platforms
- ``GET  /functions``         — uploaded function names
- ``POST /functions``         — upload: ``{"name": ..., "languages": [...]}``
- ``POST /invoke``            — run: ``{"function", "language",
  "platform", "secure", "args", "trials"}``

Responses are JSON; errors come back as ``{"error": ...}`` with 4xx.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.core.gateway import Gateway, InvocationRequest
from repro.errors import ConfBenchError


class _Handler(BaseHTTPRequestHandler):
    """Request handler bound to one gateway via the server object."""

    server: "RestServer"

    # quiet the default stderr logging
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass

    def _send(self, status: int, payload) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length", "0"))
        raw = self.rfile.read(length) if length else b"{}"
        try:
            payload = json.loads(raw or b"{}")
        except json.JSONDecodeError as exc:
            raise ConfBenchError(f"bad JSON body: {exc}") from exc
        if not isinstance(payload, dict):
            raise ConfBenchError("request body must be a JSON object")
        return payload

    def do_GET(self) -> None:  # noqa: N802 - stdlib API
        gateway = self.server.gateway
        if self.path == "/platforms":
            self._send(200, gateway.platforms())
        elif self.path == "/functions":
            self._send(200, gateway.functions())
        elif self.path == "/health":
            self._send(200, {"status": "ok"})
        else:
            self._send(404, {"error": f"no such resource: {self.path}"})

    def do_POST(self) -> None:  # noqa: N802 - stdlib API
        gateway = self.server.gateway
        try:
            payload = self._read_json()
            if self.path == "/functions":
                name = payload.get("name")
                if not name:
                    raise ConfBenchError("upload needs a 'name'")
                languages = payload.get("languages")
                gateway.upload(
                    name,
                    tuple(languages) if languages is not None else None,
                )
                self._send(201, {"uploaded": name})
            elif self.path == "/invoke":
                request = InvocationRequest(
                    function=payload.get("function", ""),
                    language=payload.get("language"),
                    platform=payload.get("platform", "tdx"),
                    secure=bool(payload.get("secure", True)),
                    args=payload.get("args", {}),
                    trials=payload.get("trials"),
                )
                if not request.function:
                    raise ConfBenchError("invoke needs a 'function'")
                records = gateway.invoke(request)
                self._send(200, [record.to_dict() for record in records])
            else:
                self._send(404, {"error": f"no such resource: {self.path}"})
        except ConfBenchError as exc:
            self._send(400, {"error": str(exc)})


class RestServer(ThreadingHTTPServer):
    """A gateway bound to a localhost HTTP port."""

    daemon_threads = True

    def __init__(self, gateway: Gateway, port: int = 0,
                 host: str = "127.0.0.1") -> None:
        self.gateway = gateway
        super().__init__((host, port), _Handler)
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        return self.server_address[1]

    def start_background(self) -> None:
        """Serve on a daemon thread."""
        self._thread = threading.Thread(
            target=self.serve_forever, name=f"confbench-rest-{self.port}",
            daemon=True,
        )
        self._thread.start()

    def stop(self) -> None:
        """Shut the server down and join the thread."""
        self.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
        self.server_close()

    def __enter__(self) -> "RestServer":
        self.start_background()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
