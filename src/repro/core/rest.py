"""REST interface over real localhost HTTP.

§III-A: "users can submit workloads to execute via a REST-based
interface together with the corresponding runtime parameters".  The
paper's gateway is Rust/Axum; this one is the Python stdlib's
threading HTTP server.

The API is versioned under ``/v1``; the unprefixed legacy paths stay
as aliases to the same handlers:

- ``GET  /v1/health``         — liveness probe
- ``GET  /v1/platforms``      — configured execution platforms
- ``GET  /v1/functions``      — uploaded function names
- ``POST /v1/functions``      — upload: ``{"name": ..., "languages": [...]}``
- ``POST /v1/invoke``         — run: ``{"function", "language",
  "platform", "secure", "args", "trials"}``
- ``GET  /v1/metrics``        — the gateway's metrics-registry snapshot
- ``GET  /v1/stats``          — supervision counters (:class:`GatewayStats`)
- ``POST /v1/cluster/run``    — run one cluster sweep: ``{"hosts",
  "requests", "rate_rps", "process", "secure_fraction", "seed",
  "strategy", "signed"}`` (one sweep at a time; concurrent run → 429)
- ``GET  /v1/cluster/report`` — the last sweep's full report (404
  before any sweep has completed)
- ``POST /v1/kbs/release``    — attestation-gated key release:
  ``{"vm_id", "platform", "key_ids", "tamper_evidence"}``; a failed
  or forged attestation gets ``403 release_denied`` with the broker's
  typed ``reason`` in the envelope

Responses are JSON.  Errors use a uniform envelope::

    {"error": {"code": "bad_request", "message": "..."}}

with the proper status split: 400 for malformed/invalid bodies
(``bad_request``), 404 for unknown resources (``not_found``), and 405
with an ``Allow`` header for a known resource hit with the wrong
method (``method_not_allowed``).  ``POST /v1/invoke`` is strict: a
body field outside the documented set is a 400 (the legacy ``/invoke``
alias keeps ignoring unknown fields).

A gateway whose cross-invocation backlog is at capacity sheds the
request with 429 (``overloaded``): the envelope gains a deterministic
``retry_after_ns`` drain-time hint and the standard ``Retry-After``
header mirrors it in whole seconds — a shed with a record, never a
silent drop.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import math

from repro.core.gateway import Gateway, InvocationRequest
from repro.errors import (
    ConfBenchError,
    KeyReleaseDeniedError,
    OverloadedError,
)

#: resource path (version prefix stripped) -> {HTTP method: handler name}
_ROUTES: dict[str, dict[str, str]] = {
    "/health": {"GET": "health"},
    "/platforms": {"GET": "platforms"},
    "/functions": {"GET": "functions", "POST": "upload"},
    "/invoke": {"POST": "invoke"},
    "/metrics": {"GET": "metrics"},
    "/stats": {"GET": "stats"},
    "/cluster/run": {"POST": "cluster_run"},
    "/cluster/report": {"GET": "cluster_report"},
    "/kbs/release": {"POST": "kbs_release"},
}

#: the documented ``POST /v1/invoke`` body fields (strict mode)
_INVOKE_FIELDS = frozenset(
    {"function", "language", "platform", "secure", "args", "trials"})


class _Handler(BaseHTTPRequestHandler):
    """Request handler bound to one gateway via the server object."""

    server: "RestServer"

    # quiet the default stderr logging
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass

    # -- plumbing ------------------------------------------------------

    def _send(self, status: int, payload,
              headers: dict[str, str] | None = None) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, code: str, message: str,
               allow: list[str] | None = None) -> None:
        headers = {"Allow": ", ".join(allow)} if allow else None
        self._send(status, {"error": {"code": code, "message": message}},
                   headers=headers)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length", "0"))
        raw = self.rfile.read(length) if length else b"{}"
        try:
            payload = json.loads(raw or b"{}")
        except json.JSONDecodeError as exc:
            raise ConfBenchError(f"bad JSON body: {exc}") from exc
        if not isinstance(payload, dict):
            raise ConfBenchError("request body must be a JSON object")
        return payload

    def _dispatch(self, method: str) -> None:
        path = self.path.split("?", 1)[0]
        versioned = path == "/v1" or path.startswith("/v1/")
        if versioned:
            path = path[len("/v1"):] or "/"
        methods = _ROUTES.get(path)
        if methods is None:
            self._error(404, "not_found", f"no such resource: {self.path}")
            return
        name = methods.get(method)
        if name is None:
            self._error(405, "method_not_allowed",
                        f"{method} is not allowed on {path}",
                        allow=sorted(methods))
            return
        try:
            getattr(self, f"_handle_{name}")(versioned)
        except OverloadedError as exc:
            # shed with a record, never silently: the envelope carries
            # the deterministic drain-time hint and the standard
            # Retry-After header mirrors it in (rounded-up) seconds
            self._send(429, {"error": {
                "code": "overloaded",
                "message": str(exc),
                "retry_after_ns": exc.retry_after_ns,
            }}, headers={
                "Retry-After": str(max(
                    1, math.ceil(exc.retry_after_ns / 1e9))),
            })
        except KeyReleaseDeniedError as exc:
            # an attestation-gated refusal, not a malformed request:
            # 403 with the broker's typed reason in the envelope
            self._send(403, {"error": {
                "code": "release_denied",
                "message": str(exc),
                "reason": exc.reason,
            }})
        except ConfBenchError as exc:
            self._error(400, "bad_request", str(exc))

    def do_GET(self) -> None:  # noqa: N802 - stdlib API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - stdlib API
        self._dispatch("POST")

    def do_PUT(self) -> None:  # noqa: N802 - stdlib API
        self._dispatch("PUT")

    def do_DELETE(self) -> None:  # noqa: N802 - stdlib API
        self._dispatch("DELETE")

    # -- handlers ------------------------------------------------------

    def _handle_health(self, versioned: bool) -> None:
        self._send(200, {"status": "ok"})

    def _handle_platforms(self, versioned: bool) -> None:
        self._send(200, self.server.gateway.platforms())

    def _handle_functions(self, versioned: bool) -> None:
        self._send(200, self.server.gateway.functions())

    def _handle_metrics(self, versioned: bool) -> None:
        registry = getattr(self.server.gateway, "metrics", None)
        if registry is None:
            self._send(200, {"counters": {}, "gauges": {}, "histograms": {}})
            return
        self._send(200, registry.snapshot())

    def _handle_stats(self, versioned: bool) -> None:
        self._send(200, self.server.gateway.stats.to_dict())

    def _handle_upload(self, versioned: bool) -> None:
        payload = self._read_json()
        name = payload.get("name")
        if not name or not isinstance(name, str):
            raise ConfBenchError("upload needs a 'name'")
        languages = payload.get("languages")
        self.server.gateway.upload(
            name,
            tuple(languages) if languages is not None else None,
        )
        self._send(201, {"uploaded": name})

    def _handle_invoke(self, versioned: bool) -> None:
        payload = self._read_json()
        if versioned:
            unknown = sorted(set(payload) - _INVOKE_FIELDS)
            if unknown:
                raise ConfBenchError(
                    f"unknown invoke field(s): {', '.join(unknown)}; "
                    f"allowed: {', '.join(sorted(_INVOKE_FIELDS))}")
        function = payload.get("function", "")
        if not function or not isinstance(function, str):
            raise ConfBenchError("invoke needs a 'function'")
        args = payload.get("args", {})
        if args is None:
            args = {}
        if not isinstance(args, dict):
            raise ConfBenchError("'args' must be a JSON object")
        trials = payload.get("trials")
        if trials is not None and (isinstance(trials, bool)
                                   or not isinstance(trials, int)):
            raise ConfBenchError("'trials' must be an integer")
        request = InvocationRequest(
            function=function,
            language=payload.get("language"),
            platform=payload.get("platform", "tdx"),
            secure=bool(payload.get("secure", True)),
            args=args,
            trials=trials,
        )
        records = self.server.gateway.invoke(request)
        self._send(200, [record.to_dict() for record in records])

    def _handle_cluster_run(self, versioned: bool) -> None:
        payload = self._read_json()
        self._send(200, self.server.gateway.cluster().run(payload))

    def _handle_cluster_report(self, versioned: bool) -> None:
        report = self.server.gateway.cluster().report()
        if report is None:
            self._error(404, "not_found",
                        "no cluster sweep has completed yet; "
                        "POST /v1/cluster/run first")
            return
        self._send(200, report)

    def _handle_kbs_release(self, versioned: bool) -> None:
        payload = self._read_json()
        self._send(200, self.server.gateway.cluster().kbs_release(payload))


class RestServer(ThreadingHTTPServer):
    """A gateway bound to a localhost HTTP port."""

    daemon_threads = True

    def __init__(self, gateway: Gateway, port: int = 0,
                 host: str = "127.0.0.1") -> None:
        self.gateway = gateway
        super().__init__((host, port), _Handler)
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        return self.server_address[1]

    def start_background(self) -> None:
        """Serve on a daemon thread."""
        self._thread = threading.Thread(
            target=self.serve_forever, name=f"confbench-rest-{self.port}",
            daemon=True,
        )
        self._thread.start()

    def stop(self) -> None:
        """Shut the server down and join the thread."""
        self.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
        self.server_close()

    def __enter__(self) -> "RestServer":
        self.start_background()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
