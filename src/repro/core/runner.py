"""Unified trial-execution pipeline: TrialPlan → TrialRunner.

The paper's methodology has one fixed shape — boot a secure/normal VM
pair per platform, run N independent trials per (workload, runtime)
cell, aggregate — and every harness used to re-implement that loop by
hand.  This module lifts it into three pieces:

- :class:`TrialSpec` — a declarative, content-hashable description of
  ONE trial: (kind, platform, secure, workload, runtime, trial index,
  root seed, parameters).  A spec fully determines its result: the
  per-trial RNG substream is derived from the spec alone, never from
  VM identity or execution order.
- :class:`TrialPlan` — an ordered tuple of specs.  The standard
  builder (:meth:`TrialPlan.matrix`) interleaves (secure, normal) per
  trial index, the ordering the paper's matched-trials methodology
  implies.
- :class:`TrialRunner` — executes a plan through a pluggable executor:
  :class:`SerialTrialExecutor` (default) or the
  :class:`ParallelTrialExecutor` backed by a ``ProcessPoolExecutor``
  with a ``jobs`` knob.  Because every trial is a pure function of its
  spec, parallel and serial execution produce bit-identical results.

Workload *bodies* (the callables a VM executes) cannot be pickled to
worker processes, so specs reference them declaratively through a
body-factory registry keyed by ``kind``; workers rebuild (and memoize)
the body from the spec.  Use :func:`body_factory` to register custom
kinds.
"""

from __future__ import annotations

import hashlib
import inspect
import json
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from functools import lru_cache
from typing import Any, Callable, Iterator, Protocol, Sequence

from repro.errors import (
    AttestationError,
    GatewayError,
    TrialBudgetError,
    VmCrashError,
)
from repro.hw.perfcounters import PerfCounters
from repro.obs.metrics import MetricsRegistry
from repro.sim.faults import (
    DEFAULT_RETRY_POLICY,
    FailureLog,
    FaultContext,
    FaultPlan,
)
from repro.sim.ledger import CostCategory, CostLedger
from repro.sim.rng import SimRng, derive_seed
from repro.sim.trace import Trace
from repro.tee.base import VmConfig
from repro.tee.registry import platform_by_name
from repro.tee.vm import RunResult


class RunnerError(GatewayError):
    """Errors from the trial-execution pipeline."""


# ---------------------------------------------------------------------------
# Trial specs and plans
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TrialSpec:
    """A declarative description of one independent trial.

    ``params_json`` is a canonical (sorted-key) JSON encoding of the
    body parameters so that specs stay hashable and their content hash
    is stable; build specs through :meth:`make` to get the
    canonicalisation for free.
    """

    kind: str                   # body-factory key ("faas", "ml", ...)
    platform: str               # TEE platform name ("tdx", "sev-snp", ...)
    secure: bool                # confidential vs normal VM
    workload: str               # workload name within the kind
    runtime: str | None         # language runtime; None for classic
    trial: int                  # trial index within the cell
    seed: int                   # experiment root seed
    params_json: str = "{}"     # canonical JSON of body parameters
    contention: float = 1.0     # host oversubscription factor
    faults: str = ""            # canonical fault-plan spec; "" = none
    budget_ns: float = 0.0      # virtual-time watchdog deadline; 0 = none

    @classmethod
    def make(cls, kind: str, platform: str, secure: bool, workload: str,
             trial: int, seed: int, runtime: str | None = None,
             params: dict[str, Any] | None = None,
             contention: float = 1.0,
             budget_ns: float = 0.0) -> "TrialSpec":
        """Build a spec, canonicalising ``params`` into JSON."""
        if trial < 0:
            raise RunnerError(f"trial index must be >= 0, got {trial}")
        if budget_ns < 0:
            raise RunnerError(f"budget must be >= 0, got {budget_ns}")
        return cls(
            kind=kind, platform=platform, secure=secure, workload=workload,
            runtime=runtime, trial=trial, seed=seed,
            params_json=json.dumps(params or {}, sort_keys=True,
                                   separators=(",", ":")),
            contention=contention,
            budget_ns=budget_ns,
        )

    @property
    def params(self) -> dict[str, Any]:
        """The decoded body parameters."""
        return json.loads(self.params_json)

    @property
    def run_name(self) -> str:
        """The workload name recorded on results (matches the legacy
        harnesses: FaaS cells are ``workload/runtime``)."""
        if self.runtime is not None:
            return f"{self.workload}/{self.runtime}"
        return self.workload

    @property
    def cell(self) -> tuple[str, str, str | None, bool]:
        """Aggregation key: (platform, workload, runtime, secure)."""
        return (self.platform, self.workload, self.runtime, self.secure)

    def derived_seed(self) -> int:
        """The per-trial seed, a pure function of the spec.

        Derived from (root seed, kind, workload, runtime, platform,
        secure, trial) — NOT from VM identity or how many other trials
        ran before this one — so trial K's jitter is unchanged when the
        total trial count changes and when trials run out of order on
        the parallel executor.
        """
        return derive_seed(self.seed, self._stream_label())

    def _stream_label(self) -> str:
        side = "secure" if self.secure else "normal"
        return (f"trial/{self.kind}/{self.workload}/"
                f"{self.runtime or 'native'}/{self.platform}/{side}/"
                f"{self.trial}")

    def rng(self) -> SimRng:
        """The trial's independent RNG substream."""
        return SimRng(self.seed, self._stream_label())

    def fault_plan(self) -> FaultPlan | None:
        """The decoded fault plan, or None when no faults are set."""
        if not self.faults:
            return None
        return FaultPlan.parse(self.faults)

    def content_hash(self) -> str:
        """Stable digest of everything that determines the result."""
        blob = {
            "kind": self.kind,
            "platform": self.platform,
            "secure": self.secure,
            "workload": self.workload,
            "runtime": self.runtime,
            "trial": self.trial,
            "seed": self.seed,
            "params": self.params_json,
            "contention": self.contention,
        }
        # only non-default fields enter the digest, so every
        # pre-existing cache/journal entry stays addressable under its
        # original hash
        if self.faults:
            blob["faults"] = self.faults
        if self.budget_ns:
            blob["budget_ns"] = self.budget_ns
        encoded = json.dumps(blob, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(encoded.encode()).hexdigest()


@dataclass(frozen=True)
class TrialPlan:
    """An ordered collection of trial specs (the unit a runner runs)."""

    specs: tuple[TrialSpec, ...]

    def __post_init__(self) -> None:
        if not self.specs:
            raise RunnerError("a trial plan needs at least one spec")

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self) -> Iterator[TrialSpec]:
        return iter(self.specs)

    def content_hash(self) -> str:
        """Digest over the member specs, order-sensitive."""
        digest = hashlib.sha256()
        for spec in self.specs:
            digest.update(spec.content_hash().encode())
        return digest.hexdigest()

    def with_faults(self, spec: "str | FaultPlan") -> "TrialPlan":
        """A copy of this plan with a fault plan applied to every spec.

        ``spec`` is canonicalised (parse → :meth:`FaultPlan.to_spec`)
        so equivalent spellings of the same plan hash identically.
        """
        canonical = FaultPlan.parse(spec).to_spec()
        return TrialPlan(specs=tuple(
            replace(member, faults=canonical) for member in self.specs
        ))

    def with_budget(self, budget_ns: float) -> "TrialPlan":
        """A copy with a virtual-time watchdog deadline on every spec.

        A trial whose attempt exceeds ``budget_ns`` of virtual time is
        treated as stuck and killed at the deadline (see
        :func:`execute_trial`).  Like fault plans, the budget enters
        the content hash only when set, so unbudgeted hashes are
        untouched.
        """
        if budget_ns < 0:
            raise RunnerError(f"budget must be >= 0, got {budget_ns}")
        return TrialPlan(specs=tuple(
            replace(member, budget_ns=float(budget_ns))
            for member in self.specs
        ))

    @classmethod
    def matrix(
        cls,
        kind: str,
        platforms: Sequence[str],
        workloads: Sequence[str],
        trials: int,
        seed: int,
        runtimes: Sequence[str | None] = (None,),
        secure_modes: Sequence[bool] = (True, False),
        params: dict[str, Any] | None = None,
        contention: float = 1.0,
        budget_ns: float = 0.0,
    ) -> "TrialPlan":
        """The standard experiment sweep.

        Ordering is platform → runtime → workload → trial →
        (secure, normal): matched secure/normal trials are adjacent
        per trial index (satisfying the paper's matched-trials
        methodology) and whole cells stay contiguous for aggregation.
        """
        if trials < 1:
            raise RunnerError(f"need at least one trial, got {trials}")
        specs = tuple(
            TrialSpec.make(kind=kind, platform=platform, secure=secure,
                           workload=workload, runtime=runtime, trial=trial,
                           seed=seed, params=params, contention=contention,
                           budget_ns=budget_ns)
            for platform in platforms
            for runtime in runtimes
            for workload in workloads
            for trial in range(trials)
            for secure in secure_modes
        )
        return cls(specs=specs)


# ---------------------------------------------------------------------------
# Body factories: declarative workload → executable body
# ---------------------------------------------------------------------------

_BODY_FACTORIES: dict[str, Callable[[TrialSpec], Callable]] = {}


def body_factory(kind: str):
    """Register a body factory for a spec ``kind``.

    The factory receives the spec and returns the VM-executable body
    (a callable taking the guest kernel).  Factories must be
    importable at module scope — worker processes re-import this
    module to rebuild bodies — and the returned body must be reusable
    across trials (it is memoized per unique spec parameters).
    """

    def decorate(factory: Callable[[TrialSpec], Callable]):
        _BODY_FACTORIES[kind] = factory
        return factory

    return decorate


@lru_cache(maxsize=128)
def _cached_body(kind: str, workload: str, runtime: str | None,
                 params_json: str, platform: str) -> Callable:
    factory = _BODY_FACTORIES.get(kind)
    if factory is None:
        known = ", ".join(sorted(_BODY_FACTORIES)) or "(none)"
        raise RunnerError(f"unknown trial kind {kind!r}; registered: {known}")
    spec = TrialSpec(kind=kind, platform=platform, secure=True,
                     workload=workload, runtime=runtime, trial=0, seed=0,
                     params_json=params_json)
    return factory(spec)


def build_body(spec: TrialSpec) -> Callable:
    """Resolve (and memoize) the executable body for a spec.

    Memoization keys on everything body construction may read — kind,
    workload, runtime, params, platform — but NOT on trial/seed/secure,
    so expensive setup (e.g. the Fig. 3 model + dataset) happens once
    per worker process rather than once per trial.
    """
    return _cached_body(spec.kind, spec.workload, spec.runtime,
                        spec.params_json, spec.platform)


@body_factory("faas")
def _faas_body(spec: TrialSpec) -> Callable:
    """A FaaS function under a language runtime (Figs. 6/7/8)."""
    from repro.core.launcher import FunctionLauncher
    from repro.workloads.faas.registry import workload_by_name

    if spec.runtime is None:
        raise RunnerError("faas trials need a runtime (language)")
    workload = workload_by_name(spec.workload)
    launcher = FunctionLauncher.for_language(spec.runtime)
    return launcher.launch(workload, spec.params.get("args") or None)


@body_factory("ml")
def _ml_body(spec: TrialSpec) -> Callable:
    """MobileNet inference over the synthetic image set (Fig. 3)."""
    from repro.workloads.ml import (
        MobileNetLite,
        generate_dataset,
        run_inference_workload,
    )

    params = spec.params
    model = MobileNetLite(seed=params.get("model_seed", 0))
    dataset = generate_dataset(count=params.get("count", 40),
                               side=params.get("side", 296),
                               seed=params.get("dataset_seed", 0))

    def body(kernel):
        return [
            r.elapsed_ns
            for r in run_inference_workload(kernel, model, dataset)
        ]

    return body


@body_factory("unixbench")
def _unixbench_body(spec: TrialSpec) -> Callable:
    """The UnixBench-style suite (Fig. 4)."""
    from repro.workloads.unixbench import run_unixbench

    scale = spec.params.get("scale", 1.0)
    engine = spec.params.get("engine", "batch")

    def body(kernel):
        report = run_unixbench(kernel, scale=scale, engine=engine)
        return {
            "index": report.system_index,
            "tests": {s.key: s.elapsed_ns for s in report.scores},
        }

    return body


@body_factory("speedtest")
def _speedtest_body(spec: TrialSpec) -> Callable:
    """The mini-DBMS speedtest suite (§IV-C table)."""
    from repro.workloads.dbms import Database, KernelCostHooks, run_speedtest
    from repro.workloads.dbms.speedtest import DEFAULT_SIZE

    size = spec.params.get("size", DEFAULT_SIZE)

    def body(kernel):
        database = Database(hooks=KernelCostHooks(kernel))
        return [
            (r.test_id, r.name, r.elapsed_ns)
            for r in run_speedtest(database, size=size,
                                   clock=kernel.ctx.elapsed_ns)
        ]

    return body


@body_factory("attestation")
def _attestation_body(spec: TrialSpec) -> Callable:
    """One attest + check round, phases traced as sub-spans (Fig. 5)."""
    from repro.attest import (
        AmdKeyInfrastructure,
        IntelPcs,
        QuotingEnclave,
        SnpVerifier,
        TdxVerifier,
        generate_snp_report,
        generate_tdx_quote,
    )
    from repro.errors import AttestationError
    from repro.sim.faults import CircuitBreaker
    from repro.tee.sevsnp import AmdSecureProcessor
    from repro.tee.tdx import TdxModule

    flavor = spec.workload
    if flavor not in ("tdx-attestation", "snp-attestation"):
        raise RunnerError(f"unknown attestation flavor {flavor!r}")
    # The signing infrastructure (Intel PCS, AMD key hierarchy) is
    # long-lived in reality: its keys do not change between trials.
    # Deriving its stream from a params-level seed — not the per-trial
    # stream — keeps the keys identical across trials (so the keygen
    # cache in repro.attest.crypto hits), while rebuilding the objects
    # per trial keeps each trial a pure function of its spec.
    infra_seed = spec.params.get("infra_seed", 0)

    def body(kernel):
        ctx = kernel.ctx
        infra_rng = SimRng(infra_seed, f"attest-infra/{flavor}")
        nonce = ctx.rng.child("nonce").bytes(16)
        trace = ctx.trace
        # One breaker per trial, seeded from the trial's own stream so
        # its cooldown jitter is a pure function of the spec.  Scoping
        # it to the trial (not the shared infrastructure) preserves the
        # purity contract: no state leaks between trials.
        breaker_seed = derive_seed(ctx.rng.seed, f"{ctx.rng.label}/breaker")
        if flavor == "tdx-attestation":
            pcs = IntelPcs(
                infra_rng,
                breaker=CircuitBreaker("pcs", seed=breaker_seed, trace=trace),
            )
            qe = QuotingEnclave(pcs, infra_rng)
            module = TdxModule()
            with trace.span("attest", ctx):
                evidence = generate_tdx_quote(module, qe, pcs, ctx, nonce)
            with trace.span("check", ctx):
                verdict = TdxVerifier(pcs).verify(
                    evidence, ctx, expected_report_data=nonce)
        else:
            keys = AmdKeyInfrastructure(infra_rng)
            amd_sp = AmdSecureProcessor()
            with trace.span("attest", ctx):
                evidence = generate_snp_report(amd_sp, keys, ctx, nonce)
            with trace.span("check", ctx):
                verdict = SnpVerifier(
                    keys,
                    breaker=CircuitBreaker(
                        "vcek", seed=breaker_seed, trace=trace),
                ).verify(evidence, ctx, expected_report_data=nonce)
        if not verdict.accepted:
            raise AttestationError(
                f"{flavor}: verification unexpectedly rejected")
        return {"accepted": verdict.accepted}

    return body


@body_factory("attestation-service")
def _attestation_service_body(spec: TrialSpec) -> Callable:
    """A fleet's worth of launches through the verifier service.

    One trial models the Fig. 5 extension scenario end to end: two
    verifier hosts share a cluster CDN tier in front of one PCS
    origin, and three launch waves exercise every cache tier —

    1. wave 1 on host A: the first tenant pays the origin fetches,
       the rest hit the warmed host tier;
    2. wave 2 on host B: a cold host tier but a warm CDN — every
       launch resolves collateral one LAN hop away;
    3. wave 3 on host A: the same tenants return and resume their
       attestation sessions, skipping evidence generation and
       verification entirely.

    SNP has no networked collateral, so its scenario is two waves:
    full local verification, then session resumption.  The body
    returns per-tier latencies plus the service/tier counters and a
    reconciliation flag (origin fetches vs clean ``request_log``
    entries) so the experiment can fold them deterministically.
    """
    from repro.attest import (
        AmdKeyInfrastructure,
        IntelPcs,
        QuotingEnclave,
        SnpVerifier,
        TdxVerifier,
        VerificationJob,
        VerifierService,
        generate_snp_report,
        generate_tdx_quote,
    )
    from repro.attest.service import TieredCollateral
    from repro.attest.tiers import TierStore
    from repro.errors import AttestationError
    from repro.sim.faults import CircuitBreaker
    from repro.tee.sevsnp import AmdSecureProcessor
    from repro.tee.tdx import TdxModule

    flavor = spec.workload
    if flavor not in ("tdx-attestation", "snp-attestation"):
        raise RunnerError(f"unknown attestation flavor {flavor!r}")
    infra_seed = spec.params.get("infra_seed", 0)
    tenants = spec.params.get("tenants", 3)
    concurrency = spec.params.get("concurrency", 2)
    wave_gap_ns = 1_000_000.0  # launches arrive 1 ms apart within a wave

    def body(kernel):
        ctx = kernel.ctx
        trace = ctx.trace
        infra_rng = SimRng(infra_seed, f"attest-service-infra/{flavor}")
        breaker_seed = derive_seed(ctx.rng.seed, f"{ctx.rng.label}/breaker")
        tiers: dict[str, list[float]] = {}
        queue_waits: list[float] = []
        counters: dict[str, int] = {}

        def fold(verdicts):
            # per-tier table uses verify_ns (the attestation cost the
            # tier determines); queue waits are load, tracked apart
            for verdict in verdicts:
                if not verdict.accepted:
                    raise AttestationError(
                        f"{flavor}: service unexpectedly rejected "
                        f"{verdict.measurement}")
                tiers.setdefault(verdict.tier, []).append(verdict.verify_ns)
                queue_waits.append(verdict.queue_wait_ns)

        def add_counters(prefix, stats):
            for name, value in stats.items():
                counters[f"{prefix}.{name}"] = value

        measurements = [f"tenant-{index}" for index in range(tenants)]

        if flavor == "tdx-attestation":
            pcs = IntelPcs(
                infra_rng,
                breaker=CircuitBreaker("pcs", seed=breaker_seed, trace=trace),
            )
            qe = QuotingEnclave(pcs, infra_rng)
            module = TdxModule()
            cdn = TierStore("cluster-cdn")

            def make_service(host: str) -> VerifierService:
                collateral = TieredCollateral(pcs, cdn=cdn)
                return VerifierService(
                    f"tdx-{host}",
                    TdxVerifier(pcs, collateral=collateral),
                    collateral=collateral,
                    concurrency=concurrency,
                )

            def make_jobs(wave: int):
                jobs = []
                for index, measurement in enumerate(measurements):
                    nonce = ctx.rng.child(
                        f"nonce/w{wave}/{measurement}").bytes(16)

                    def build(c, m=measurement, n=nonce):
                        return generate_tdx_quote(module, qe, pcs, c, n,
                                                  td_identity=m)

                    jobs.append(VerificationJob(
                        measurement=measurement, nonce=nonce,
                        build_evidence=build,
                        arrival_ns=index * wave_gap_ns))
                return jobs

            host_a = make_service("host-a")
            host_b = make_service("host-b")
            with trace.span("wave1-host-a", ctx):
                fold(host_a.process_batch(make_jobs(1), ctx))
            with trace.span("wave2-host-b", ctx):
                fold(host_b.process_batch(make_jobs(2), ctx))
            with trace.span("wave3-resume", ctx):
                fold(host_a.process_batch(make_jobs(3), ctx))
            add_counters("service.host-a", host_a.stats)
            add_counters("service.host-b", host_b.stats)
            add_counters("sessions.host-a", host_a.sessions.stats)
            add_counters("sessions.host-b", host_b.sessions.stats)
            add_counters("collateral.host-a", host_a.collateral.stats)
            add_counters("collateral.host-b", host_b.collateral.stats)
            origin_fetches = (host_a.collateral.stats["origin.fetches"]
                              + host_b.collateral.stats["origin.fetches"])
            clean_log_entries = sum(
                1 for entry in pcs.request_log if "!" not in entry)
            queue_depth_peak = max(host_a.queue_depth_peak,
                                   host_b.queue_depth_peak)
        else:
            keys = AmdKeyInfrastructure(infra_rng)
            amd_sp = AmdSecureProcessor()
            service = VerifierService(
                "snp-host-a",
                SnpVerifier(
                    keys,
                    breaker=CircuitBreaker("vcek", seed=breaker_seed,
                                           trace=trace),
                ),
                concurrency=concurrency,
            )

            def make_jobs(wave: int):
                jobs = []
                for index, measurement in enumerate(measurements):
                    nonce = ctx.rng.child(
                        f"nonce/w{wave}/{measurement}").bytes(16)

                    def build(c, m=measurement, n=nonce):
                        return generate_snp_report(amd_sp, keys, c, n,
                                                   guest_identity=m)

                    jobs.append(VerificationJob(
                        measurement=measurement, nonce=nonce,
                        build_evidence=build,
                        arrival_ns=index * wave_gap_ns))
                return jobs

            with trace.span("wave1-verify", ctx):
                fold(service.process_batch(make_jobs(1), ctx))
            with trace.span("wave2-resume", ctx):
                fold(service.process_batch(make_jobs(2), ctx))
            add_counters("service.host-a", service.stats)
            add_counters("sessions.host-a", service.sessions.stats)
            origin_fetches = 0
            clean_log_entries = 0
            queue_depth_peak = service.queue_depth_peak

        return {
            "tiers": {tier: sorted(values)
                      for tier, values in sorted(tiers.items())},
            "queue_wait_ns": queue_waits,
            "counters": dict(sorted(counters.items())),
            "reconciled": origin_fetches == clean_log_entries,
            "origin_fetches": origin_fetches,
            "clean_log_entries": clean_log_entries,
            "queue_depth_peak": queue_depth_peak,
        }

    return body


@body_factory("supplychain")
def _supplychain_body(spec: TrialSpec) -> Callable:
    """One platform's image supply chain on the boot critical path.

    The fig10 scenario: a deterministic OCI-style image is published
    to a WAN registry, its layer keys escrowed with a Key Broker
    Service fronting the platform's verifier service, and two waves
    of VM launches run the full chain:

    1. wave 1 (cold): each launch attests, gets its keys released,
       and pulls the image under ``spec.workload`` (``eager`` pulls
       every chunk at boot; ``lazy`` bootstraps one chunk per layer);
    2. wave 2 (warm relaunch): the same VM identities return — their
       attestation sessions resume (PR 8), so key release skips
       evidence, verification, and the collateral origin round-trip.

    Secure trials sign + encrypt the image and gate keys on a real
    ``attest.service`` verdict; normal trials pull the same bytes
    unsigned and in plaintext with no KBS involved — the
    secure-vs-normal separation is exactly the supply chain's
    attestation tax.  Lazy trials additionally replay a deterministic
    warm-path access pattern against the lazily-materialized image,
    charging chunk faults to the trial's own ledger.

    The body returns per-wave boot latencies plus every service/KBS/
    registry counter and reconciliation flags (KBS releases vs clean
    KBS log entries, registry fetches vs clean registry log entries,
    collateral origin fetches vs clean PCS log entries) so the
    experiment can verify the counters against the request logs
    exactly.
    """
    from repro.attest.crypto import derived_keypair
    from repro.attest.service import LaunchAttestor
    from repro.supply import (
        KeyBrokerService,
        LaunchProvisioner,
        Registry,
        build_image,
        sign_image,
    )

    # body memoization keys on workload but NOT spec.secure, so the
    # mode is part of the workload name: "<strategy>-<side>"
    flavor, _, side = spec.workload.partition("-")
    if flavor not in ("eager", "lazy") or side not in ("secure",
                                                       "normal"):
        raise RunnerError(
            f"unknown supply-chain workload {spec.workload!r}; expected "
            "<eager|lazy>-<secure|normal>")
    platform = spec.platform
    secure = side == "secure"
    infra_seed = spec.params.get("infra_seed", 0)
    vms = spec.params.get("vms", 3)
    accesses = spec.params.get("accesses", 6)

    def body(kernel):
        ctx = kernel.ctx
        infra_rng = SimRng(infra_seed,
                           f"supply-infra/{platform}/{flavor}/{side}")
        bundle = build_image("confapp", "v1", infra_rng.child("image"),
                             encrypted=secure)
        publisher = None
        if secure:
            publisher = derived_keypair(infra_rng.child("publisher"),
                                        "publisher")
            sign_image(bundle, publisher)
        registry = Registry()
        registry.push(bundle)
        attestor = LaunchAttestor(platform, seed=infra_seed)
        kbs = KeyBrokerService(attestor.service)
        kbs.register_bundle(bundle)
        provisioner = LaunchProvisioner(
            attestor, registry, kbs, ("confapp", "v1"),
            publisher_key=publisher.public if publisher else None,
            strategy=flavor, key_ids=bundle.manifest.key_ids)

        def launch(vm_id: str):
            """One boot → (admission_ns, resumed, pull report, image).

            Normal trials skip attestation + KBS: the pull happens on
            a bare admission context, unsigned and in plaintext.
            """
            if secure:
                report = provisioner.provision(vm_id)
                return (report.admission_ns, report.resumed,
                        report.pull, report.image)
            from repro.guestos.filesystem import InMemoryFileSystem

            boot_ctx = attestor.admission_context(vm_id)
            fs = InMemoryFileSystem()
            pulled = provisioner.puller().pull("confapp", "v1", fs,
                                               boot_ctx)
            report = getattr(pulled, "report", pulled)
            image = pulled if flavor == "lazy" else None
            return boot_ctx.ledger.total(), False, report, image

        boots: dict[str, list[float]] = {"wave1": [], "wave2": []}
        resumed = 0
        chunk_faults = 0
        chunks_fetched = 0
        bytes_pulled = 0
        with ctx.trace.span("wave1-cold", ctx):
            for index in range(vms):
                admission_ns, _, pull, image = launch(f"vm-{index}")
                boots["wave1"].append(admission_ns)
                chunks_fetched += pull.chunks_fetched
                bytes_pulled += pull.bytes_pulled
                if image is not None:
                    fault_rng = ctx.rng.child(f"faults/w1/vm-{index}")
                    manifest = image.manifest
                    for _ in range(accesses):
                        layer = fault_rng.randint(
                            0, len(manifest.layers) - 1)
                        chunk = fault_rng.randint(
                            0, len(manifest.layers[layer].chunks) - 1)
                        if image.access(layer, chunk, ctx):
                            chunk_faults += 1
                            chunks_fetched += 1
        with ctx.trace.span("wave2-relaunch", ctx):
            for index in range(vms):
                admission_ns, was_resumed, pull, _ = launch(
                    f"vm-{index}")
                boots["wave2"].append(admission_ns)
                chunks_fetched += pull.chunks_fetched
                bytes_pulled += pull.bytes_pulled
                if was_resumed:
                    resumed += 1

        counters: dict[str, int] = {}

        def add_counters(prefix, stats):
            for name, value in stats.items():
                counters[f"{prefix}.{name}"] = value

        add_counters("kbs", kbs.stats)
        add_counters("registry", registry.stats)
        add_counters("service", attestor.service.stats)
        add_counters("sessions", attestor.service.sessions.stats)
        if attestor.collateral is not None:
            add_counters("collateral", attestor.collateral.stats)
        add_counters("provisioner", provisioner.stats)

        kbs_reconciled = kbs.stats["released"] == kbs.clean_log_entries()
        registry_reconciled = (
            registry.stats["manifest_fetches"]
            + registry.stats["chunk_fetches"]
            == registry.clean_log_entries())
        if secure and attestor.pcs is not None:
            origin_fetches = attestor.collateral.stats["origin.fetches"]
            clean_pcs_entries = sum(
                1 for entry in attestor.pcs.request_log
                if "!" not in entry)
            pcs_reconciled = origin_fetches == clean_pcs_entries
        else:
            origin_fetches = 0
            clean_pcs_entries = 0
            pcs_reconciled = True

        return {
            "boot_ns": {wave: list(values)
                        for wave, values in sorted(boots.items())},
            "bytes_pulled": bytes_pulled,
            "chunk_faults": chunk_faults,
            "chunks_fetched": chunks_fetched,
            "clean_pcs_entries": clean_pcs_entries,
            "counters": dict(sorted(counters.items())),
            "origin_fetches": origin_fetches,
            "reconciled": (kbs_reconciled and registry_reconciled
                           and pcs_reconciled),
            "resumed": resumed,
        }

    return body


@body_factory("cluster")
def _cluster_body(spec: TrialSpec) -> Callable:
    """A whole fleet's open-loop sweep (the Fig. 9 cluster extension).

    One trial runs one :class:`repro.core.cluster.ClusterGateway`
    sweep: a deterministic heterogeneous fleet, seeded open-loop
    traffic using ``spec.workload`` as the arrival-process name
    (``poisson``/``diurnal``/``burst``), cluster-scale faults from the
    trial's own fault context, and the conservation contract that
    every request finalizes as served, degraded, or shed-with-record.

    The factory is memoized without trial/seed/faults, so everything
    per-trial comes from ``kernel.ctx``: the sweep seed derives from
    the trial's RNG stream and the fault schedule from ``ctx.faults``
    (whose injection log flows into ``RunResult.faults_injected``).
    The sweep's virtual makespan is charged to the trial clock, so a
    trial's elapsed time *is* the cluster's wall time.
    """
    from repro.core.cluster import ClusterGateway, TrafficSpec, build_fleet

    params = spec.params
    profiles = build_fleet(params.get("hosts", 8),
                           seed=params.get("fleet_seed", 0))
    traffic = TrafficSpec(
        process=spec.workload,
        requests=params.get("requests", 100_000),
        rate_rps=params.get("rate_rps", 3200.0),
        secure_fraction=params.get("secure_fraction", 0.75),
    )

    def body(kernel):
        ctx = kernel.ctx
        sweep_seed = derive_seed(ctx.rng.seed, f"{ctx.rng.label}/cluster")
        gateway = ClusterGateway(profiles, seed=sweep_seed,
                                 faults=ctx.faults)
        report = gateway.run(traffic)
        ctx.charge(CostCategory.CPU, report.makespan_ns)
        return report.to_dict()

    return body


# ---------------------------------------------------------------------------
# Trial execution (the pure function both executors map over specs)
# ---------------------------------------------------------------------------

def execute_trial(spec: TrialSpec) -> RunResult:
    """Run one trial from scratch: fresh platform, fresh VM, traced.

    The result is a pure function of the spec — the platform and VM
    are rebuilt per trial, the RNG substream comes from the spec, and
    every fault decision is drawn from ``(fault seed, kind, label)``
    substreams keyed by the spec's own stream label — which is what
    makes serial and parallel execution bit-identical, faults or not.

    With a fault plan set on the spec, retryable failures (VM crashes,
    attestation transients/timeouts that exhausted the verifier's own
    retries) re-run the trial on a fresh VM under
    :data:`~repro.sim.faults.DEFAULT_RETRY_POLICY`; the dead attempts'
    wasted time plus backoff is charged to the surviving result's
    STARTUP bucket and replayed into its trace as ``failure``/``retry``
    spans.  A trial that exhausts its attempts returns a *degraded*
    result rather than raising, so no trial is ever silently dropped.

    With ``budget_ns`` set on the spec, an attempt whose total virtual
    time exceeds the budget is treated as stuck and killed at the
    deadline (:class:`~repro.errors.TrialBudgetError`): the attempt's
    output is discarded and exactly ``budget_ns`` of waste is charged.
    Without faults the kill degrades the trial immediately — a
    deterministic re-run would bust the same budget — while under
    faults it counts as one failed attempt, since the next attempt
    re-rolls its fault draws and may stay under the deadline.
    """
    plan = spec.fault_plan()
    if plan is None or not plan.active:
        result = _attempt_trial(spec, None, FailureLog())
        if not _over_budget(spec, result):
            return result
        failures = FailureLog()
        failures.add(TrialBudgetError.__name__, wasted_ns=spec.budget_ns)
        return _degraded_result(spec, failures, [], 1)

    policy = DEFAULT_RETRY_POLICY
    label = spec._stream_label()
    failures = FailureLog()
    injected: list[str] = []
    attempt = 0
    while policy.allows(attempt, failures.surcharge_ns):
        faults = FaultContext(plan, f"{label}/a{attempt}")
        try:
            result = _attempt_trial(spec, faults, failures)
            if _over_budget(spec, result):
                raise TrialBudgetError(
                    f"trial exceeded its {spec.budget_ns:g} ns budget",
                    wasted_ns=spec.budget_ns,
                )
        except (VmCrashError, AttestationError, TrialBudgetError) as exc:
            injected.extend(faults.injected)
            final = not policy.allows(attempt + 1, failures.surcharge_ns)
            failures.add(
                type(exc).__name__,
                wasted_ns=getattr(exc, "wasted_ns", 0.0),
                backoff_ns=0.0 if final else policy.backoff_ns(attempt),
            )
            attempt += 1
            continue
        injected.extend(faults.injected)
        surcharge = failures.surcharge_ns
        if surcharge > 0:
            result.ledger.charge(CostCategory.STARTUP, surcharge)
            result.total_ns += surcharge
        if attempt or injected:
            result.attempts = attempt + 1
            result.faults_injected = tuple(injected)
        return result
    return _degraded_result(spec, failures, injected, attempt)


def _over_budget(spec: TrialSpec, result: RunResult) -> bool:
    """Whether an attempt blew the spec's virtual-time budget."""
    return spec.budget_ns > 0.0 and result.total_ns > spec.budget_ns


def _attempt_trial(spec: TrialSpec, faults: FaultContext | None,
                   failures: FailureLog) -> RunResult:
    """One attempt of one trial; prior failures are replayed first."""
    platform = platform_by_name(spec.platform, seed=spec.seed)
    vm = platform.create_vm(VmConfig(secure=spec.secure))
    trace = Trace()
    failures.replay(trace)
    boot_ns = vm.boot()
    trace.record("boot", 0.0, boot_ns)
    body = build_body(spec)
    try:
        return vm.run(
            body,
            name=spec.run_name,
            trial=spec.trial,
            contention=spec.contention,
            rng=spec.rng(),
            trace=trace,
            faults=faults,
        )
    except VmCrashError as exc:
        # the crashed attempt also threw away its boot
        exc.wasted_ns += boot_ns
        raise


def _degraded_result(spec: TrialSpec, failures: FailureLog,
                     injected: list[str], attempts: int) -> RunResult:
    """The placeholder a trial returns when every attempt failed.

    ``output`` is None and ``degraded`` is True; ``elapsed_ns`` stays
    0 (nothing measurable completed) while ``total_ns`` carries the
    full failure surcharge, so sweeps can both spot and cost the loss.
    """
    trace = Trace()
    failures.replay(trace)
    ledger = CostLedger()
    surcharge = failures.surcharge_ns
    if surcharge > 0:
        ledger.charge(CostCategory.STARTUP, surcharge)
    side = "secure" if spec.secure else "normal"
    return RunResult(
        vm_id=f"degraded/{spec.platform}/{side}",
        platform=spec.platform,
        secure=spec.secure,
        workload=spec.run_name,
        output=None,
        elapsed_ns=0.0,
        total_ns=surcharge,
        ledger=ledger,
        counters=PerfCounters(),
        trial=spec.trial,
        trace=trace,
        attempts=attempts,
        faults_injected=tuple(injected),
        degraded=True,
    )


# ---------------------------------------------------------------------------
# Executors
# ---------------------------------------------------------------------------

def _accepts_keyword(mapper: Callable, name: str) -> bool:
    """Whether an executor's ``map`` takes the named keyword argument.

    Custom executors predating the supervision layer implement the
    bare two-argument protocol; the runner only passes ``on_result`` /
    ``lookup`` to executors that declare them (or take ``**kwargs``).
    """
    try:
        parameters = inspect.signature(mapper).parameters
    except (TypeError, ValueError):   # builtins, exotic callables
        return False
    if name in parameters:
        return True
    return any(parameter.kind is inspect.Parameter.VAR_KEYWORD
               for parameter in parameters.values())


class TrialExecutor(Protocol):
    """Maps the trial function over specs, preserving order.

    Executors *may* additionally accept ``on_result`` (a callback
    invoked as ``on_result(position, result)`` the moment each trial
    completes — the runner journals through it) and ``lookup`` (a
    ``spec -> RunResult | None`` callable consulted when re-deriving
    surviving work after a worker death); the runner inspects the
    signature and only passes what the executor supports, so minimal
    two-argument executors keep working.
    """

    def map(self, fn: Callable[[TrialSpec], RunResult],
            specs: Sequence[TrialSpec]) -> list[RunResult]:
        ...  # pragma: no cover - protocol


class SerialTrialExecutor:
    """Runs trials one after another in-process (the default)."""

    jobs = 1

    def map(self, fn: Callable[[TrialSpec], RunResult],
            specs: Sequence[TrialSpec],
            on_result: Callable[[int, RunResult], None] | None = None,
            ) -> list[RunResult]:
        results: list[RunResult] = []
        for position, spec in enumerate(specs):
            result = fn(spec)
            results.append(result)
            if on_result is not None:
                on_result(position, result)
        return results


class ParallelTrialExecutor:
    """Fans trials out to a supervised process pool.

    Independent deterministic trials are embarrassingly parallel;
    ``jobs`` caps the worker count.  Results come back in spec order,
    and because :func:`execute_trial` is a pure function of the spec,
    the output is bit-identical to the serial executor's.

    The pool is *supervised*: a worker that dies (``SIGKILL``, OOM —
    surfacing as :class:`BrokenProcessPool`) or goes silent for a full
    ``heartbeat_s`` wall-clock interval does not abort the sweep.
    Instead the pool is torn down (stuck workers are killed), a fresh
    pool is spawned, and the surviving work list is re-derived —
    results already delivered are kept, trials the optional ``lookup``
    (the runner's journal) already holds are replayed, and only the
    rest are resubmitted.  After ``max_respawns`` pool replacements the
    executor gives up with a :class:`RunnerError` naming the pending
    trials, so a poisoned spec cannot respawn-loop forever.
    """

    def __init__(self, jobs: int, mp_context=None,
                 heartbeat_s: float | None = None,
                 max_respawns: int = 2) -> None:
        if jobs < 1:
            raise RunnerError(f"jobs must be >= 1, got {jobs}")
        if heartbeat_s is not None and heartbeat_s <= 0:
            raise RunnerError(f"heartbeat must be > 0, got {heartbeat_s}")
        if max_respawns < 0:
            raise RunnerError(
                f"max_respawns must be >= 0, got {max_respawns}")
        self.jobs = jobs
        self.heartbeat_s = heartbeat_s
        self.max_respawns = max_respawns
        self._mp_context = mp_context

    def map(self, fn: Callable[[TrialSpec], RunResult],
            specs: Sequence[TrialSpec],
            on_result: Callable[[int, RunResult], None] | None = None,
            lookup: Callable[[TrialSpec], RunResult | None] | None = None,
            ) -> list[RunResult]:
        if not specs:
            return []
        if self.jobs == 1 or len(specs) == 1:
            return SerialTrialExecutor().map(fn, specs, on_result=on_result)
        results: dict[int, RunResult] = {}
        respawns = 0
        pool = self._new_pool()
        try:
            futures = self._submit(pool, fn, specs, range(len(specs)),
                                   results, lookup)
            while futures:
                done, _ = wait(set(futures), timeout=self.heartbeat_s,
                               return_when=FIRST_COMPLETED)
                if not done:
                    # watchdog: nothing finished within a heartbeat —
                    # a worker is hung (stuck, not dead), so the pool
                    # cannot make progress on its own
                    pending = sorted(futures.values())
                    respawns = self._account_respawn(
                        respawns, pending, specs,
                        reason="no worker heartbeat "
                               f"within {self.heartbeat_s:g}s")
                    pool = self._replace_pool(pool, kill=True)
                    futures = self._submit(pool, fn, specs, pending,
                                           results, lookup)
                    continue
                broken: BrokenProcessPool | None = None
                lost: list[int] = []
                for future in done:
                    position = futures.pop(future)
                    try:
                        result = future.result()
                    except BrokenProcessPool as exc:
                        broken = exc
                        lost.append(position)
                        continue
                    results[position] = result
                    if on_result is not None:
                        on_result(position, result)
                if broken is not None:
                    # a worker died outright; every in-flight future
                    # was lost with the pool, so re-derive the
                    # surviving work list and carry on
                    pending = sorted({*lost, *futures.values()})
                    futures.clear()
                    respawns = self._account_respawn(
                        respawns, pending, specs,
                        reason="a worker process died", cause=broken)
                    pool = self._replace_pool(pool, kill=False)
                    futures = self._submit(pool, fn, specs, pending,
                                           results, lookup)
        finally:
            self._abandon_pool(pool)
        return [results[position] for position in range(len(specs))]

    # -- supervision internals -----------------------------------------

    def _new_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=self.jobs,
                                   mp_context=self._mp_context)

    def _submit(self, pool: ProcessPoolExecutor, fn, specs,
                positions, results, lookup) -> dict:
        """Submit the given spec positions, consulting ``lookup`` first.

        Positions whose result is already known (delivered before a
        pool death, or found in the journal via ``lookup``) are not
        resubmitted — that is how a respawn "re-derives the surviving
        work list" instead of redoing the whole sweep.
        """
        futures: dict = {}
        for position in positions:
            if position in results:
                continue
            if lookup is not None:
                survived = lookup(specs[position])
                if survived is not None:
                    results[position] = survived
                    continue
            futures[pool.submit(fn, specs[position])] = position
        return futures

    def _account_respawn(self, respawns: int, pending, specs,
                         reason: str, cause: Exception | None = None) -> int:
        """Count one pool respawn, or give up past ``max_respawns``.

        The error names the trials that were still pending — the ones
        a dead worker could have been running — rather than a bare
        ``concurrent.futures`` traceback.
        """
        if respawns >= self.max_respawns:
            names = ", ".join(dict.fromkeys(
                f"{specs[position].run_name}#{specs[position].trial}"
                for position in pending))
            raise RunnerError(
                f"parallel executor gave up after {respawns} pool "
                f"respawn(s) ({reason}); pending trials: {names}"
            ) from cause
        return respawns + 1

    def _replace_pool(self, pool: ProcessPoolExecutor,
                      kill: bool) -> ProcessPoolExecutor:
        """Tear the old pool down and spawn a fresh one.

        ``kill=True`` reaps hung workers first — a stuck worker never
        returns, and leaving it alive would wedge interpreter exit.
        """
        if kill:
            self._kill_workers(pool)
        pool.shutdown(wait=False, cancel_futures=True)
        return self._new_pool()

    def _abandon_pool(self, pool: ProcessPoolExecutor) -> None:
        """Final teardown on every exit from ``map``.

        Workers are killed unconditionally: on the success path they
        are idle (nothing is lost), and on the give-up path a hung
        worker left alive would block interpreter exit when
        ``concurrent.futures`` joins its management threads.
        """
        self._kill_workers(pool)
        pool.shutdown(wait=False, cancel_futures=True)

    @staticmethod
    def _kill_workers(pool: ProcessPoolExecutor) -> None:
        processes = getattr(pool, "_processes", None) or {}
        for process in list(processes.values()):
            process.kill()


# ---------------------------------------------------------------------------
# The runner
# ---------------------------------------------------------------------------

class TrialRunner:
    """Executes trial plans; the single entry point for all harnesses.

    Parameters
    ----------
    jobs:
        Worker-process count; 1 (default) selects the serial executor.
    executor:
        Explicit executor instance (overrides ``jobs``).
    cache:
        Optional spec-hash result cache (see
        :class:`repro.core.resultstore.SpecResultCache`): trials whose
        spec hash is already cached are skipped and their archived
        results returned in place.
    faults:
        Optional fault plan (a spec string or :class:`FaultPlan`)
        applied to every plan this runner executes; see
        :meth:`TrialPlan.with_faults`.
    journal:
        Optional durable trial journal (see
        :class:`repro.core.journal.TrialJournal`).  Journaled trials
        are replayed instead of re-executed, and every freshly
        completed trial is journaled *the moment it finishes* — not
        when the sweep ends — so a killed sweep resumes from its last
        completed trial.  Replay is bit-identical to an uninterrupted
        run because every trial is a pure function of its spec.
    budget_ns:
        Optional per-trial virtual-time watchdog deadline applied to
        every plan (see :meth:`TrialPlan.with_budget`).
    watchdog_s:
        Optional *wall-clock* heartbeat for the parallel executor:
        when no trial completes for this many real seconds, the worker
        pool is presumed stuck and respawned.  Only meaningful with
        ``jobs > 1``.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` to
        aggregate into (one is created when omitted).  Results are
        observed in **spec order** after each ``run`` — never from
        completion-order callbacks — so a parallel run's snapshot is
        byte-identical to a serial run's.
    """

    def __init__(self, jobs: int = 1,
                 executor: TrialExecutor | None = None,
                 cache=None,
                 faults: "str | FaultPlan | None" = None,
                 journal=None,
                 budget_ns: float | None = None,
                 watchdog_s: float | None = None,
                 metrics: MetricsRegistry | None = None) -> None:
        if jobs < 1:
            raise RunnerError(f"jobs must be >= 1, got {jobs}")
        if budget_ns is not None and budget_ns < 0:
            raise RunnerError(f"budget must be >= 0, got {budget_ns}")
        if executor is not None:
            self.executor = executor
        elif jobs > 1:
            self.executor = ParallelTrialExecutor(jobs,
                                                  heartbeat_s=watchdog_s)
        else:
            self.executor = SerialTrialExecutor()
        self.cache = cache
        self.journal = journal
        self.budget_ns = budget_ns
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.faults = (
            FaultPlan.parse(faults).to_spec() if faults is not None else None
        )
        #: (plan, results) pairs from every ``run`` call, in order —
        #: what ``report.trace_payload`` serialises for trace dumps.
        self.history: list[tuple[TrialPlan, list[RunResult]]] = []

    # -- spec-based execution (parallelizable) -------------------------

    def run(self, plan: TrialPlan) -> list[RunResult]:
        """Execute every spec in the plan; results in spec order."""
        if self.faults:
            plan = plan.with_faults(self.faults)
        if self.budget_ns:
            plan = plan.with_budget(self.budget_ns)
        if self.journal is not None \
                and getattr(self.journal, "metrics", None) is None:
            self.journal.metrics = self.metrics
        results: dict[int, RunResult] = {}
        pending: list[tuple[int, TrialSpec]] = []
        replayed_before = (self.journal.replayed
                           if self.journal is not None else 0)
        cached = 0
        for index, spec in enumerate(plan):
            archived = (self.journal.get(spec)
                        if self.journal is not None else None)
            if archived is None and self.cache is not None:
                archived = self.cache.get(spec)
                cached += archived is not None
            if archived is not None:
                results[index] = archived
            else:
                pending.append((index, spec))
        if pending:
            self._dispatch(pending, results)
        ordered = [results[index] for index in range(len(plan))]
        self.history.append((plan, ordered))
        replayed = (self.journal.replayed - replayed_before
                    if self.journal is not None else 0)
        self._observe(ordered, executed=len(pending),
                      replayed=replayed, cached=cached)
        return ordered

    def _observe(self, ordered: list[RunResult], executed: int,
                 replayed: int, cached: int) -> None:
        """Fold one plan's results into the metrics registry.

        Called with results in spec order *after* execution, never
        from the executors' completion-order callbacks: histogram
        float sums accumulate in one fixed order, which is what keeps
        serial and parallel snapshots byte-identical.
        """
        self.metrics.count("runner.plans", 1)
        self.metrics.count("runner.trials", len(ordered))
        self.metrics.count("runner.trials_executed", executed)
        if replayed:
            self.metrics.count("runner.trials_replayed", replayed)
        if cached:
            self.metrics.count("runner.trials_cached", cached)
        for result in ordered:
            result.emit(self.metrics)

    def _dispatch(self, pending: list[tuple[int, TrialSpec]],
                  results: dict[int, RunResult]) -> None:
        """Run the pending specs, persisting each result as it lands.

        Persistence rides the executor's ``on_result`` callback (when
        supported) so a sweep killed mid-run keeps everything already
        finished; executors with a plain two-argument ``map`` are
        persisted after the fact instead.
        """
        specs = [spec for _, spec in pending]
        persisted: set[int] = set()

        def on_result(position: int, result: RunResult) -> None:
            index, spec = pending[position]
            self._persist(spec, result)
            results[index] = result
            persisted.add(position)

        mapper = self.executor.map
        kwargs: dict[str, Any] = {}
        if _accepts_keyword(mapper, "on_result"):
            kwargs["on_result"] = on_result
        if self.journal is not None and _accepts_keyword(mapper, "lookup"):
            kwargs["lookup"] = self.journal.get
        fresh = mapper(execute_trial, specs, **kwargs)
        for position, ((index, spec), result) in enumerate(
                zip(pending, fresh)):
            if position not in persisted:
                self._persist(spec, result)
                results[index] = result

    def _persist(self, spec: TrialSpec, result: RunResult) -> None:
        if self.cache is not None:
            self.cache.put(spec, result)
        if self.journal is not None:
            self.journal.put(spec, result)

    def run_cells(self, plan: TrialPlan) -> dict[tuple, list[RunResult]]:
        """Execute a plan and group results by spec ``cell``.

        Returns ``{(platform, workload, runtime, secure): [results in
        trial order]}`` — the shape every aggregating harness wants.
        """
        grouped: dict[tuple, list[RunResult]] = {}
        for spec, result in zip(plan, self.run(plan)):
            grouped.setdefault(spec.cell, []).append(result)
        return grouped

    # -- stateful execution (gateway pools; always in-process) ---------

    def run_trials(self, trials: int,
                   fn: Callable[[int], Any]) -> list[Any]:
        """Run ``fn(trial)`` for each trial index, serially in-process.

        For callables bound to live state (the gateway's TEE pools)
        that cannot be shipped to worker processes; the structured
        replacement for hand-rolled ``for t in range(trials)`` loops.
        """
        if trials < 1:
            raise RunnerError(f"trials must be >= 1, got {trials}")
        return [fn(trial) for trial in range(trials)]
