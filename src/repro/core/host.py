"""TEE-enabled hosts.

§III-A: hosts "receive requests from the gateway, and, based on the
query arguments (i.e., destination port), they will route them to the
appropriate destination".  A :class:`Host` owns one platform's VMs,
maps destination ports to VMs (the prototype's socat steering), and
executes dispatched workloads on the right VM.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import GatewayError, VmError
from repro.tee.base import TeePlatform, VmConfig
from repro.tee.vm import RunResult, Vm


@dataclass
class Host:
    """One TEE-capable machine holding confidential and normal VMs."""

    name: str
    platform: TeePlatform
    port_map: dict[int, Vm] = field(default_factory=dict)
    requests_routed: int = 0
    vms_respawned: int = 0

    def provision_vm(self, port: int, secure: bool,
                     config: VmConfig | None = None) -> Vm:
        """Create, boot, and register a VM on a destination port."""
        if port in self.port_map:
            raise GatewayError(f"host {self.name}: port {port} already mapped")
        vm_config = config if config is not None else VmConfig(secure=secure)
        if vm_config.secure != secure:
            vm_config = VmConfig(
                vcpus=vm_config.vcpus,
                memory_mib=vm_config.memory_mib,
                secure=secure,
                image=vm_config.image,
            )
        vm = self.platform.create_vm(vm_config)
        vm.boot()
        self.port_map[port] = vm
        return vm

    def vm_for_port(self, port: int) -> Vm:
        """Route a destination port to its VM."""
        try:
            return self.port_map[port]
        except KeyError:
            known = ", ".join(map(str, sorted(self.port_map))) or "none"
            raise GatewayError(
                f"host {self.name}: no VM on port {port} (mapped: {known})"
            ) from None

    def route(self, port: int, workload, name: str = "anonymous",
              trial: int = 0) -> RunResult:
        """Execute a request arriving for ``port``.

        ``requests_routed`` counts requests that actually reached a VM
        — a request rejected for an unmapped port never routed.
        """
        vm = self.vm_for_port(port)
        self.requests_routed += 1
        return vm.run(workload, name=name, trial=trial)

    def respawn_vm(self, port: int) -> Vm:
        """Replace the VM on ``port`` with a freshly booted one.

        The failure-handling path the pools use: the dead VM is torn
        down (tolerating an already-destroyed state), unmapped, and a
        new VM with the same configuration is provisioned on the same
        port.
        """
        old = self.vm_for_port(port)
        try:
            old.destroy()
        except VmError:
            pass   # already dead; replacing it is the point
        del self.port_map[port]
        vm = self.provision_vm(port, secure=old.secure, config=old.config)
        self.vms_respawned += 1
        return vm

    def contention_factor(self, active_vms: int) -> float:
        """Slowdown when ``active_vms`` share this host's cores.

        Models the §VI multi-tenant scenario: below core count the
        factor is 1.0; oversubscription degrades sublinearly (shared
        caches and memory bandwidth before timeslicing).
        """
        if active_vms < 1:
            raise GatewayError(f"need at least one active VM: {active_vms}")
        cores = self.platform.build_machine().spec.cores
        if active_vms <= cores:
            return 1.0
        return (active_vms / cores) ** 0.85

    def route_colocated(self, requests: list[tuple[int, object, str]],
                        trial: int = 0) -> list[RunResult]:
        """Run several requests as co-scheduled tenants.

        ``requests`` is a list of ``(port, workload, name)``; every run
        is priced with the contention factor of the whole batch.
        """
        factor = self.contention_factor(len(requests))
        results = []
        for port, workload, name in requests:
            vm = self.vm_for_port(port)
            self.requests_routed += 1
            results.append(vm.run(workload, name=name, trial=trial,
                                  contention=factor))
        return results

    def decommission(self, port: int) -> None:
        """Destroy and unmap a VM."""
        vm = self.vm_for_port(port)
        try:
            vm.destroy()
        except VmError:
            pass   # already destroyed; unmapping is the point
        del self.port_map[port]

    def vms(self) -> list[Vm]:
        """All VMs on this host in port order."""
        return [self.port_map[port] for port in sorted(self.port_map)]
