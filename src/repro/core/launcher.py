"""Per-language function launchers.

§III-A: each supported language has a *function launcher* that
"instantiates a runtime for the languages that need one", reads the
function and executes it with the given arguments; §IV-D: "our timing
measurements exclude the time required by the launcher to bootstrap
the runtime".  A launcher here builds the runtime session inside the
target VM's guest kernel, bootstraps it (charged as STARTUP, which the
VM's elapsed-time accounting excludes), runs the workload, and
returns a common output shape across languages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.guestos.kernel import GuestKernel
from repro.runtimes.base import RuntimeModel, RuntimeSession
from repro.runtimes.registry import runtime_by_name
from repro.workloads.base import FaasWorkload


@dataclass
class FunctionLauncher:
    """Launches one workload under one language runtime."""

    runtime: RuntimeModel

    @classmethod
    def for_language(cls, language: str) -> "FunctionLauncher":
        return cls(runtime=runtime_by_name(language))

    def launch(self, workload: FaasWorkload,
               args: dict[str, Any] | None = None):
        """A VM-executable callable running the workload.

        The returned callable matches the :meth:`repro.tee.vm.Vm.run`
        signature; the common output shape (workload result + runtime
        facts) eases cross-language comparison, as §IV-B notes.
        """

        def body(kernel: GuestKernel) -> dict[str, Any]:
            session = RuntimeSession(self.runtime, kernel)
            session.bootstrap()          # excluded from timings
            result = workload.run(session, args)
            return {
                "result": result,
                "language": self.runtime.name,
                "gc_runs": session.gc_runs,
                "stdout_lines": session.stdout_lines,
            }

        return body


def native_launcher(fn, *fn_args, **fn_kwargs):
    """Launcher for non-FaaS (classic) workloads.

    §III-A: "in the case of non-FaaS scenarios, the user must
    cross-compile and submit the executable" — here, a plain callable
    taking the guest kernel, with no runtime bootstrap.
    """

    def body(kernel: GuestKernel):
        return fn(kernel, *fn_args, **fn_kwargs)

    return body
