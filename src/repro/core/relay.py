"""socat-equivalent TCP relay.

§III-B: "each host machine relies on socat, a network relay tool, to
steer traffic to its hosted VMs."  :class:`TcpRelay` is a real
localhost TCP forwarder built on the standard library: it listens on
one port and pipes both directions to a destination port, one thread
pair per connection.  The integration tests drive actual bytes
through it.

The relay honours TCP half-close: when one direction hits EOF, only
the *write* side of the sink is shut down, so the opposite direction
keeps flowing until it reaches its own EOF — the behaviour protocols
like HTTP/1.0 and classic request/EOF-reply servers depend on.  A
:class:`~repro.sim.faults.FaultPlan` with a ``relay-drop`` rate makes
the relay deterministically refuse a seeded subset of connections.
"""

from __future__ import annotations

import socket
import threading

from repro.errors import RelayError
from repro.sim.faults import FaultKind, FaultPlan

_BUFFER = 65536


class TcpRelay:
    """Forward ``listen_port`` -> ``target_port`` on localhost."""

    def __init__(self, listen_port: int, target_port: int,
                 host: str = "127.0.0.1",
                 faults: FaultPlan | None = None) -> None:
        if listen_port == target_port:
            raise RelayError("relay cannot forward a port to itself")
        self.listen_port = listen_port
        self.target_port = target_port
        self.host = host
        self.faults = faults
        self._server: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._running = False
        self.connections_handled = 0
        self.connections_dropped = 0
        self.bytes_forwarded = 0
        self._accepted = 0
        self._threads: list[threading.Thread] = []
        self._active: set[socket.socket] = set()
        self._lock = threading.Lock()

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        """Bind and start accepting (idempotent errors are loud)."""
        if self._running:
            raise RelayError("relay already running")
        server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            server.bind((self.host, self.listen_port))
        except OSError as exc:
            server.close()
            raise RelayError(
                f"cannot bind relay on port {self.listen_port}: {exc}"
            ) from exc
        server.listen(16)
        server.settimeout(0.2)
        self._server = server
        self._running = True
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"relay-{self.listen_port}",
            daemon=True,
        )
        self._accept_thread.start()

    def stop(self) -> None:
        """Stop accepting, unblock in-flight pumps, and join them."""
        self._running = False
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)
            self._accept_thread = None
        if self._server is not None:
            self._server.close()
            self._server = None
        # force any still-open connection sockets closed so blocked
        # recv() calls return and the handler threads can exit
        with self._lock:
            active = list(self._active)
        for sock in active:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            sock.close()
        with self._lock:
            threads = list(self._threads)
            self._threads.clear()
        for thread in threads:
            thread.join(timeout=2.0)

    def __enter__(self) -> "TcpRelay":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- forwarding -----------------------------------------------------------

    def _accept_loop(self) -> None:
        assert self._server is not None
        while self._running:
            try:
                client, _ = self._server.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            with self._lock:
                index = self._accepted
                self._accepted += 1
            if self.faults is not None and self.faults.triggers(
                    FaultKind.RELAY_DROP,
                    f"relay/{self.listen_port}->{self.target_port}"
                    f"/conn{index}"):
                client.close()
                with self._lock:
                    self.connections_dropped += 1
                continue
            handler = threading.Thread(
                target=self._handle, args=(client,), daemon=True
            )
            with self._lock:
                self._threads = [t for t in self._threads if t.is_alive()]
                self._threads.append(handler)
            handler.start()

    def _handle(self, client: socket.socket) -> None:
        try:
            upstream = socket.create_connection(
                (self.host, self.target_port), timeout=5.0
            )
        except OSError:
            client.close()
            return
        with self._lock:
            self.connections_handled += 1
            self._active.add(client)
            self._active.add(upstream)
        # run one direction in a helper thread, the other inline; both
        # sockets are closed exactly once, here, after both pumps end
        pump = threading.Thread(
            target=self._pump, args=(upstream, client), daemon=True
        )
        pump.start()
        self._pump(client, upstream)
        pump.join()
        with self._lock:
            self._active.discard(client)
            self._active.discard(upstream)
        for sock in (client, upstream):
            sock.close()

    def _pump(self, source: socket.socket, sink: socket.socket) -> None:
        try:
            while True:
                data = source.recv(_BUFFER)
                if not data:
                    break
                sink.sendall(data)
                with self._lock:
                    self.bytes_forwarded += len(data)
        except OSError:
            pass
        finally:
            # half-close: propagate this direction's EOF without
            # killing the reverse direction (and never close here —
            # the peer pump may still be using these sockets)
            try:
                sink.shutdown(socket.SHUT_WR)
            except OSError:
                pass


def free_port() -> int:
    """Ask the OS for an unused localhost port."""
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]
