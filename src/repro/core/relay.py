"""socat-equivalent TCP relay.

§III-B: "each host machine relies on socat, a network relay tool, to
steer traffic to its hosted VMs."  :class:`TcpRelay` is a real
localhost TCP forwarder built on the standard library: it listens on
one port and pipes both directions to a destination port, one thread
pair per connection.  The integration tests drive actual bytes
through it.
"""

from __future__ import annotations

import socket
import threading

from repro.errors import RelayError

_BUFFER = 65536


class TcpRelay:
    """Forward ``listen_port`` -> ``target_port`` on localhost."""

    def __init__(self, listen_port: int, target_port: int,
                 host: str = "127.0.0.1") -> None:
        if listen_port == target_port:
            raise RelayError("relay cannot forward a port to itself")
        self.listen_port = listen_port
        self.target_port = target_port
        self.host = host
        self._server: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._running = False
        self.connections_handled = 0
        self.bytes_forwarded = 0
        self._lock = threading.Lock()

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        """Bind and start accepting (idempotent errors are loud)."""
        if self._running:
            raise RelayError("relay already running")
        server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            server.bind((self.host, self.listen_port))
        except OSError as exc:
            server.close()
            raise RelayError(
                f"cannot bind relay on port {self.listen_port}: {exc}"
            ) from exc
        server.listen(16)
        server.settimeout(0.2)
        self._server = server
        self._running = True
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"relay-{self.listen_port}",
            daemon=True,
        )
        self._accept_thread.start()

    def stop(self) -> None:
        """Stop accepting and close the listener."""
        self._running = False
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)
            self._accept_thread = None
        if self._server is not None:
            self._server.close()
            self._server = None

    def __enter__(self) -> "TcpRelay":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- forwarding -----------------------------------------------------------

    def _accept_loop(self) -> None:
        assert self._server is not None
        while self._running:
            try:
                client, _ = self._server.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            threading.Thread(
                target=self._handle, args=(client,), daemon=True
            ).start()

    def _handle(self, client: socket.socket) -> None:
        try:
            upstream = socket.create_connection(
                (self.host, self.target_port), timeout=5.0
            )
        except OSError:
            client.close()
            return
        with self._lock:
            self.connections_handled += 1
        pump_a = threading.Thread(
            target=self._pump, args=(client, upstream), daemon=True
        )
        pump_b = threading.Thread(
            target=self._pump, args=(upstream, client), daemon=True
        )
        pump_a.start()
        pump_b.start()

    def _pump(self, source: socket.socket, sink: socket.socket) -> None:
        try:
            while True:
                data = source.recv(_BUFFER)
                if not data:
                    break
                sink.sendall(data)
                with self._lock:
                    self.bytes_forwarded += len(data)
        except OSError:
            pass
        finally:
            for sock in (source, sink):
                try:
                    sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                sock.close()


def free_port() -> int:
    """Ask the OS for an unused localhost port."""
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]
