"""The high-level ConfBench facade.

One object that wires the whole tool together — the "easy evaluation"
entry point the examples and experiment harnesses use:

>>> bench = ConfBench(seed=42)
>>> bench.upload("cpustress")
>>> summary = bench.measure_overhead("cpustress", language="python",
...                                  platform="tdx", trials=10)
>>> summary.ratio        # doctest: +SKIP
1.05

The v1 surface is keyword-consistent: every invocation method takes
its request parameters (``platform``, ``secure``, ``args``,
``trials``) as keywords, and ``trials=None`` uniformly means "the
config default" — the same semantics on ``invoke``, ``run_classic``
and both ``measure_*`` comparisons.  Legacy positional calls still
work through a warn-once deprecation shim.

Telemetry rides along on every invocation: :meth:`metrics` snapshots
the unified registry, :meth:`trace` exports the recorded span trees,
and :meth:`profile` folds them into a per-category attribution.
"""

from __future__ import annotations

from typing import Any

from repro.core.config import GatewayConfig, default_config
from repro.core.gateway import Gateway, InvocationRequest, warn_once
from repro.core.results import InvocationRecord, RatioSummary, summarize_ratio
from repro.obs.export import TraceExporter
from repro.obs.profile import Profile


#: Sentinel distinguishing "keyword not passed" from any real value,
#: so deprecated positionals only conflict with *explicit* keywords.
_UNSET: Any = object()


def _merge_call(method: str, legacy: tuple,
                spec: tuple[tuple[str, Any, Any], ...]) -> dict[str, Any]:
    """Resolve one redesigned-signature call to its final arguments.

    ``spec`` lists ``(name, passed, default)`` per optional parameter,
    with ``passed`` being :data:`_UNSET` when the caller omitted the
    keyword.  Deprecated positionals in ``legacy`` fill the same slots
    left to right (warn-once); a positional alongside its keyword is a
    ``TypeError``, exactly as a real signature would raise.
    """
    names = tuple(name for name, _, _ in spec)
    if len(legacy) > len(names):
        raise TypeError(
            f"{method}() takes at most {len(names)} optional positional "
            f"argument(s) ({', '.join(names)}), got {len(legacy)}")
    if legacy:
        warn_once(
            f"{method}() with positional {', '.join(names[:len(legacy)])} "
            f"is deprecated; pass them as keywords")
    merged: dict[str, Any] = {}
    for index, (name, passed, default) in enumerate(spec):
        positional = legacy[index] if index < len(legacy) else _UNSET
        if positional is not _UNSET and passed is not _UNSET:
            raise TypeError(
                f"{method}() got multiple values for argument {name!r}")
        value = positional if positional is not _UNSET else passed
        merged[name] = default if value is _UNSET else value
    return merged


class ConfBench:
    """Facade over the gateway for secure/normal comparisons."""

    def __init__(self, config: GatewayConfig | None = None,
                 seed: int = 0) -> None:
        if config is None:
            config = default_config(seed=seed)
        self.gateway = Gateway(config)

    # -- uploads --------------------------------------------------------

    def upload(self, function_name: str,
               languages: tuple[str, ...] | None = None) -> None:
        """Upload a built-in workload."""
        self.gateway.upload(function_name, languages)

    def upload_custom(self, workload,
                      languages: tuple[str, ...] | None = None) -> None:
        """Upload a user-supplied workload."""
        self.gateway.upload_custom(workload, languages)

    # -- invocation ----------------------------------------------------------

    def invoke(self, function: str, language: str, *legacy,
               platform: str = _UNSET, secure: bool = _UNSET,
               args: dict[str, Any] | None = _UNSET,
               trials: int | None = _UNSET) -> list[InvocationRecord]:
        """Run one FaaS function; returns per-trial records.

        Defaults: ``platform="tdx"``, ``secure=True``, ``args=None``;
        ``trials=None`` runs the config default (the paper's 10).
        """
        merged = _merge_call("ConfBench.invoke", legacy, (
            ("platform", platform, "tdx"),
            ("secure", secure, True),
            ("args", args, None),
            ("trials", trials, None),
        ))
        return self.gateway.invoke(InvocationRequest(
            function=function,
            language=language,
            platform=merged["platform"],
            secure=merged["secure"],
            args=merged["args"] if merged["args"] is not None else {},
            trials=merged["trials"],
        ))

    def run_classic(self, name: str, fn, *legacy, platform: str = _UNSET,
                    secure: bool = _UNSET,
                    trials: int | None = _UNSET) -> list[InvocationRecord]:
        """Run a classic workload callable (receives the guest kernel).

        Same request surface as :meth:`invoke`: keyword-only
        ``platform`` / ``secure`` / ``trials``, with ``trials=None``
        meaning the config default.  (Historically this defaulted to a
        single trial; pass ``trials=1`` for the old behaviour.)
        """
        merged = _merge_call("ConfBench.run_classic", legacy, (
            ("platform", platform, "tdx"),
            ("secure", secure, True),
            ("trials", trials, None),
        ))
        return self.gateway.invoke_classic(
            name, fn, platform=merged["platform"], secure=merged["secure"],
            trials=merged["trials"])

    # -- comparisons -------------------------------------------------------------

    def measure_overhead(self, function: str, language: str, *legacy,
                         platform: str = _UNSET,
                         args: dict[str, Any] | None = _UNSET,
                         trials: int | None = _UNSET) -> RatioSummary:
        """Secure-vs-normal ratio for one FaaS function (the paper's
        headline metric: ratio of mean times over matched trials)."""
        merged = _merge_call("ConfBench.measure_overhead", legacy, (
            ("platform", platform, "tdx"),
            ("args", args, None),
            ("trials", trials, None),
        ))
        secure = self.invoke(function, language, platform=merged["platform"],
                             secure=True, args=merged["args"],
                             trials=merged["trials"])
        normal = self.invoke(function, language, platform=merged["platform"],
                             secure=False, args=merged["args"],
                             trials=merged["trials"])
        return summarize_ratio(secure, normal)

    def measure_classic_overhead(self, name: str, fn, *legacy,
                                 platform: str = _UNSET,
                                 trials: int | None = _UNSET) -> RatioSummary:
        """Secure-vs-normal ratio for a classic workload callable.

        ``trials=None`` runs the config default — the same semantics
        as :meth:`measure_overhead` (previously this hard-coded 10).
        """
        merged = _merge_call("ConfBench.measure_classic_overhead", legacy, (
            ("platform", platform, "tdx"),
            ("trials", trials, None),
        ))
        secure = self.run_classic(name, fn, platform=merged["platform"],
                                  secure=True, trials=merged["trials"])
        normal = self.run_classic(name, fn, platform=merged["platform"],
                                  secure=False, trials=merged["trials"])
        return summarize_ratio(secure, normal)

    # -- telemetry ---------------------------------------------------------------

    def metrics(self) -> dict[str, Any]:
        """A deterministic snapshot of the unified metrics registry.

        Counters, gauges and virtual-time histograms accumulated by
        the gateway, its pools, and the trial runner — the same payload
        ``GET /v1/metrics`` serves.
        """
        return self.gateway.metrics.snapshot()

    def trace(self) -> TraceExporter:
        """A trace exporter over every run this bench has executed.

        Use ``to_chrome_json()`` / ``write_chrome(path)`` for a
        Perfetto-loadable trace, or ``to_jsonl()`` for line-oriented
        span records.
        """
        return TraceExporter.from_runs(self.gateway.run_log)

    def profile(self) -> Profile:
        """A virtual-time profile folded from the recorded span trees.

        The per-category attribution table totals exactly the run
        ledgers' virtual time; ``render_collapsed()`` yields
        flamegraph-ready collapsed stacks.
        """
        return Profile.from_runs(self.gateway.run_log)

    # -- cluster -----------------------------------------------------------------

    def cluster(self):
        """The cluster sweep + key-release control plane.

        The same :class:`~repro.core.cluster.control.ClusterControl`
        the REST routes ``/v1/cluster/*`` and ``/v1/kbs/release``
        front — ``run(...)`` executes one fleet sweep at a time,
        ``report()`` returns the last one, ``kbs_release(...)``
        exercises the attestation-gated key path.
        """
        return self.gateway.cluster()

    # -- introspection -----------------------------------------------------------

    def platforms(self) -> list[dict[str, Any]]:
        """Configured platform facts."""
        return self.gateway.platforms()

    def functions(self) -> list[str]:
        """Uploaded function names."""
        return self.gateway.functions()
