"""The high-level ConfBench facade.

One object that wires the whole tool together — the "easy evaluation"
entry point the examples and experiment harnesses use:

>>> bench = ConfBench(seed=42)
>>> bench.upload("cpustress")
>>> summary = bench.measure_overhead("cpustress", language="python",
...                                  platform="tdx", trials=10)
>>> summary.ratio        # doctest: +SKIP
1.05
"""

from __future__ import annotations

from typing import Any

from repro.core.config import GatewayConfig, default_config
from repro.core.gateway import Gateway, InvocationRequest
from repro.core.results import InvocationRecord, RatioSummary, summarize_ratio


class ConfBench:
    """Facade over the gateway for secure/normal comparisons."""

    def __init__(self, config: GatewayConfig | None = None,
                 seed: int = 0) -> None:
        if config is None:
            config = default_config(seed=seed)
        self.gateway = Gateway(config)

    # -- uploads --------------------------------------------------------

    def upload(self, function_name: str,
               languages: tuple[str, ...] | None = None) -> None:
        """Upload a built-in workload."""
        self.gateway.upload(function_name, languages)

    def upload_custom(self, workload,
                      languages: tuple[str, ...] | None = None) -> None:
        """Upload a user-supplied workload."""
        self.gateway.upload_custom(workload, languages)

    # -- invocation ----------------------------------------------------------

    def invoke(self, function: str, language: str, platform: str = "tdx",
               secure: bool = True, args: dict[str, Any] | None = None,
               trials: int | None = None) -> list[InvocationRecord]:
        """Run one FaaS function; returns per-trial records."""
        return self.gateway.invoke(InvocationRequest(
            function=function,
            language=language,
            platform=platform,
            secure=secure,
            args=args if args is not None else {},
            trials=trials,
        ))

    def run_classic(self, name: str, fn, platform: str = "tdx",
                    secure: bool = True,
                    trials: int = 1) -> list[InvocationRecord]:
        """Run a classic workload callable (receives the guest kernel)."""
        return self.gateway.invoke_native(name, fn, platform, secure, trials)

    # -- comparisons -------------------------------------------------------------

    def measure_overhead(self, function: str, language: str,
                         platform: str = "tdx",
                         args: dict[str, Any] | None = None,
                         trials: int | None = None) -> RatioSummary:
        """Secure-vs-normal ratio for one FaaS function (the paper's
        headline metric: ratio of mean times over matched trials)."""
        secure = self.invoke(function, language, platform, secure=True,
                             args=args, trials=trials)
        normal = self.invoke(function, language, platform, secure=False,
                             args=args, trials=trials)
        return summarize_ratio(secure, normal)

    def measure_classic_overhead(self, name: str, fn, platform: str = "tdx",
                                 trials: int = 10) -> RatioSummary:
        """Secure-vs-normal ratio for a classic workload callable."""
        secure = self.run_classic(name, fn, platform, secure=True,
                                  trials=trials)
        normal = self.run_classic(name, fn, platform, secure=False,
                                  trials=trials)
        return summarize_ratio(secure, normal)

    # -- introspection -----------------------------------------------------------

    def platforms(self) -> list[dict[str, Any]]:
        """Configured platform facts."""
        return self.gateway.platforms()

    def functions(self) -> list[str]:
        """Uploaded function names."""
        return self.gateway.functions()
