"""Result records and ratio statistics.

The paper systematically reports the *ratio* of mean execution times
between secure and normal VMs over 10 independent trials; this module
provides the records the gateway returns and the aggregation helpers
the experiment harnesses use (means, percentile stacks, box-plot
five-number summaries).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Any

from repro.errors import GatewayError
from repro.hw.perfcounters import PerfCounters


@dataclass(frozen=True)
class InvocationRecord:
    """One function invocation's outcome, as returned to the user."""

    function: str
    language: str | None
    platform: str
    secure: bool
    trial: int
    elapsed_ns: float
    output: Any
    perf: dict[str, int]
    cost_breakdown: dict[str, float] = field(default_factory=dict)
    transport_ns: float = 0.0   # Fig. 2 dispatch-path time (not in elapsed)
    #: failure-handling metadata; defaults describe a clean first-try
    #: run and are omitted from serialisation (byte-stable output)
    attempts: int = 1
    faults_injected: tuple[str, ...] = ()
    degraded: bool = False
    #: True when the gateway's admission control refused the trial
    #: before it ran (``attempts`` stays 0: nothing was attempted)
    shed: bool = False

    @classmethod
    def from_run(cls, run_result, function: str,
                 language: str | None, perf: dict[str, int],
                 transport_ns: float = 0.0) -> "InvocationRecord":
        return cls(
            function=function,
            language=language,
            platform=run_result.platform,
            secure=run_result.secure,
            trial=run_result.trial,
            elapsed_ns=run_result.elapsed_ns,
            output=run_result.output,
            perf=perf,
            cost_breakdown={
                category.value: nanos for category, nanos in run_result.ledger
            },
            transport_ns=transport_ns,
            attempts=getattr(run_result, "attempts", 1),
            faults_injected=tuple(getattr(run_result, "faults_injected", ())),
            degraded=getattr(run_result, "degraded", False),
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-able form (what the REST API returns)."""
        payload = {
            "function": self.function,
            "language": self.language,
            "platform": self.platform,
            "secure": self.secure,
            "trial": self.trial,
            "elapsed_ns": self.elapsed_ns,
            "output": self.output,
            "perf": self.perf,
            "cost_breakdown": self.cost_breakdown,
            "transport_ns": self.transport_ns,
        }
        if self.attempts != 1 or self.faults_injected or self.degraded:
            payload["attempts"] = self.attempts
            payload["faults_injected"] = list(self.faults_injected)
            payload["degraded"] = self.degraded
        if self.shed:
            payload["shed"] = True
        return payload


@dataclass(frozen=True)
class RatioSummary:
    """Secure-vs-normal comparison over matched trial sets."""

    secure_mean_ns: float
    normal_mean_ns: float
    ratio: float
    secure_times: tuple[float, ...]
    normal_times: tuple[float, ...]

    @property
    def overhead_percent(self) -> float:
        return (self.ratio - 1.0) * 100.0


def summarize_ratio(secure: list[InvocationRecord],
                    normal: list[InvocationRecord]) -> RatioSummary:
    """Mean-of-trials ratio, the paper's headline metric."""
    if not secure or not normal:
        raise GatewayError("need at least one trial on each side")
    secure_times = tuple(record.elapsed_ns for record in secure)
    normal_times = tuple(record.elapsed_ns for record in normal)
    secure_mean = statistics.fmean(secure_times)
    normal_mean = statistics.fmean(normal_times)
    if normal_mean <= 0:
        raise GatewayError("normal-VM mean time is not positive")
    return RatioSummary(
        secure_mean_ns=secure_mean,
        normal_mean_ns=normal_mean,
        ratio=secure_mean / normal_mean,
        secure_times=secure_times,
        normal_times=normal_times,
    )


def percentile(samples: list[float] | tuple[float, ...], q: float) -> float:
    """Linear-interpolation percentile, q in [0, 100]."""
    if not samples:
        raise GatewayError("no samples")
    if not 0.0 <= q <= 100.0:
        raise GatewayError(f"percentile out of range: {q}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    position = (len(ordered) - 1) * q / 100.0
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    return ordered[low] * (1 - fraction) + ordered[high] * fraction


def percentile_stack(samples: list[float] | tuple[float, ...]) -> dict[str, float]:
    """The Fig. 3 stacked-percentile summary: min/p25/median/p95/max."""
    return {
        "min": percentile(samples, 0),
        "p25": percentile(samples, 25),
        "median": percentile(samples, 50),
        "p95": percentile(samples, 95),
        "max": percentile(samples, 100),
    }


def five_number_summary(samples: list[float] | tuple[float, ...]) -> dict[str, float]:
    """The Fig. 8 box-and-whisker summary."""
    return {
        "whisker_low": percentile(samples, 0),
        "q1": percentile(samples, 25),
        "median": percentile(samples, 50),
        "q3": percentile(samples, 75),
        "whisker_high": percentile(samples, 100),
    }


def aggregate_counters(records: list[InvocationRecord]) -> PerfCounters:
    """Sum perf counters across records (per-experiment totals)."""
    total = PerfCounters()
    for record in records:
        total.add(PerfCounters(**record.perf))
    return total
