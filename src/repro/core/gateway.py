"""The ConfBench gateway.

The entry point for all requests (§III-A): it owns the function
store, the host fleet, the TEE pools, and a perf monitor per
platform.  ``invoke`` runs one request end-to-end the way Fig. 2
draws it: ① function + arguments arrive, ② the gateway picks normal
vs. secure and the platform, ③ the request goes to the host, ④ the
host routes by port to the VM, which executes and returns the result
with perf metrics piggybacked.
"""

from __future__ import annotations

import threading
import warnings
from dataclasses import dataclass, field
from typing import Any

from repro.core.config import GatewayConfig, default_config
from repro.core.dispatch import DispatchModel
from repro.core.host import Host
from repro.core.launcher import FunctionLauncher, native_launcher
from repro.core.monitor import PerfMonitor
from repro.core.pool import LoadBalancingPolicy, TeePool
from repro.core.results import InvocationRecord
from repro.core.runner import TrialRunner
from repro.core.storage import FunctionStore
from repro.errors import GatewayError, OverloadedError, PoolExhaustedError
from repro.obs.metrics import MetricsRegistry
from repro.sim.faults import FaultPlan
from repro.tee.registry import platform_by_name
from repro.tee.vm import RunResult

#: deprecation messages already issued this process (warn once each)
_WARNED: set[str] = set()

#: the 429 hint's estimate of how long one backlogged trial takes to
#: drain — a config constant, so ``retry_after_ns`` is a pure function
#: of the backlog depth at rejection time
SHED_RETRY_NS_PER_TRIAL = 50_000_000.0


def warn_once(message: str) -> None:
    """Issue a :class:`DeprecationWarning` once per process per message.

    The v1 API redesign keeps every legacy entry point alive as a shim;
    warning on each of potentially thousands of trial invocations would
    drown real output, so each distinct message fires exactly once.
    """
    if message in _WARNED:
        return
    _WARNED.add(message)
    warnings.warn(message, DeprecationWarning, stacklevel=3)


@dataclass
class GatewayStats:
    """Supervision counters the gateway keeps across invocations.

    Every requested trial lands in exactly one of the three outcome
    buckets — completed, degraded, or shed — so
    ``trials_requested == trials_completed + trials_degraded +
    trials_shed`` always holds.
    """

    invocations: int = 0
    trials_requested: int = 0
    trials_completed: int = 0
    trials_degraded: int = 0
    trials_shed: int = 0
    #: whole invocations refused at admission (HTTP 429): their trials
    #: never entered the queue, so they are *not* in trials_requested
    invocations_rejected: int = 0

    def to_dict(self) -> dict[str, int]:
        """JSON-able form (what GET /stats would return)."""
        return {
            "invocations": self.invocations,
            "trials_requested": self.trials_requested,
            "trials_completed": self.trials_completed,
            "trials_degraded": self.trials_degraded,
            "trials_shed": self.trials_shed,
            "invocations_rejected": self.invocations_rejected,
        }


@dataclass
class InvocationRequest:
    """What a user submits."""

    function: str
    language: str | None = None        # None = classic (native) workload
    platform: str = "tdx"
    secure: bool = True
    args: dict[str, Any] = field(default_factory=dict)
    trials: int | None = None          # None = config default


class Gateway:
    """Receives, dispatches, and returns workload requests."""

    def __init__(self, config: GatewayConfig | None = None,
                 runner: TrialRunner | None = None,
                 faults: "FaultPlan | str | None" = None,
                 max_pending: int | None = None,
                 attest_launches: bool = False) -> None:
        self.config = config if config is not None else default_config()
        # Gateway trials run against long-lived pool VMs (stateful),
        # so they go through the runner's in-process trial loop rather
        # than the spec-parallel path.
        self.runner = runner if runner is not None else TrialRunner()
        self.faults = FaultPlan.parse(faults) if faults is not None else None
        if max_pending is not None and max_pending < 1:
            raise GatewayError(
                f"max_pending must be >= 1, got {max_pending}")
        #: admission-control bound: at most this many trials of one
        #: invocation are admitted to the trial queue; overflow trials
        #: are *shed* (returned as zero-attempt records) instead of
        #: queued without bound.  None = admit everything.
        self.max_pending = max_pending
        #: cross-invocation backlog: trials admitted but not yet done,
        #: summed over concurrent invocations (the REST server is
        #: threaded, so invocations genuinely overlap).  Guarded by a
        #: lock; when an arriving invocation finds the backlog already
        #: at ``max_pending``, it is refused whole with
        #: :class:`~repro.errors.OverloadedError` (HTTP 429) carrying a
        #: deterministic drain-time hint.
        self._backlog_lock = threading.Lock()
        self._backlog_trials = 0
        self.stats = GatewayStats()
        #: unified telemetry registry (shared with the runner and every
        #: pool) — what ``GET /v1/metrics`` and ``ConfBench.metrics()``
        #: serve
        self.metrics = (self.runner.metrics
                        if getattr(self.runner, "metrics", None) is not None
                        else MetricsRegistry())
        #: every RunResult produced through this gateway, in invocation
        #: order — the trace/profile exporters fold these span trees
        self.run_log: list[RunResult] = []
        self.store = FunctionStore()
        self.hosts: dict[str, Host] = {}
        self.pools: dict[tuple[str, bool], TeePool] = {}
        self.monitors: dict[str, PerfMonitor] = {}
        #: per-platform launch attestors (opt-in via ``attest_launches``)
        self.attestors: dict[str, "object"] = {}
        self.dispatch_model = DispatchModel()
        policy = LoadBalancingPolicy.parse(self.config.load_balancing)
        if attest_launches:
            from repro.attest.service import LaunchAttestor

            for entry in self.config.entries:
                if entry.platform in LaunchAttestor.SUPPORTED:
                    self.attestors[entry.platform] = LaunchAttestor(
                        entry.platform, seed=entry.seed,
                        metrics=self.metrics)
        for entry in self.config.entries:
            platform = platform_by_name(entry.platform, seed=entry.seed)
            host = Host(name=entry.host + "/" + entry.platform,
                        platform=platform)
            self.hosts[entry.platform] = host
            self.monitors[entry.platform] = PerfMonitor(platform=platform)
            ports = entry.ports()
            secure_pool = TeePool(platform=entry.platform, secure=True,
                                  policy=policy)
            normal_pool = TeePool(platform=entry.platform, secure=False,
                                  policy=policy)
            for offset, port in enumerate(ports):
                secure = offset % 2 == 0
                vm = host.provision_vm(port, secure=secure)
                (secure_pool if secure else normal_pool).add_worker(vm, port)
            for pool in (secure_pool, normal_pool):
                pool.respawn = self._respawner(host, pool)
                pool.faults = self.faults
                pool.metrics = self.metrics
            # only secure pools attest: a normal VM has no launch
            # measurement to verify
            secure_pool.attestor = self.attestors.get(entry.platform)
            self.pools[(entry.platform, True)] = secure_pool
            self.pools[(entry.platform, False)] = normal_pool
        #: lazily-built cluster/KBS control plane (``/v1/cluster/*``,
        #: ``/v1/kbs/release``); import deferred so plain invocation
        #: gateways never pay for the cluster layer
        self._cluster: "object | None" = None

    def cluster(self):
        """The cluster sweep + key-release control plane (lazy)."""
        if self._cluster is None:
            from repro.core.cluster.control import ClusterControl

            seed = (self.config.entries[0].seed
                    if self.config.entries else 0)
            self._cluster = ClusterControl(seed=seed)
        return self._cluster

    @staticmethod
    def _respawner(host: Host, pool: TeePool):
        """The evict-then-respawn hook wired into each pool.

        When a pool evicts a dead worker, the host replaces the VM on
        the same port and the replacement rejoins the pool — the
        failure-handling behaviour a cloud operator expects, instead of
        the pool quietly shrinking to exhaustion.
        """

        def respawn(worker):
            vm = host.respawn_vm(worker.port)
            return pool.add_worker(vm, worker.port)

        return respawn

    # -- uploads ---------------------------------------------------------

    def upload(self, function_name: str,
               languages: tuple[str, ...] | None = None) -> None:
        """Upload a built-in workload to the function database."""
        self.store.upload_builtin(function_name, languages)

    def upload_custom(self, workload,
                      languages: tuple[str, ...] | None = None) -> None:
        """Upload a user-supplied workload object."""
        self.store.upload_custom(workload, languages)

    # -- dispatch -----------------------------------------------------------

    def _pool(self, platform: str, secure: bool) -> TeePool:
        try:
            return self.pools[(platform, secure)]
        except KeyError:
            raise GatewayError(
                f"no pool for platform {platform!r} "
                f"({'secure' if secure else 'normal'})"
            ) from None

    def _resolve_trials(self, trials: int | None) -> int:
        """Uniform ``trials`` semantics: None means the config default."""
        resolved = (trials if trials is not None
                    else self.config.default_trials)
        if resolved < 1:
            raise GatewayError(f"trials must be >= 1, got {resolved}")
        return resolved

    def _record_run(self, run: RunResult) -> RunResult:
        """Log a completed run into the telemetry streams.

        Gateway trials run serially in-process (``runner.run_trials``),
        so emission order here is invocation order — deterministic for
        identical request sequences.
        """
        self.run_log.append(run)
        run.emit(self.metrics)
        return run

    def invoke(self, request: InvocationRequest) -> list[InvocationRecord]:
        """Run a request for its configured number of trials."""
        trials = self._resolve_trials(request.trials)
        if request.language is None:
            raise GatewayError(
                "FaaS invocations need a language; classic executables go "
                "through invoke_classic() (the cross-compile-and-submit path)"
            )
        stored = self.store.require_language(request.function, request.language)
        launcher = FunctionLauncher.for_language(request.language)
        body = launcher.launch(stored.workload, request.args)

        pool = self._pool(request.platform, request.secure)
        monitor = self.monitors[request.platform]
        platform = self.hosts[request.platform].platform
        def one_trial(trial: int) -> InvocationRecord:
            try:
                run = pool.run_resilient(body, name=request.function,
                                         trial=trial)
            except PoolExhaustedError:
                if self.faults is None or not self.faults.active:
                    raise
                return self._degraded_record(
                    pool, request.function, request.language, trial)
            self._record_run(run)
            report = monitor.collect(run)
            return InvocationRecord.from_run(
                run,
                function=request.function,
                language=request.language,
                perf=dict(report.events),
                transport_ns=self.dispatch_model.round_trip_ns(platform),
            )

        admitted = self._admit(one_trial, pool,
                               request.function, request.language)
        self._admit_invocation(trials)
        try:
            records = self.runner.run_trials(trials, admitted)
        finally:
            self._release_invocation(trials)
        return self._account(trials, records)

    def invoke_classic(self, name: str, fn, *, platform: str = "tdx",
                       secure: bool = True, trials: int | None = None,
                       fn_args: tuple = (),
                       fn_kwargs: dict[str, Any] | None = None,
                       ) -> list[InvocationRecord]:
        """Run a classic (non-FaaS) workload callable.

        ``fn`` receives the guest kernel; no language runtime is
        involved (the paper's cross-compiled-executable path).  The
        signature mirrors :meth:`invoke`'s keyword surface: ``platform``
        / ``secure`` / ``trials`` are keyword-only and ``trials=None``
        means the config default, the same semantics FaaS invocations
        get.  Extra workload arguments travel via ``fn_args`` /
        ``fn_kwargs`` rather than positional ``*args`` so they can
        never be confused with request parameters.
        """
        trials = self._resolve_trials(trials)
        body = native_launcher(fn, *fn_args, **(fn_kwargs or {}))
        pool = self._pool(platform, secure)
        monitor = self.monitors[platform]

        def one_trial(trial: int) -> InvocationRecord:
            try:
                run = pool.run_resilient(body, name=name, trial=trial)
            except PoolExhaustedError:
                if self.faults is None or not self.faults.active:
                    raise
                return self._degraded_record(pool, name, None, trial)
            self._record_run(run)
            report = monitor.collect(run)
            return InvocationRecord.from_run(
                run, function=name, language=None, perf=dict(report.events),
            )

        admitted = self._admit(one_trial, pool, name, None)
        self._admit_invocation(trials)
        try:
            records = self.runner.run_trials(trials, admitted)
        finally:
            self._release_invocation(trials)
        return self._account(trials, records)

    def invoke_native(self, name: str, fn, platform: str, secure: bool,
                      trials: int = 1, *fn_args,
                      **fn_kwargs) -> list[InvocationRecord]:
        """Deprecated alias for :meth:`invoke_classic`.

        The legacy positional signature (``trials`` defaulting to 1,
        workload arguments as trailing ``*fn_args``) is preserved
        verbatim; new code should call :meth:`invoke_classic`, whose
        keyword-only surface matches :meth:`invoke`.
        """
        warn_once(
            "Gateway.invoke_native() is deprecated; use "
            "Gateway.invoke_classic(name, fn, *, platform=..., secure=..., "
            "trials=...) instead")
        return self.invoke_classic(name, fn, platform=platform,
                                   secure=secure, trials=trials,
                                   fn_args=fn_args, fn_kwargs=fn_kwargs)

    def _admit_invocation(self, trials: int) -> None:
        """Admit (or refuse) a whole invocation against the backlog.

        A single invocation from idle is always admitted — per-trial
        shedding inside :meth:`_admit` still applies — so serial usage
        is unchanged.  Only when *concurrent* invocations have already
        filled the backlog to ``max_pending`` is the newcomer refused,
        with ``retry_after_ns`` estimating the backlog's drain time
        (a pure function of the depth at rejection).
        """
        if self.max_pending is None:
            return
        with self._backlog_lock:
            backlog = self._backlog_trials
            if backlog >= self.max_pending:
                self.stats.invocations_rejected += 1
                self.metrics.count("gateway.invocations_rejected", 1)
                excess = backlog + trials - self.max_pending
                raise OverloadedError(
                    f"gateway backlog at capacity ({backlog}/"
                    f"{self.max_pending} trials pending); retry later",
                    retry_after_ns=max(excess, 1) * SHED_RETRY_NS_PER_TRIAL,
                )
            self._backlog_trials = backlog + trials

    def _release_invocation(self, trials: int) -> None:
        if self.max_pending is None:
            return
        with self._backlog_lock:
            self._backlog_trials -= trials

    def _admit(self, one_trial, pool: TeePool, function: str,
               language: str | None):
        """Wrap a trial function with the admission-control bound.

        The runner's trial loop is the gateway's in-flight queue in
        this simulation; with :attr:`max_pending` set, only that many
        trials of an invocation are admitted to it.  Overflow trials
        are shed deterministically — the highest trial indices, the
        ones that would sit deepest in the queue — so a bounded queue
        never silently drops a requested trial: it returns a marked
        zero-attempt record instead.
        """
        if self.max_pending is None:
            return one_trial

        def admitted(trial: int) -> InvocationRecord:
            if trial >= self.max_pending:
                return self._shed_record(pool, function, language, trial)
            return one_trial(trial)

        return admitted

    def _account(self, trials: int,
                 records: list[InvocationRecord]) -> list[InvocationRecord]:
        """Fold one invocation's outcome into :attr:`stats`.

        The same tallies are mirrored into :attr:`metrics` as
        ``gateway.*`` counters so one snapshot carries both the
        supervision view and the per-run measurement streams.
        """
        self.stats.invocations += 1
        self.stats.trials_requested += trials
        for record in records:
            if record.shed:
                self.stats.trials_shed += 1
            elif record.degraded:
                self.stats.trials_degraded += 1
            else:
                self.stats.trials_completed += 1
        self.metrics.count("gateway.invocations", 1)
        self.metrics.count("gateway.trials_requested", trials)
        shed = sum(1 for record in records if record.shed)
        degraded = sum(1 for record in records
                       if record.degraded and not record.shed)
        if shed:
            self.metrics.count("gateway.trials_shed", shed)
        if degraded:
            self.metrics.count("gateway.trials_degraded", degraded)
        completed = len(records) - shed - degraded
        if completed:
            self.metrics.count("gateway.trials_completed", completed)
        return records

    def _shed_record(self, pool: TeePool, function: str,
                     language: str | None, trial: int) -> InvocationRecord:
        """The record an over-admission trial is shed as.

        ``attempts`` is 0 — unlike a degraded record, nothing ran —
        and ``shed`` marks the refusal so callers can distinguish
        load-shedding from fault exhaustion.
        """
        return InvocationRecord(
            function=function,
            language=language,
            platform=pool.platform,
            secure=pool.secure,
            trial=trial,
            elapsed_ns=0.0,
            output=None,
            perf={},
            attempts=0,
            degraded=True,
            shed=True,
        )

    def _degraded_record(self, pool: TeePool, function: str,
                         language: str | None, trial: int) -> InvocationRecord:
        """The record a trial degrades to once the pool's retries ran out.

        Only taken when fault injection is active (the callers re-raise
        otherwise: without faults an exhausted pool is a configuration
        problem, not an injected one).  Degrading keeps every requested
        trial present in the response — none silently dropped — with
        ``degraded=True`` marking the loss.
        """
        return InvocationRecord(
            function=function,
            language=language,
            platform=pool.platform,
            secure=pool.secure,
            trial=trial,
            elapsed_ns=0.0,
            output=None,
            perf={},
            attempts=pool.retry_policy.max_attempts,
            degraded=True,
        )

    # -- introspection -----------------------------------------------------------

    def platforms(self) -> list[dict[str, Any]]:
        """Platform facts (what GET /platforms returns)."""
        return [
            {
                "name": entry.platform,
                "host": entry.host,
                "ports": entry.ports(),
                **vars(self.hosts[entry.platform].platform.info()),
            }
            for entry in self.config.entries
        ]

    def functions(self) -> list[str]:
        """Uploaded function names."""
        return self.store.names()
