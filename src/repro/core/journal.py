"""Durable trial journal: crash-safe progress for long sweeps.

Long secure-vs-normal sweeps die mid-run on real TEE hosts — host
crashes, collateral outages, stuck guests — and restarting from trial
0 throws away hours of work.  The journal makes sweep progress
*durable*: :class:`~repro.core.runner.TrialRunner` appends one JSONL
entry per completed (or degraded) trial, keyed by the trial spec's
content hash, and a later run opened against the same journal replays
the archived results and executes only the missing tail.

Because :func:`~repro.core.runner.execute_trial` is a pure function of
its spec and :class:`~repro.tee.vm.RunResult` round-trips losslessly
through ``to_dict``/``from_dict`` (trace included), a resumed sweep is
bit-identical to an uninterrupted one — serial or parallel, faulted or
not.

Durability model
----------------
- ``put`` is an atomic append: one ``write`` of a complete line,
  then ``flush`` + ``fsync``.  A SIGKILL between trials loses nothing;
  a SIGKILL *during* the write can leave at most one torn final line.
- On open, a torn final line (no trailing newline, or unparseable) is
  detected and truncated — never fatal.  Corrupt lines elsewhere in
  the file are skipped with a warning; their trials simply re-execute.
- The journal is an append-only log, distinct from
  :class:`~repro.core.resultstore.SpecResultCache` (a rewrite-in-place
  cache): the journal records *this sweep's* progress and is the thing
  ``--resume`` points at.
"""

from __future__ import annotations

import json
import os
import warnings
from pathlib import Path

from repro.errors import GatewayError

#: Journal format version, bumped on incompatible entry changes.
JOURNAL_VERSION = 1


class TrialJournal:
    """Append-only JSONL journal of completed trial results.

    The first line is a header (``{"kind": "journal", "version": 1}``);
    every further line is ``{"kind": "trial", "hash": <spec content
    hash>, "result": <RunResult.to_dict()>}``.  The newest entry for a
    hash wins.  Plugs into :class:`~repro.core.runner.TrialRunner` via
    the same ``get``/``put`` protocol the spec-result cache uses.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        if not self.path.parent.is_dir():
            raise GatewayError(
                f"journal directory does not exist: {self.path.parent}")
        if self.path.is_dir():
            raise GatewayError(f"journal path is a directory: {self.path}")
        self._entries: dict[str, dict] = {}
        #: optional metrics sink (the :mod:`repro.obs` protocol); the
        #: runner wires its registry in here so replays/records show
        #: up in ``GET /v1/metrics`` and exported snapshots
        self.metrics = None
        #: spec hashes served back out of the journal this session
        self.replayed = 0
        #: entries appended this session
        self.recorded = 0
        #: human-readable recovery notes (torn line, skipped entries)
        self.warnings: list[str] = []
        self._recover()
        self._handle = self.path.open("a", encoding="utf-8")

    # -- recovery ------------------------------------------------------

    def _recover(self) -> None:
        """Load existing entries, repairing crash damage.

        A process killed mid-append leaves a final line without its
        trailing newline (or an incomplete JSON document); that line is
        *truncated* so later appends start on a clean boundary.  Bad
        lines elsewhere are skipped with a warning — the trials they
        held simply run again.
        """
        if not self.path.exists():
            return
        raw = self.path.read_bytes()
        if not raw:
            return
        keep = len(raw)
        if not raw.endswith(b"\n"):
            keep = raw.rfind(b"\n") + 1
            self._warn(f"{self.path}: truncated torn final line "
                       f"({len(raw) - keep} bytes)")
        # newline-stripped complete lines; byte-level so the truncation
        # offsets below stay exact even for undecodable content
        lines = raw[:keep].split(b"\n")[:-1] if keep else []
        # a final newline-terminated line that does not parse is also
        # torn (e.g. the flush landed but part of the write did not)
        while lines and self._parse(lines[-1], len(lines),
                                    final=True) is None:
            tail = lines.pop()
            keep -= len(tail) + 1
            self._warn(f"{self.path}: truncated torn final line "
                       f"(line {len(lines) + 1})")
        for line_number, line in enumerate(lines, start=1):
            entry = self._parse(line, line_number, final=False)
            if entry is not None:
                spec_hash, payload = entry
                if spec_hash:   # "" is the header/blank sentinel
                    self._entries[spec_hash] = payload
        if keep < len(raw):
            with self.path.open("r+b") as handle:
                handle.truncate(keep)
                handle.flush()
                os.fsync(handle.fileno())

    def _parse(self, line: bytes, line_number: int,
               final: bool) -> tuple[str, dict] | None:
        """One journal line -> ``(hash, result)``, or None if unusable.

        Header and blank lines return a sentinel entry-free value via
        the caller (they are valid but carry no result); for torn-line
        detection (``final=True``) they count as parseable.
        """
        text = line.decode("utf-8", errors="replace").strip()
        if not text:
            return ("", {}) if final else None
        try:
            payload = json.loads(text)
        except json.JSONDecodeError:
            if not final:
                self._warn(f"{self.path}:{line_number}: "
                           "skipped corrupt journal line")
            return None
        if not isinstance(payload, dict):
            if not final:
                self._warn(f"{self.path}:{line_number}: "
                           "skipped non-object journal line")
            return None
        kind = payload.get("kind")
        if kind == "journal":
            if payload.get("version") != JOURNAL_VERSION:
                raise GatewayError(
                    f"{self.path}: unsupported journal version "
                    f"{payload.get('version')!r} (expected {JOURNAL_VERSION})")
            return ("", {})
        if kind != "trial" or "hash" not in payload \
                or not isinstance(payload.get("result"), dict):
            if not final:
                self._warn(f"{self.path}:{line_number}: "
                           f"skipped journal entry of kind {kind!r}")
            # a well-formed JSON object with the wrong shape is not
            # torn — keep it in the file, just do not use it
            return ("", {}) if final else None
        return (payload["hash"], payload["result"])

    def _warn(self, message: str) -> None:
        self.warnings.append(message)
        warnings.warn(message, stacklevel=3)

    # -- the cache protocol --------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, spec) -> bool:
        return spec.content_hash() in self._entries

    def get(self, spec):
        """The journaled result for ``spec``, or None when absent."""
        from repro.tee.vm import RunResult

        payload = self._entries.get(spec.content_hash())
        if payload is None:
            return None
        self.replayed += 1
        if self.metrics is not None:
            self.metrics.count("journal.replayed", 1)
        return RunResult.from_dict(payload)

    def put(self, spec, result) -> None:
        """Durably append ``result`` under ``spec``'s content hash.

        One write of a complete line, flushed and fsynced, so a crash
        after ``put`` returns can never lose the entry.  Re-putting an
        already-journaled hash is a no-op (resume paths replay results
        and then re-offer them).
        """
        spec_hash = spec.content_hash()
        if spec_hash in self._entries:
            return
        payload = result.to_dict()
        if os.fstat(self._handle.fileno()).st_size == 0:
            self._handle.write(json.dumps(
                {"kind": "journal", "version": JOURNAL_VERSION}) + "\n")
        self._entries[spec_hash] = payload
        # No sort_keys: key order in the payload (e.g. span breakdowns)
        # must survive the round-trip, or replayed results would not be
        # byte-identical to live ones when re-serialised.
        self._handle.write(json.dumps(
            {"kind": "trial", "hash": spec_hash, "result": payload}) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self.recorded += 1
        if self.metrics is not None:
            self.metrics.count("journal.recorded", 1)

    def close(self) -> None:
        """Close the append handle (idempotent)."""
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "TrialJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"TrialJournal(path={str(self.path)!r}, "
                f"entries={len(self._entries)}, replayed={self.replayed}, "
                f"recorded={self.recorded})")
