"""Exception hierarchy for the ConfBench reproduction.

Every error raised by the library derives from :class:`ConfBenchError`,
so callers can catch one base type at the API boundary.  Sub-hierarchies
mirror the architectural layers described in ``DESIGN.md``.
"""

from __future__ import annotations


class ConfBenchError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(ConfBenchError):
    """Errors from the simulation kernel (clock, ledger, events)."""


class ClockError(SimulationError):
    """Attempted to move a virtual clock backwards or misuse it."""


class HardwareError(ConfBenchError):
    """Errors from the simulated machine substrate."""


class GuestOsError(ConfBenchError):
    """Errors raised by the simulated guest operating system."""


class FileSystemError(GuestOsError):
    """In-memory filesystem errors (missing path, duplicate, etc.)."""


class ProcessError(GuestOsError):
    """Process table errors (bad pid, double wait, fork limits)."""


class SyscallError(GuestOsError):
    """Unknown or malformed syscall invocation."""


class TeeError(ConfBenchError):
    """Errors from TEE platform simulators."""


class TeeUnsupportedError(TeeError):
    """The requested operation is not available on this platform.

    Example: requesting hardware attestation from the simulated CCA
    platform, which (like the paper's FVP setup) lacks the required
    hardware support.
    """


class VmError(TeeError):
    """VM lifecycle errors (not booted, double-destroy, bad state)."""


class VmCrashError(VmError):
    """The VM died mid-execution (injected TD-exit style crash).

    ``wasted_ns`` is the virtual time the dead attempt burned — the
    retry machinery charges it (plus backoff) to the surviving
    result's STARTUP bucket.
    """

    def __init__(self, message: str, wasted_ns: float = 0.0) -> None:
        super().__init__(message)
        self.wasted_ns = wasted_ns


class TrialBudgetError(VmError):
    """The watchdog killed a trial that exceeded its virtual-time budget.

    ``wasted_ns`` is the budget itself: the watchdog fires *at* the
    deadline, so that is exactly the virtual time the doomed attempt
    burned before being put down.
    """

    def __init__(self, message: str, wasted_ns: float = 0.0) -> None:
        super().__init__(message)
        self.wasted_ns = wasted_ns


class AttestationError(ConfBenchError):
    """Attestation protocol failures."""


class TransientAttestationError(AttestationError):
    """A verification attempt failed transiently; retrying may succeed."""


class CollateralTimeoutError(AttestationError):
    """A collateral fetch (e.g. from the Intel PCS) timed out."""


class QuoteVerificationError(AttestationError):
    """A quote or report failed cryptographic verification."""


class CertificateError(AttestationError):
    """Certificate chain construction or validation failure."""


class CrlError(CertificateError):
    """Certificate revocation list problems (revoked cert, stale CRL)."""


class RuntimeModelError(ConfBenchError):
    """Errors from language-runtime cost models."""


class UnknownRuntimeError(RuntimeModelError):
    """The requested language runtime is not registered."""


class WorkloadError(ConfBenchError):
    """Errors from workload implementations."""


class UnknownWorkloadError(WorkloadError):
    """The requested workload is not present in the registry."""


class DbmsError(WorkloadError):
    """Errors from the mini relational engine."""


class SqlSyntaxError(DbmsError):
    """The SQL tokenizer/parser rejected a statement."""


class SqlExecutionError(DbmsError):
    """A statement failed during planning or execution."""


class GatewayError(ConfBenchError):
    """Errors from the ConfBench gateway."""


class NoSuchFunctionError(GatewayError):
    """Invoked a function that was never uploaded."""


class NoSuchPlatformError(GatewayError):
    """Requested an execution platform not present in the config."""


class PoolExhaustedError(GatewayError):
    """A TEE pool has no VM able to take the request."""


class OverloadedError(GatewayError):
    """The gateway shed this request (brownout: backlog at capacity).

    ``retry_after_ns`` is the deterministic drain-time hint the shed
    record carries — the earliest virtual time a retry could be
    admitted rather than shed again.  The REST layer maps this to an
    HTTP 429 with a ``Retry-After`` header; clients honor the hint.
    """

    def __init__(self, message: str, retry_after_ns: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after_ns = retry_after_ns


class RelayError(ConfBenchError):
    """Errors from the socat-style TCP relay."""


class MonitorError(ConfBenchError):
    """Errors from the perf-stat style monitoring integration."""


class SupplyChainError(ConfBenchError):
    """Errors from the confidential container supply chain."""


class ImageVerificationError(SupplyChainError):
    """An image failed signature or layer-digest verification.

    Raised when a manifest signature does not validate against the
    publisher key, or a pulled layer/chunk hashes to something other
    than its content-addressed digest — both abort the launch before
    any layer byte reaches the guest filesystem.
    """


class KeyReleaseDeniedError(SupplyChainError):
    """The Key Broker Service refused to release layer keys.

    Carries the broker's denial ``reason`` (failed attestation, stale
    collateral, unknown key id) so callers — and the REST envelope —
    can report *why* the launch was refused without parsing message
    text.
    """

    def __init__(self, message: str, reason: str = "attestation") -> None:
        super().__init__(message)
        self.reason = reason
