"""Fig. 9 extension — cluster resilience under open-loop overload.

The paper benchmarks one CVM on one host; this extension asks what a
*fleet* of them does when the failures the paper's infrastructure can
suffer (host loss, zone partitions, degraded silicon, collateral
outages) land mid-traffic.  Each trial drives one
:class:`repro.core.cluster.ClusterGateway` sweep — a heterogeneous
multi-zone fleet, seeded open-loop arrivals over the 25-function FaaS
mix — under a default cluster fault plan (override with ``--faults``),
and reports the resilience headline numbers:

- tail latency (p50/p99/p999) per arrival process;
- shed rate and the brownout ladder's time-at-level split;
- failover + hedge counts and retry-budget spend;
- per-zone utilization (does zone-spread actually spread?).

The conservation contract is asserted per trial: every one of the
sweep's requests must finalize as served, degraded, or shed-with-
record — a silently dropped request fails the experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.journal import TrialJournal
from repro.core.runner import TrialPlan, TrialRunner
from repro.errors import GatewayError
from repro.experiments.common import default_runner, mean
from repro.experiments.report import render_table

#: the arrival processes each sweep covers (one spec per process)
ARRIVAL_PROCESSES = ("poisson", "diurnal", "burst")

#: the fault weather a resilience experiment defaults to; the runner's
#: ``--faults`` plan (when given) replaces it wholesale
DEFAULT_FIG9_FAULTS = ("host-crash=0.35,zone-partition=0.3,"
                       "degraded-host=0.4,collateral-outage=0.3,seed=9")


@dataclass
class Fig9ClusterResult:
    """Per-process resilience numbers plus fleet-wide aggregates."""

    #: process -> the trial-meaned report fields the table renders
    rows: dict[str, dict[str, float]] = field(default_factory=dict)
    #: zone -> mean utilization across all trials
    zone_utilization: dict[str, float] = field(default_factory=dict)
    #: summed across every trial
    failovers: int = 0
    hedges: int = 0
    retries_spent: int = 0
    telemetry_dropped: int = 0
    #: True iff every trial's sweep conserved its requests
    conserved: bool = True
    #: "kind@point" fault injections, in spec order then schedule order
    faults_injected: list = field(default_factory=list)
    #: the runner's metrics-registry snapshot for this artifact's runs
    metrics: dict = field(default_factory=dict)

    def render(self) -> str:
        headers = ("process", "served", "shed%", "p50 ms", "p99 ms",
                   "p999 ms", "failover", "hedge")
        rows = []
        for process, row in self.rows.items():
            rows.append((
                process,
                int(row["served"]),
                f"{row['shed_rate'] * 100:.1f}",
                f"{row['p50_ns'] / 1e6:.1f}",
                f"{row['p99_ns'] / 1e6:.1f}",
                f"{row['p999_ns'] / 1e6:.1f}",
                int(row["failovers"]),
                int(row["hedges"]),
            ))
        table = render_table(
            "Fig. 9 ext — cluster resilience under open-loop overload",
            headers, rows)
        zones = "  ".join(f"{zone}={value * 100:.0f}%"
                          for zone, value in self.zone_utilization.items())
        conservation = (
            "every request finalized (served/degraded/shed-with-record)"
            if self.conserved
            else "CONSERVATION FAILED: requests were silently dropped")
        return (f"{table}\n\n  zone utilization: {zones}\n"
                f"  retry budget spent: {self.retries_spent} "
                f"(failovers {self.failovers}, hedges {self.hedges})\n"
                f"  {conservation}")


def run_fig9(seed: int = 0, trials: int = 1, hosts: int = 8,
             requests: int = 120_000, rate_rps: float = 2400.0,
             processes: tuple = ARRIVAL_PROCESSES,
             runner: TrialRunner | None = None,
             journal: TrialJournal | None = None) -> Fig9ClusterResult:
    """Run the cluster resilience sweep, one spec per arrival process.

    Trial bodies return the sweep's full :class:`ClusterReport` dict
    (the gateway lives below ``obs`` and workers cannot share a live
    registry); this harness folds the counters into the runner's
    metrics registry in spec order, so serial and parallel sweeps
    produce byte-identical snapshots.  The default cluster fault plan
    rides on the specs; a runner-level ``--faults`` plan overrides it.
    """
    runner = default_runner(runner, journal)
    plan = TrialPlan.matrix(
        kind="cluster", platforms=("tdx",), workloads=tuple(processes),
        trials=trials, seed=seed, secure_modes=(True,),
        params={"hosts": hosts, "requests": requests,
                "rate_rps": rate_rps},
    ).with_faults(DEFAULT_FIG9_FAULTS)

    per_process: dict[str, list[dict]] = {}
    zone_samples: dict[str, list[float]] = {}
    result = Fig9ClusterResult()
    for trial_result in runner.run(plan):
        output = trial_result.output
        process = trial_result.workload
        per_process.setdefault(process, []).append(output)
        if not output["conserved"]:
            result.conserved = False
        result.failovers += output["failovers"]
        result.hedges += output["hedges"]
        result.retries_spent += output["retries_spent"]
        result.telemetry_dropped += output["telemetry_dropped"]
        result.faults_injected.extend(output["faults_injected"])
        for zone, value in output["zone_utilization"].items():
            zone_samples.setdefault(zone, []).append(value)
        prefix = f"cluster.{process}"
        runner.metrics.count_many((
            (f"{prefix}.requests", output["requests"]),
            (f"{prefix}.served", output["served"]),
            (f"{prefix}.degraded", output["degraded"]),
            (f"{prefix}.shed", output["shed"]),
            (f"{prefix}.failovers", output["failovers"]),
            (f"{prefix}.hedges", output["hedges"]),
            (f"{prefix}.cold_boots", output["cold_boots"]),
            (f"{prefix}.warm_starts", output["warm_starts"]),
        ))
        runner.metrics.observe(f"{prefix}.latency_p99_ns",
                               output["latency_p99_ns"])
        for zone, value in sorted(output["zone_utilization"].items()):
            runner.metrics.set_gauge(f"{prefix}.utilization.{zone}", value)
    runner.metrics.count("cluster.conserved", int(result.conserved))

    for process in processes:
        outputs = per_process.get(process)
        if not outputs:
            raise GatewayError(f"no trial results for process {process!r}")
        result.rows[process] = {
            "served": mean(o["served"] for o in outputs),
            "shed_rate": mean(o["shed"] / o["requests"] for o in outputs),
            "p50_ns": mean(o["latency_p50_ns"] for o in outputs),
            "p99_ns": mean(o["latency_p99_ns"] for o in outputs),
            "p999_ns": mean(o["latency_p999_ns"] for o in outputs),
            "failovers": sum(o["failovers"] for o in outputs),
            "hedges": sum(o["hedges"] for o in outputs),
        }
    result.zone_utilization = {
        zone: mean(values) for zone, values in sorted(zone_samples.items())
    }
    result.metrics = runner.metrics.snapshot()
    return result
